"""A numpy-vectorized Pareto frontier for large result sets.

:class:`~repro.paths.frontier.ParetoSet` scans its members with Python
loops — unbeatable for the small frontiers of per-node label sets, but
linear-in-Python for result skylines that grow to hundreds of entries.
:class:`VectorParetoSet` keeps the cost vectors in one contiguous numpy
matrix, turning every dominance test into a handful of vectorized
comparisons.  Semantics match ``ParetoSet(keep_equal_costs=False)``
exactly (property-tested in ``tests/test_vector_frontier.py``).

The batch kernels (:mod:`repro.accel.batch_kernel`) use it as the
result-skyline pruning mirror: :meth:`VectorParetoSet.dominance_mask`
tests a whole bucket of projected costs against the frontier in one
broadcasted comparison.  The scalar BBS engines keep the plain
:class:`~repro.paths.frontier.ParetoSet` — per-label numpy dispatch
loses at road-network frontier sizes; the crossover is measured in
``benchmarks/bench_frontier_performance.py``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Generic, TypeVar

import numpy as np

from repro.paths.dominance import CostVector

T = TypeVar("T")

_INITIAL_CAPACITY = 32


class VectorParetoSet(Generic[T]):
    """A Pareto frontier backed by a contiguous cost matrix.

    Payloads are kept in a parallel Python list.  Equal-cost candidates
    are rejected (the search-pruning semantics of
    ``ParetoSet(keep_equal_costs=False)``).
    """

    __slots__ = ("_dim", "_costs", "_payloads", "_size")

    def __init__(self, dim: int) -> None:
        self._dim = dim
        self._costs = np.empty((_INITIAL_CAPACITY, dim), dtype=np.float64)
        self._payloads: list[T] = []
        self._size = 0

    def _view(self) -> np.ndarray:
        return self._costs[: self._size]

    def _grow(self) -> None:
        if self._size == len(self._costs):
            doubled = np.empty(
                (2 * len(self._costs), self._dim), dtype=np.float64
            )
            doubled[: self._size] = self._costs[: self._size]
            self._costs = doubled

    def add(self, cost: Sequence[float], payload: T) -> bool:
        """Insert a candidate; return True iff it joined the frontier."""
        vector = np.asarray(cost, dtype=np.float64)
        view = self._view()
        if self._size:
            # reject if any member dominates-or-equals the candidate
            if bool(((view <= vector).all(axis=1)).any()):
                # the check above includes equality; a member that is
                # <= everywhere dominates-or-equals
                return False
            # evict members the candidate dominates: candidate <= member
            # everywhere and < somewhere; since no member dominates the
            # candidate, <= everywhere already implies strict domination
            # unless equal (impossible here — equal would have rejected)
            dominated = (vector <= view).all(axis=1)
            if bool(dominated.any()):
                keep = ~dominated
                kept_count = int(keep.sum())
                self._costs[:kept_count] = view[keep]
                self._payloads = [
                    payload_
                    for payload_, flag in zip(self._payloads, keep)
                    if flag
                ]
                self._size = kept_count
        self._grow()
        self._costs[self._size] = vector
        self._payloads.append(payload)
        self._size += 1
        return True

    def dominates_candidate(self, cost: Sequence[float]) -> bool:
        """True iff some member dominates-or-equals the candidate."""
        if not self._size:
            return False
        vector = np.asarray(cost, dtype=np.float64)
        return bool((self._view() <= vector).all(axis=1).any())

    def dominance_mask(self, costs: np.ndarray) -> np.ndarray:
        """Per-row :meth:`dominates_candidate` over a ``(k, dim)`` batch.

        One broadcasted comparison for the whole batch — the bucket
        kernels' result-skyline prune.  Returns a boolean ``(k,)``
        array; all-False when the frontier is empty.
        """
        if not self._size:
            return np.zeros(len(costs), dtype=bool)
        # Dimension-unrolled: d boolean (k, m) planes AND-ed together
        # beat materializing the (k, m, d) cube and reducing over it.
        view = self._view()
        le = view[None, :, 0] <= costs[:, 0, None]
        for j in range(1, self._dim):
            le &= view[None, :, j] <= costs[:, j, None]
        return le.any(axis=1)

    def would_accept(self, cost: Sequence[float]) -> bool:
        """True iff :meth:`add` with this cost would currently succeed."""
        return not self.dominates_candidate(cost)

    def contains(self, cost: Sequence[float]) -> bool:
        """True iff this exact cost vector is currently on the frontier.

        Exact float equality — the lazy-heap staleness test
        (``NodeFrontier.is_current``) for flat search kernels.
        """
        if not self._size:
            return False
        vector = np.asarray(cost, dtype=np.float64)
        return bool((self._view() == vector).all(axis=1).any())

    def costs(self) -> list[CostVector]:
        """The cost vectors currently on the frontier."""
        return [tuple(row) for row in self._view()]

    def payloads(self) -> list[T]:
        """The payloads currently on the frontier."""
        return list(self._payloads)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self):
        return iter(zip(self.costs(), self._payloads))

    def __repr__(self) -> str:
        return f"VectorParetoSet({self._size} entries, dim={self._dim})"
