"""Pareto frontier containers.

Two containers cover every skyline-maintenance need in the library:

* :class:`ParetoSet` keeps arbitrary payloads keyed by their cost vector
  and guarantees no member dominates another.  It is the result-set and
  label-set structure (``addToSkyline`` in the paper's pseudo-code).
* :class:`PathSet` is a thin specialization whose payloads are
  :class:`~repro.paths.path.Path` objects and whose costs are taken from
  the paths themselves.

Insertion is linear in the frontier size, which is the right trade-off
for the small frontiers (tens of entries) seen per node in road-network
skyline search.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Generic, TypeVar

from repro.paths.dominance import CostVector, dominates, dominates_or_equal
from repro.paths.path import Path

T = TypeVar("T")


class ParetoSet(Generic[T]):
    """A set of (cost, payload) pairs in which no cost dominates another.

    Parameters
    ----------
    keep_equal_costs:
        When False (default) an entry whose cost exactly equals an
        existing entry's cost is rejected — the usual choice inside
        searches where equal-cost alternatives add no information.
        When True, distinct payloads with equal costs coexist, which
        matches the paper's result-set semantics (equal costs do not
        dominate each other).
    """

    __slots__ = ("_entries", "_keep_equal_costs")

    def __init__(self, *, keep_equal_costs: bool = False) -> None:
        self._entries: list[tuple[CostVector, T]] = []
        self._keep_equal_costs = keep_equal_costs

    def add(self, cost: Sequence[float], payload: T) -> bool:
        """Insert a candidate; return True iff it joined the frontier.

        Entries dominated by the candidate are evicted.  A rejected
        candidate leaves the frontier untouched.
        """
        cost = tuple(cost)
        if self._keep_equal_costs:
            for kept_cost, kept_payload in self._entries:
                if dominates(kept_cost, cost):
                    return False
                if kept_cost == cost and kept_payload == payload:
                    return False
            self._entries = [
                entry for entry in self._entries if not dominates(cost, entry[0])
            ]
        else:
            if any(dominates_or_equal(kept, cost) for kept, _ in self._entries):
                return False
            self._entries = [
                entry for entry in self._entries if not dominates(cost, entry[0])
            ]
        self._entries.append((cost, payload))
        return True

    def would_accept(self, cost: Sequence[float]) -> bool:
        """True iff :meth:`add` with this cost would currently succeed."""
        cost = tuple(cost)
        if self._keep_equal_costs:
            return not any(dominates(kept, cost) for kept, _ in self._entries)
        return not any(dominates_or_equal(kept, cost) for kept, _ in self._entries)

    def dominates_candidate(self, cost: Sequence[float]) -> bool:
        """True iff some member dominates-or-equals the candidate cost."""
        return any(dominates_or_equal(kept, cost) for kept, _ in self._entries)

    def merge(self, other: "ParetoSet[T]") -> int:
        """Add every entry of ``other``; return how many were accepted."""
        return sum(1 for cost, payload in other._entries if self.add(cost, payload))

    def payloads(self) -> list[T]:
        """The payloads currently on the frontier, in insertion order."""
        return [payload for _, payload in self._entries]

    def costs(self) -> list[CostVector]:
        """The cost vectors currently on the frontier."""
        return [cost for cost, _ in self._entries]

    def __iter__(self) -> Iterator[tuple[CostVector, T]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:
        return f"ParetoSet({len(self._entries)} entries)"


class PathSet:
    """A Pareto frontier of :class:`Path` objects.

    Costs are read from the paths.  Equal-cost distinct paths are kept,
    matching the skyline-path-set semantics of Definition 3.2.
    """

    __slots__ = ("_inner",)

    def __init__(self, paths: Iterable[Path] = ()) -> None:
        self._inner: ParetoSet[Path] = ParetoSet(keep_equal_costs=True)
        for path in paths:
            self._inner.add(path.cost, path)

    def add(self, path: Path) -> bool:
        """Insert a path; return True iff it is (now) on the skyline."""
        return self._inner.add(path.cost, path)

    def add_all(self, paths: Iterable[Path]) -> int:
        """Insert many paths; return how many were accepted."""
        return sum(1 for path in paths if self.add(path))

    def would_accept(self, cost: Sequence[float]) -> bool:
        """True iff a path with this cost would join the skyline."""
        return self._inner.would_accept(cost)

    def dominates_candidate(self, cost: Sequence[float]) -> bool:
        """True iff some stored path dominates-or-equals this cost."""
        return self._inner.dominates_candidate(cost)

    def paths(self) -> list[Path]:
        """The skyline paths, in insertion order."""
        return self._inner.payloads()

    def costs(self) -> list[CostVector]:
        """Cost vectors of the skyline paths."""
        return self._inner.costs()

    def __iter__(self) -> Iterator[Path]:
        return iter(self._inner.payloads())

    def __len__(self) -> int:
        return len(self._inner)

    def __bool__(self) -> bool:
        return bool(self._inner)

    def __repr__(self) -> str:
        return f"PathSet({len(self)} skyline paths)"
