"""Pareto-dominance tests for multi-dimensional cost vectors.

Cost vectors are plain tuples of floats.  For the low dimensionalities
typical of multi-cost road networks (d = 2..5) hand-rolled loops beat
numpy by a wide margin, so these helpers intentionally avoid array
machinery.

Definition 3.1 of the paper: ``p`` dominates ``p'`` iff ``cost(p)`` is
less than or equal to ``cost(p')`` on every dimension and strictly less
on at least one.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

CostVector = tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True iff cost vector ``a`` strictly Pareto-dominates ``b``.

    ``a`` dominates ``b`` when ``a[i] <= b[i]`` for every dimension ``i``
    and ``a[i] < b[i]`` for at least one.  A vector never dominates
    itself.

    Dimensionality is validated once at graph load, so these hot helpers
    assume equal-length inputs; the 2-D and 3-D cases (the common
    road-network configurations) skip the loop entirely.
    """
    if len(a) == 2:
        a0, a1 = a
        b0, b1 = b
        return a0 <= b0 and a1 <= b1 and (a0 < b0 or a1 < b1)
    if len(a) == 3:
        a0, a1, a2 = a
        b0, b1, b2 = b
        return (
            a0 <= b0 and a1 <= b1 and a2 <= b2
            and (a0 < b0 or a1 < b1 or a2 < b2)
        )
    strictly_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def dominates_or_equal(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True iff ``a`` dominates ``b`` or the two vectors are equal.

    This is the pruning test used inside searches: a candidate that is
    merely *equal* to something already found adds no information.
    """
    if len(a) == 2:
        return a[0] <= b[0] and a[1] <= b[1]
    if len(a) == 3:
        return a[0] <= b[0] and a[1] <= b[1] and a[2] <= b[2]
    for x, y in zip(a, b):
        if x > y:
            return False
    return True


def incomparable(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True iff neither vector dominates the other and they differ."""
    return not dominates_or_equal(a, b) and not dominates_or_equal(b, a)


def add_costs(a: Sequence[float], b: Sequence[float]) -> CostVector:
    """Component-wise sum of two cost vectors."""
    if len(a) == 2:
        return (a[0] + b[0], a[1] + b[1])
    if len(a) == 3:
        return (a[0] + b[0], a[1] + b[1], a[2] + b[2])
    return tuple(x + y for x, y in zip(a, b))


def zero_cost(dim: int) -> CostVector:
    """The additive identity cost vector for ``dim`` dimensions."""
    return (0.0,) * dim


def skyline_of(costs: Iterable[Sequence[float]]) -> list[CostVector]:
    """Return the Pareto skyline of an iterable of cost vectors.

    Duplicate vectors are collapsed to a single representative.  The
    result order follows first appearance of each surviving vector.
    """
    frontier: list[CostVector] = []
    for raw in costs:
        cost = tuple(raw)
        if any(dominates_or_equal(kept, cost) for kept in frontier):
            continue
        frontier = [kept for kept in frontier if not dominates(cost, kept)]
        frontier.append(cost)
    return frontier
