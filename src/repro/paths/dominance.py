"""Pareto-dominance tests for multi-dimensional cost vectors.

Cost vectors are plain tuples of floats.  For the low dimensionalities
typical of multi-cost road networks (d = 2..5) hand-rolled loops beat
numpy by a wide margin, so these helpers intentionally avoid array
machinery.

Definition 3.1 of the paper: ``p`` dominates ``p'`` iff ``cost(p)`` is
less than or equal to ``cost(p')`` on every dimension and strictly less
on at least one.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

CostVector = tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True iff cost vector ``a`` strictly Pareto-dominates ``b``.

    ``a`` dominates ``b`` when ``a[i] <= b[i]`` for every dimension ``i``
    and ``a[i] < b[i]`` for at least one.  A vector never dominates
    itself.
    """
    strictly_better = False
    for x, y in zip(a, b, strict=True):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def dominates_or_equal(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True iff ``a`` dominates ``b`` or the two vectors are equal.

    This is the pruning test used inside searches: a candidate that is
    merely *equal* to something already found adds no information.
    """
    for x, y in zip(a, b, strict=True):
        if x > y:
            return False
    return True


def incomparable(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True iff neither vector dominates the other and they differ."""
    return not dominates_or_equal(a, b) and not dominates_or_equal(b, a)


def add_costs(a: Sequence[float], b: Sequence[float]) -> CostVector:
    """Component-wise sum of two cost vectors."""
    return tuple(x + y for x, y in zip(a, b, strict=True))


def zero_cost(dim: int) -> CostVector:
    """The additive identity cost vector for ``dim`` dimensions."""
    return (0.0,) * dim


def skyline_of(costs: Iterable[Sequence[float]]) -> list[CostVector]:
    """Return the Pareto skyline of an iterable of cost vectors.

    Duplicate vectors are collapsed to a single representative.  The
    result order follows first appearance of each surviving vector.
    """
    frontier: list[CostVector] = []
    for raw in costs:
        cost = tuple(raw)
        if any(dominates_or_equal(kept, cost) for kept in frontier):
            continue
        frontier = [kept for kept in frontier if not dominates(cost, kept)]
        frontier.append(cost)
    return frontier
