"""Path and Pareto-skyline primitives."""

from repro.paths.dominance import (
    CostVector,
    add_costs,
    dominates,
    dominates_or_equal,
    incomparable,
    skyline_of,
    zero_cost,
)
from repro.paths.frontier import ParetoSet, PathSet
from repro.paths.vector_frontier import VectorParetoSet
from repro.paths.path import Path

__all__ = [
    "CostVector",
    "ParetoSet",
    "Path",
    "PathSet",
    "VectorParetoSet",
    "add_costs",
    "dominates",
    "dominates_or_equal",
    "incomparable",
    "skyline_of",
    "zero_cost",
]
