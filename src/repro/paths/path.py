"""Immutable path objects over multi-cost graphs.

A :class:`Path` is a sequence of node identifiers plus the accumulated
d-dimensional cost of traversing it.  Paths are value objects: they can
be concatenated, reversed, hashed, and compared, but never mutated.

The cost is stored explicitly rather than recomputed from a graph so a
path remains meaningful after the graph it was found on has been
summarized away (the whole point of the backbone index).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import QueryError
from repro.paths.dominance import CostVector, add_costs, dominates


class Path:
    """An immutable walk through a graph with its accumulated cost.

    Parameters
    ----------
    nodes:
        The node sequence, at least one node long.  A single-node path
        is the empty walk anchored at that node.
    cost:
        The d-dimensional accumulated cost of the walk.
    """

    __slots__ = ("_nodes", "_cost")

    def __init__(self, nodes: Sequence[int], cost: Sequence[float]) -> None:
        if not nodes:
            raise QueryError("a path must contain at least one node")
        self._nodes: tuple[int, ...] = tuple(nodes)
        self._cost: CostVector = tuple(float(c) for c in cost)

    @classmethod
    def trivial(cls, node: int, dim: int) -> "Path":
        """The zero-cost empty walk anchored at ``node``."""
        return cls((node,), (0.0,) * dim)

    @property
    def nodes(self) -> tuple[int, ...]:
        """The node sequence of the path."""
        return self._nodes

    @property
    def cost(self) -> CostVector:
        """The accumulated d-dimensional cost."""
        return self._cost

    @property
    def source(self) -> int:
        """First node of the path."""
        return self._nodes[0]

    @property
    def target(self) -> int:
        """Last node of the path."""
        return self._nodes[-1]

    @property
    def length(self) -> int:
        """Number of edges in the path (paper Section 3)."""
        return len(self._nodes) - 1

    @property
    def dim(self) -> int:
        """Number of cost dimensions."""
        return len(self._cost)

    def is_trivial(self) -> bool:
        """True for the empty walk (a single node, zero edges)."""
        return len(self._nodes) == 1

    def concat(self, other: "Path") -> "Path":
        """Concatenate ``self || other`` (paper Section 3).

        The target of ``self`` must equal the source of ``other``;
        costs add component-wise.
        """
        if self.target != other.source:
            raise QueryError(
                f"cannot concatenate: path ends at {self.target} but the "
                f"next path starts at {other.source}"
            )
        if other.is_trivial():
            return self
        if self.is_trivial():
            return other
        return Path(self._nodes + other._nodes[1:], add_costs(self._cost, other._cost))

    def reverse(self) -> "Path":
        """The same walk traversed backwards (undirected-graph view)."""
        return Path(self._nodes[::-1], self._cost)

    def dominates(self, other: "Path") -> bool:
        """True iff this path's cost strictly dominates the other's."""
        return dominates(self._cost, other._cost)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._nodes == other._nodes and self._cost == other._cost

    def __hash__(self) -> int:
        return hash((self._nodes, self._cost))

    def __repr__(self) -> str:
        if len(self._nodes) <= 8:
            shown = "->".join(str(n) for n in self._nodes)
        else:
            head = "->".join(str(n) for n in self._nodes[:3])
            tail = "->".join(str(n) for n in self._nodes[-3:])
            shown = f"{head}->...->{tail}"
        cost = ", ".join(f"{c:g}" for c in self._cost)
        return f"Path({shown} | cost=({cost}))"
