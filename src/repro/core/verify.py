"""Structural self-validation of a built backbone index.

``verify_index`` checks every invariant the construction algorithm is
supposed to guarantee — the index analogue of a filesystem ``fsck``.
It is used by the test suite, by the CLI's ``build --verify`` flag, and
is available to downstream users who persist indexes and want to check
them after loading.

Checked invariants:

1. every label path starts at its node and ends at its entrance;
2. every label entrance survives its level — it is a node of the top
   graph or carries a label at a *later* level;
3. label path costs are positive and dimensionally correct;
4. per-(node, entrance) path sets are mutually non-dominated;
5. the top graph is non-empty, matches the index dimensionality, and
   every one of its nodes exists in the original graph;
6. every shortcut provenance sequence expands (recursively) to original
   edges, and its endpoints match its key;
7. landmark lower bounds between sampled top-graph nodes never exceed
   the true distances (admissibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.index import BackboneIndex
from repro.paths.dominance import dominates
from repro.search.dijkstra import shortest_costs


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_index`."""

    problems: list[str] = field(default_factory=list)
    labels_checked: int = 0
    paths_checked: int = 0
    shortcuts_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.problems)} problems"
        return (
            f"VerificationReport({status}, labels={self.labels_checked}, "
            f"paths={self.paths_checked}, shortcuts={self.shortcuts_checked})"
        )


def verify_index(
    index: BackboneIndex, *, landmark_samples: int = 10
) -> VerificationReport:
    """Check a backbone index's structural invariants.

    Returns a report; ``report.ok`` is True when every invariant holds.
    Problems are collected (not raised) so one inspection surfaces
    everything at once.
    """
    report = VerificationReport()
    problem = report.problems.append
    dim = index.dim
    top_nodes = set(index.top_graph.nodes())

    # nodes labelled at any level AFTER level i, per level
    later_labelled: list[set[int]] = []
    accumulator: set[int] = set()
    for level in reversed(index.levels):
        later_labelled.append(set(accumulator))
        accumulator |= set(level.nodes())
    later_labelled.reverse()

    for level_number, level in enumerate(index.levels):
        for node in level.nodes():
            label = level.get(node)
            report.labels_checked += 1
            for entrance, paths in label.entrances.items():
                if entrance == node:
                    problem(
                        f"level {level_number}: node {node} has a "
                        "self-entrance"
                    )
                if (
                    entrance not in top_nodes
                    and entrance not in later_labelled[level_number]
                ):
                    problem(
                        f"level {level_number}: entrance {entrance} of node "
                        f"{node} neither survives to G_L nor is condensed "
                        "later"
                    )
                costs = []
                for path in paths:
                    report.paths_checked += 1
                    if path.source != node or path.target != entrance:
                        problem(
                            f"level {level_number}: path endpoints "
                            f"{path.source}->{path.target} disagree with "
                            f"label ({node} -> {entrance})"
                        )
                    if path.dim != dim:
                        problem(
                            f"level {level_number}: path with {path.dim} "
                            f"dimensions in a {dim}-dimensional index"
                        )
                    if any(c < 0 for c in path.cost):
                        problem(
                            f"level {level_number}: negative path cost "
                            f"{path.cost}"
                        )
                    costs.append(path.cost)
                for i, a in enumerate(costs):
                    for j, b in enumerate(costs):
                        if i != j and dominates(a, b):
                            problem(
                                f"level {level_number}: dominated path kept "
                                f"for ({node} -> {entrance})"
                            )

    if index.top_graph.num_nodes == 0:
        problem("top graph is empty")
    if index.top_graph.dim != dim:
        problem("top graph dimensionality disagrees with the index")
    for node in top_nodes:
        if not index.original_graph.has_node(node):
            problem(f"top-graph node {node} does not exist in G_0")

    for (u, v, cost), sequence in index.provenance.items():
        report.shortcuts_checked += 1
        if {sequence[0], sequence[-1]} != {u, v}:
            problem(
                f"shortcut ({u}, {v}) provenance endpoints "
                f"{sequence[0]}..{sequence[-1]} disagree"
            )
        if len(cost) != dim:
            problem(f"shortcut ({u}, {v}) cost has wrong dimensionality")
        try:
            expanded = index._expand_pair(u, v, depth=0)
        except Exception as error:  # noqa: BLE001 - reported, not raised
            problem(f"shortcut ({u}, {v}) fails to expand: {error}")
            continue
        if expanded[0] != u or expanded[-1] != v:
            problem(f"shortcut ({u}, {v}) expansion endpoints disagree")

    # landmark admissibility on sampled top-graph pairs
    sample = sorted(top_nodes)[:landmark_samples]
    true_costs = {
        node: [shortest_costs(index.top_graph, node, i) for i in range(dim)]
        for node in sample[:3]
    }
    for source in list(true_costs)[:3]:
        for target in sample:
            bound = index.landmarks.lower_bound(source, target)
            for i in range(dim):
                true = true_costs[source][i].get(target)
                if true is not None and bound[i] > true + 1e-6:
                    problem(
                        f"landmark bound {bound[i]:.6g} exceeds true "
                        f"distance {true:.6g} for ({source}, {target}) "
                        f"dim {i}"
                    )
    return report
