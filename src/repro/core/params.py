"""Backbone-index construction parameters (Definition 4.8, Section 6.1).

The paper's defaults: condensing-threshold percentage ``p_ind = 0.3``,
minimum cluster size ``m_min = 30``, maximum cluster size
``m_max = 200``, and minimum per-level edge-removal fraction
``p = 0.01``.  Three construction variants differ in *when* the
aggressive single-segment summarization fires (Section 6.1):

* ``NONE`` — never (``backbone_none``);
* ``NORMAL`` — only when regular summarization removed fewer than
  ``p * |G_0.E|`` edges (``backbone_normal``, Algorithm 2);
* ``EACH`` — at every level (``backbone_each``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import BuildError


class AggressiveMode(enum.Enum):
    """When the aggressive single-segment summarization is triggered."""

    NONE = "none"
    NORMAL = "normal"
    EACH = "each"


class ClusteringStrategy(enum.Enum):
    """How a level's local units are discovered (Section 6.2.3)."""

    DENSE = "dense"  # the paper's cluster-coefficient growth (Algorithm 1)
    BFS = "bfs"  # BFS chunking, the ablation comparator


class TreePolicy(enum.Enum):
    """Edge preference when building a cluster's spanning tree.

    The paper keeps *higher degree-pair* edges "because they can keep
    more information in the original graph" (Section 4.2.3); the
    ARBITRARY policy (plain Kruskal in edge-id order) is the ablation
    comparator for that design choice.
    """

    DEGREE_PAIR = "degree_pair"
    ARBITRARY = "arbitrary"


class LabelScope(enum.Enum):
    """Which edges label searches may use (Section 4.3.1).

    The paper restricts label paths to each cluster's *removed* edges —
    "this strategy not only preserves the deleted edge information in
    the skyline paths, but also speeds up the query process".  The
    FULL_CLUSTER scope (removed + kept cluster edges) is the ablation
    comparator: better labels, costlier construction.
    """

    REMOVED_EDGES = "removed_edges"
    FULL_CLUSTER = "full_cluster"


@dataclass(frozen=True)
class BackboneParams:
    """Parameters controlling backbone-index construction.

    Attributes
    ----------
    m_max:
        Maximum nodes per dense cluster.
    m_min:
        Clusters smaller than this merge into a neighbor.
    p:
        Minimum fraction of the *original* edge count that each level
        must remove; controls the index height L.
    p_ind:
        Condensing-threshold percentage for noise detection.
    aggressive:
        Aggressive-summarization trigger policy (the paper's variants).
    clustering:
        Dense-cluster discovery (paper) or BFS partitioning (ablation).
    tree_policy:
        Spanning-tree edge preference (paper: degree pairs; ablation:
        arbitrary Kruskal).
    label_scope:
        Edges available to label searches (paper: removed edges only;
        ablation: the whole cluster subgraph).
    landmark_count:
        Landmarks built over the most abstracted graph G_L.
    max_levels:
        Safety cap on index height.
    max_label_frontier:
        Optional cap on skyline paths kept per (node, entrance) during
        label construction; ``None`` keeps all.
    """

    m_max: int = 200
    m_min: int = 30
    p: float = 0.01
    p_ind: float = 0.3
    aggressive: AggressiveMode = AggressiveMode.NORMAL
    clustering: ClusteringStrategy = ClusteringStrategy.DENSE
    tree_policy: TreePolicy = TreePolicy.DEGREE_PAIR
    label_scope: LabelScope = LabelScope.REMOVED_EDGES
    landmark_count: int = 8
    max_levels: int = 64
    max_label_frontier: int | None = field(default=None)

    def __post_init__(self) -> None:
        if self.m_max < 1:
            raise BuildError(f"m_max must be >= 1, got {self.m_max}")
        if self.m_min < 0:
            raise BuildError(f"m_min must be >= 0, got {self.m_min}")
        if self.m_min > self.m_max:
            raise BuildError(
                f"m_min ({self.m_min}) cannot exceed m_max ({self.m_max})"
            )
        if not 0.0 < self.p < 1.0:
            raise BuildError(f"p must lie in (0, 1), got {self.p}")
        if not 0.0 <= self.p_ind < 1.0:
            raise BuildError(f"p_ind must lie in [0, 1), got {self.p_ind}")
        if self.landmark_count < 1:
            raise BuildError(
                f"landmark_count must be >= 1, got {self.landmark_count}"
            )
        if self.max_levels < 1:
            raise BuildError(f"max_levels must be >= 1, got {self.max_levels}")
        if self.max_label_frontier is not None and self.max_label_frontier < 1:
            raise BuildError(
                "max_label_frontier must be >= 1 or None, "
                f"got {self.max_label_frontier}"
            )
