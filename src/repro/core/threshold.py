"""The condensing threshold for noise-node detection (Definition 4.3).

Sparse components (secluded roads) must survive summarization or their
nodes become unreachable.  The paper flags a node as *noise* when its
two-hop cardinality ``|N1(v) + N2(v)|`` falls below a data-driven
threshold ``noise_val`` computed from the frequency histogram of
two-hop cardinalities.

Note on the paper's off-by-one: Definition 4.3's prefix-sum condition
and Example 4.4 disagree by one position (the formula selects position
2 while the example reads ``L[1]``).  We follow the worked example:
with ``(frequency, cardinality)`` pairs sorted ascending by frequency
(ties broken by cardinality), ``noise_val`` is the cardinality at the
**largest** position whose frequency prefix-sum is still
``<= p_ind * |V|``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.errors import BuildError


def condensing_threshold(cardinalities: Iterable[int], p_ind: float) -> int:
    """Compute ``noise_val`` from two-hop cardinalities (Definition 4.3).

    Returns 0 (nothing is noise) when ``p_ind`` is 0 or no position's
    prefix-sum fits under the budget.
    """
    if not 0.0 <= p_ind < 1.0:
        raise BuildError(f"p_ind must lie in [0, 1), got {p_ind}")
    values = list(cardinalities)
    if not values:
        raise BuildError("cannot compute a condensing threshold of zero nodes")
    if p_ind == 0.0:
        return 0
    frequency = Counter(values)
    # Ascending by frequency, ties by cardinality (matches Example 4.4,
    # where L(G) = (1, 2, 2, 2, 3) lists freq(2), freq(3), freq(4), ...).
    ordered = sorted(frequency.items(), key=lambda item: (item[1], item[0]))
    budget = p_ind * len(values)
    prefix = 0
    chosen = -1
    for position, (cardinality, freq) in enumerate(ordered):
        prefix += freq
        if prefix <= budget:
            chosen = position
        else:
            break
    if chosen < 0:
        return 0
    return ordered[chosen][0]


def is_noise(cardinality: int, noise_val: int) -> bool:
    """Noise test: a node is noise when its cardinality is below the threshold."""
    return cardinality < noise_val
