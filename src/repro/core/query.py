"""Query processing over the backbone index — Algorithm 3.

A skyline path query (v_s, v_t) is answered approximately in three
phases:

1. **Grow S** — skyline paths from v_s climb the index level by level:
   at level i, every reached node's label extends the partial paths to
   that node's highway entrances.  Reaching v_t directly yields results.
2. **Grow D** — the same from v_t, with the extra *meet* rule: reaching
   a node already in S joins the two half-paths into a candidate
   (the paper's first type of backbone paths).
3. **m_BBS on G_L** — partial paths that survive into the most
   abstracted graph are connected by one many-to-many skyline search
   with landmark lower bounds (the second type).

All candidate paths pass through one shared result skyline, so the
returned set is mutually non-dominated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.index import BackboneIndex
from repro.errors import NodeNotFoundError
from repro.paths.frontier import PathSet
from repro.paths.path import Path
from repro.search.bbs import SearchStats
from repro.search.bounds import LandmarkLowerBounds
from repro.search.mbbs import Seed, many_to_many_skyline
from repro.search.onetoall import one_to_all_skyline


@dataclass
class QueryStats:
    """Diagnostics for one backbone query."""

    elapsed_seconds: float = 0.0
    source_keys: int = 0
    target_keys: int = 0
    first_type_candidates: int = 0
    second_type_candidates: int = 0
    mbbs_stats: SearchStats | None = None


@dataclass
class QueryResult:
    """Approximate skyline paths plus diagnostics."""

    paths: list[Path] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


def _grow(
    index: BackboneIndex,
    start: int,
    *,
    results: PathSet,
    other: dict[int, PathSet] | None,
    goal: int,
    stats: QueryStats,
) -> dict[int, PathSet]:
    """Climb the index from ``start``; implements both loops of Alg. 3.

    ``other`` is the already-grown map of the opposite endpoint (None
    while growing S); meets against it produce first-type candidates.
    Paths in the returned map run ``start -> key``.
    """
    reached: dict[int, PathSet] = {
        start: PathSet([Path.trivial(start, index.dim)])
    }
    for level in index.levels:
        for node in list(reached.keys()):
            label = level.get(node)
            if label is None:
                continue
            prefixes = reached[node].paths()
            for entrance, hops in label.entrances.items():
                combined = [
                    prefix.concat(hop) for prefix in prefixes for hop in hops
                ]
                if entrance == goal:
                    for path in combined:
                        if results.add(path if other is None else path.reverse()):
                            stats.first_type_candidates += 1
                    continue
                if other is not None and entrance in other:
                    for half in other[entrance]:
                        for path in combined:
                            if results.add(half.concat(path.reverse())):
                                stats.first_type_candidates += 1
                bucket = reached.get(entrance)
                if bucket is None:
                    bucket = reached[entrance] = PathSet()
                bucket.add_all(combined)
    return reached


def backbone_query(
    index: BackboneIndex,
    source: int,
    target: int,
    *,
    time_budget: float | None = None,
) -> QueryResult:
    """Approximate skyline paths between two nodes (Algorithm 3)."""
    graph = index.original_graph
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    started = time.perf_counter()
    stats = QueryStats()
    if source == target:
        result = QueryResult(paths=[Path.trivial(source, index.dim)], stats=stats)
        stats.elapsed_seconds = time.perf_counter() - started
        return result

    results = PathSet()
    # Phase 1: grow S from the source (paths run source -> key).
    source_map = _grow(
        index, source, results=results, other=None, goal=target, stats=stats
    )
    # Phase 2: grow D from the target, meeting S along the way.
    target_map = _grow(
        index, target, results=results, other=source_map, goal=source, stats=stats
    )
    stats.source_keys = len(source_map)
    stats.target_keys = len(target_map)

    # Phase 3: second-type paths through the most abstracted graph.
    top = index.top_graph
    source_possible = [node for node in source_map if top.has_node(node)]
    target_possible = [node for node in target_map if top.has_node(node)]
    if source_possible and target_possible:
        seeds = [
            Seed(node, prefix.cost, payload=prefix)
            for node in source_possible
            for prefix in source_map[node]
        ]
        bounds = LandmarkLowerBounds(index.landmarks, target_possible)
        outcome = many_to_many_skyline(
            top,
            seeds,
            target_possible,
            bounds=bounds,
            time_budget=time_budget,
        )
        stats.mbbs_stats = outcome.stats
        for landing, hits in outcome.hits.items():
            suffixes = target_map[landing].paths()
            for _cost, (prefix, middle) in hits:
                through = prefix.concat(middle)
                for suffix in suffixes:
                    if results.add(through.concat(suffix.reverse())):
                        stats.second_type_candidates += 1

    stats.elapsed_seconds = time.perf_counter() - started
    return QueryResult(paths=results.paths(), stats=stats)


def backbone_one_to_all(
    index: BackboneIndex, source: int
) -> dict[int, list[Path]]:
    """Approximate one-to-all skyline paths (Section 5 extension).

    The source's partial paths climb to G_L, a one-to-all skyline runs
    there, and the results flow back *down* the index: at each level,
    a labelled node inherits paths from its entrances by reversed-label
    concatenation.  Returns a map node -> approximate skyline paths
    (the source maps to its trivial path).
    """
    graph = index.original_graph
    if not graph.has_node(source):
        raise NodeNotFoundError(source)

    stats = QueryStats()
    results = PathSet()  # unused sink for the grow helper
    reached = _grow(
        index, source, results=results, other=None, goal=source, stats=stats
    )

    answers: dict[int, PathSet] = {}
    for node, bucket in reached.items():
        answers[node] = PathSet(bucket.paths())

    # Sweep the most abstracted graph from every surviving key.
    top = index.top_graph
    for node in list(answers.keys()):
        if not top.has_node(node):
            continue
        prefixes = answers[node].paths()
        for landing, paths in one_to_all_skyline(top, node).items():
            if landing == node:
                continue
            bucket = answers.setdefault(landing, PathSet())
            for prefix in prefixes:
                for middle in paths:
                    bucket.add(prefix.concat(middle))

    # Flow back down: a labelled node is reachable through any of its
    # entrances by reversing the label paths.
    for level in reversed(index.levels):
        for node in level.nodes():
            label = level.get(node)
            assert label is not None
            bucket = answers.setdefault(node, PathSet())
            for entrance, hops in label.entrances.items():
                upstream = answers.get(entrance)
                if upstream is None or entrance == node:
                    continue
                for prefix in upstream.paths():
                    for hop in hops:
                        bucket.add(prefix.concat(hop.reverse()))

    return {
        node: bucket.paths() for node, bucket in answers.items() if bucket
    }
