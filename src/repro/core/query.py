"""Query processing over the backbone index — Algorithm 3.

A skyline path query (v_s, v_t) is answered approximately in three
phases:

1. **Grow S** — skyline paths from v_s climb the index level by level:
   at level i, every reached node's label extends the partial paths to
   that node's highway entrances.  Reaching v_t directly yields results.
2. **Grow D** — the same from v_t, with the extra *meet* rule: reaching
   a node already in S joins the two half-paths into a candidate
   (the paper's first type of backbone paths).
3. **m_BBS on G_L** — partial paths that survive into the most
   abstracted graph are connected by one many-to-many skyline search
   with landmark lower bounds (the second type).

All candidate paths pass through one shared result skyline, so the
returned set is mutually non-dominated.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.index import BackboneIndex
from repro.errors import NodeNotFoundError
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.frontier import PathSet
from repro.paths.path import Path
from repro.search.bbs import SearchStats
from repro.search.bounds import LandmarkLowerBounds
from repro.search.mbbs import Seed, many_to_many_skyline
from repro.search.onetoall import one_to_all_skyline


@dataclass
class QueryStats:
    """Diagnostics for one backbone query.

    ``truncated_phase`` names the first phase a time budget cut short
    (``"grow_s"``, ``"grow_t"``, or ``"connect_top"``); None while the
    query ran to completion.  ``phase_seconds`` maps phase names to
    wall-clock durations, populated *from spans* when an enabled
    :class:`~repro.obs.Tracer` observes the query (empty otherwise, so
    untraced hot-path queries pay nothing for it).
    """

    elapsed_seconds: float = 0.0
    source_keys: int = 0
    target_keys: int = 0
    first_type_candidates: int = 0
    second_type_candidates: int = 0
    truncated: bool = False
    truncated_phase: str | None = None
    mbbs_stats: SearchStats | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def mark_truncated(self, phase: str) -> None:
        """Record a budget cut, keeping the *first* cut phase."""
        self.truncated = True
        if self.truncated_phase is None:
            self.truncated_phase = phase


@dataclass
class QueryResult:
    """Approximate skyline paths plus diagnostics.

    ``truncated`` is True when a wall-clock budget expired before the
    search finished: the paths are the best partial skyline found so
    far rather than the full approximate answer.  ``planner_mode``
    records which strategy produced the result ("approx" for the
    backbone algorithm; the service layer also sets "exact" and
    "corridor").  ``quality`` carries the corridor tier's online
    :class:`~repro.approx.quality.QualityReport` (None elsewhere) and
    ``escalated`` marks an answer re-served by the exact tier after a
    missed quality target.
    """

    paths: list[Path] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    truncated: bool = False
    planner_mode: str = "approx"
    quality: object | None = None
    escalated: bool = False

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


def _grow(
    index: BackboneIndex,
    start: int,
    *,
    results: PathSet,
    other: dict[int, PathSet] | None,
    goal: int | None,
    stats: QueryStats,
    deadline: float | None = None,
) -> tuple[dict[int, PathSet], bool]:
    """Climb the index from ``start``; implements both loops of Alg. 3.

    ``other`` is the already-grown map of the opposite endpoint (None
    while growing S); meets against it produce first-type candidates.
    Paths in the returned map run ``start -> key``.  With ``goal=None``
    no direct-hit harvesting happens, making the grown map reusable
    across targets (see :func:`backbone_query_shared_source`).  Returns
    the reached map plus a flag set when ``deadline`` expired mid-grow.
    """
    reached: dict[int, PathSet] = {
        start: PathSet([Path.trivial(start, index.dim)])
    }
    for level in index.levels:
        for node in list(reached.keys()):
            if deadline is not None and time.perf_counter() > deadline:
                return reached, True
            label = level.get(node)
            if label is None:
                continue
            prefixes = reached[node].paths()
            for entrance, hops in label.entrances.items():
                combined = [
                    prefix.concat(hop) for prefix in prefixes for hop in hops
                ]
                if entrance == goal:
                    for path in combined:
                        if results.add(path if other is None else path.reverse()):
                            stats.first_type_candidates += 1
                    continue
                if other is not None and entrance in other:
                    for half in other[entrance]:
                        for path in combined:
                            if results.add(half.concat(path.reverse())):
                                stats.first_type_candidates += 1
                bucket = reached.get(entrance)
                if bucket is None:
                    bucket = reached[entrance] = PathSet()
                bucket.add_all(combined)
    return reached, False


def _top_snapshot(index: BackboneIndex, engine: str, tracer: Tracer | None):
    """The CSR snapshot the top-graph search should use, per ``engine``.

    ``"flat"`` and ``"batch"`` build (and cache on the index) the
    snapshot; ``"auto"`` only reuses one that already exists, so queries
    never pay a build.
    """
    if engine in ("flat", "batch"):
        return index.csr_top(tracer=tracer)
    if engine == "auto":
        return index.csr_top(build=False)
    return None


def _connect_through_top(
    index: BackboneIndex,
    source_map: dict[int, PathSet],
    target_map: dict[int, PathSet],
    results: PathSet,
    stats: QueryStats,
    deadline: float | None,
    tracer: Tracer | None = None,
    engine: str = "auto",
) -> None:
    """Phase 3: second-type paths through the most abstracted graph."""
    top = index.top_graph
    source_possible = [node for node in source_map if top.has_node(node)]
    target_possible = [node for node in target_map if top.has_node(node)]
    if not source_possible or not target_possible:
        return
    remaining: float | None = None
    if deadline is not None:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            stats.mark_truncated("connect_top")
            return
    seeds = [
        Seed(node, prefix.cost, payload=prefix)
        for node in source_possible
        for prefix in source_map[node]
    ]
    bounds = LandmarkLowerBounds(index.landmarks, target_possible)
    snapshot = _top_snapshot(index, engine, tracer)
    if snapshot is None:
        kernel = "python"
    elif engine == "batch":
        kernel = "batch"
    else:
        kernel = "flat"
    outcome = many_to_many_skyline(
        top,
        seeds,
        target_possible,
        bounds=bounds,
        time_budget=remaining,
        tracer=tracer,
        engine=kernel,
        snapshot=snapshot,
    )
    stats.mbbs_stats = outcome.stats
    if outcome.stats.timed_out:
        stats.mark_truncated("connect_top")
    for landing, hits in outcome.hits.items():
        suffixes = target_map[landing].paths()
        for _cost, (prefix, middle) in hits:
            through = prefix.concat(middle)
            for suffix in suffixes:
                if results.add(through.concat(suffix.reverse())):
                    stats.second_type_candidates += 1


def backbone_query(
    index: BackboneIndex,
    source: int,
    target: int,
    *,
    time_budget: float | None = None,
    tracer: Tracer | None = None,
    engine: str = "auto",
) -> QueryResult:
    """Approximate skyline paths between two nodes (Algorithm 3).

    ``time_budget`` caps wall-clock seconds across all three phases; on
    expiry the best partial skyline found so far is returned with
    ``truncated=True`` instead of raising (``stats.truncated_phase``
    names the phase that was cut).  An enabled ``tracer`` wraps the
    query in a ``query.backbone`` span with one child span per phase
    (``query.phase.grow_s`` / ``grow_t`` / ``connect_top``).

    ``engine`` selects the kernel for the top-graph m_BBS phase (the
    dominant search): ``"flat"`` and ``"batch"`` build and cache the
    index's CSR snapshot, ``"auto"`` (default) uses it when already
    built, and ``"python"`` never does.  ``"batch"`` runs the
    bucket-vectorized kernel (answer-set-equal, counters differ — see
    :mod:`repro.accel.batch_kernel`).  The grow phases walk per-level
    label structures, not a graph, so the option does not affect them.
    """
    graph = index.original_graph
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    started = time.perf_counter()
    deadline = started + time_budget if time_budget is not None else None
    stats = QueryStats()
    if source == target:
        result = QueryResult(paths=[Path.trivial(source, index.dim)], stats=stats)
        stats.elapsed_seconds = time.perf_counter() - started
        return result
    if time_budget is not None and time_budget <= 0:
        # An already-expired budget must not pay for a first grow
        # iteration; return the immediately-truncated empty result.
        stats.mark_truncated("grow_s")
        stats.elapsed_seconds = time.perf_counter() - started
        return QueryResult(stats=stats, truncated=True)

    tracer = resolve_tracer(tracer)
    results = PathSet()
    with tracer.span(
        "query.backbone", source=source, target=target
    ) as qspan:
        # Phase 1: grow S from the source (paths run source -> key).
        with tracer.span("query.phase.grow_s") as span:
            source_map, cut = _grow(
                index, source, results=results, other=None, goal=target,
                stats=stats, deadline=deadline,
            )
            if cut:
                stats.mark_truncated("grow_s")
            if span.enabled:
                span.set(keys=len(source_map), truncated=cut)
        if span.enabled:
            stats.phase_seconds["grow_s"] = span.duration
        # Phase 2: grow D from the target, meeting S along the way.
        with tracer.span("query.phase.grow_t") as span:
            target_map, cut = _grow(
                index, target, results=results, other=source_map, goal=source,
                stats=stats, deadline=deadline,
            )
            if cut:
                stats.mark_truncated("grow_t")
            if span.enabled:
                span.set(keys=len(target_map), truncated=cut)
        if span.enabled:
            stats.phase_seconds["grow_t"] = span.duration
        stats.source_keys = len(source_map)
        stats.target_keys = len(target_map)

        # Phase 3: connect surviving partial paths through G_L.
        with tracer.span("query.phase.connect_top") as span:
            _connect_through_top(
                index, source_map, target_map, results, stats, deadline,
                tracer=tracer, engine=engine,
            )
            if span.enabled and stats.mbbs_stats is not None:
                span.counters.update(stats.mbbs_stats.as_span_counters())
        if span.enabled:
            stats.phase_seconds["connect_top"] = span.duration

        stats.elapsed_seconds = time.perf_counter() - started
        if qspan.enabled:
            qspan.set(
                paths=len(results),
                truncated=stats.truncated,
                truncated_phase=stats.truncated_phase,
                first_type=stats.first_type_candidates,
                second_type=stats.second_type_candidates,
            )
    return QueryResult(
        paths=results.paths(), stats=stats, truncated=stats.truncated
    )


def backbone_query_shared_source(
    index: BackboneIndex,
    source: int,
    targets: Sequence[int],
    *,
    time_budget: float | None = None,
    tracer: Tracer | None = None,
    engine: str = "auto",
) -> dict[int, QueryResult]:
    """Answer many queries from one source, growing S only once.

    ParetoPrep-style amortization for batched workloads: phase 1 (grow
    S) does not depend on the target, so a batch of queries sharing a
    source pays for it once.  Phase 1 runs with no direct-hit
    harvesting (``goal=None``); per target, the source map's paths that
    already end at the target are harvested as first-type candidates
    before phases 2 and 3 run as usual.  Extra candidates that pass
    through a target and continue (impossible in the single-query
    variant, where direct hits stop growing) carry a component-wise
    larger cost than an already-harvested direct path, so the final
    skyline per target is identical to running each query alone through
    this function.

    ``time_budget`` covers the whole batch; per-target results that ran
    out of time come back with ``truncated=True``.
    """
    graph = index.original_graph
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    for target in targets:
        if not graph.has_node(target):
            raise NodeNotFoundError(target)
    started = time.perf_counter()
    deadline = started + time_budget if time_budget is not None else None
    if time_budget is not None and time_budget <= 0:
        # Same contract as backbone_query: an expired budget yields
        # immediately-truncated empty results without growing anything.
        answers: dict[int, QueryResult] = {}
        for target in targets:
            if target in answers:
                continue
            stats = QueryStats()
            if source == target:
                answers[target] = QueryResult(
                    paths=[Path.trivial(source, index.dim)], stats=stats
                )
            else:
                stats.mark_truncated("grow_s")
                answers[target] = QueryResult(stats=stats, truncated=True)
            stats.elapsed_seconds = time.perf_counter() - started
        return answers
    tracer = resolve_tracer(tracer)

    with tracer.span(
        "query.shared_source", source=source, targets=len(targets)
    ) as batch_span:
        grow_stats = QueryStats()
        sink = PathSet()  # goal=None never harvests into it
        with tracer.span("query.phase.grow_s", shared=True) as grow_span:
            source_map, source_cut = _grow(
                index, source, results=sink, other=None, goal=None,
                stats=grow_stats, deadline=deadline,
            )
            if grow_span.enabled:
                grow_span.set(keys=len(source_map), truncated=source_cut)
        shared_seconds = time.perf_counter() - started

        answers: dict[int, QueryResult] = {}
        for target in targets:
            if target in answers:
                continue
            target_started = time.perf_counter()
            stats = QueryStats()
            if source_cut:
                stats.mark_truncated("grow_s")
            if grow_span.enabled:
                stats.phase_seconds["grow_s"] = grow_span.duration
            if source == target:
                answers[target] = QueryResult(
                    paths=[Path.trivial(source, index.dim)], stats=stats
                )
                stats.elapsed_seconds = time.perf_counter() - target_started
                continue
            with tracer.span("query.target", target=target) as tspan:
                results = PathSet()
                direct = source_map.get(target)
                if direct is not None:
                    for path in direct.paths():
                        if results.add(path):
                            stats.first_type_candidates += 1
                with tracer.span("query.phase.grow_t") as span:
                    target_map, cut = _grow(
                        index, target, results=results, other=source_map,
                        goal=source, stats=stats, deadline=deadline,
                    )
                    if cut:
                        stats.mark_truncated("grow_t")
                    if span.enabled:
                        span.set(keys=len(target_map), truncated=cut)
                if span.enabled:
                    stats.phase_seconds["grow_t"] = span.duration
                stats.source_keys = len(source_map)
                stats.target_keys = len(target_map)
                with tracer.span("query.phase.connect_top") as span:
                    _connect_through_top(
                        index, source_map, target_map, results, stats,
                        deadline, tracer=tracer, engine=engine,
                    )
                    if span.enabled and stats.mbbs_stats is not None:
                        span.counters.update(
                            stats.mbbs_stats.as_span_counters()
                        )
                if span.enabled:
                    stats.phase_seconds["connect_top"] = span.duration
                if tspan.enabled:
                    tspan.set(
                        paths=len(results),
                        truncated=stats.truncated,
                        truncated_phase=stats.truncated_phase,
                    )
            stats.elapsed_seconds = shared_seconds + (
                time.perf_counter() - target_started
            )
            answers[target] = QueryResult(
                paths=results.paths(), stats=stats, truncated=stats.truncated
            )
        if batch_span.enabled:
            batch_span.set(
                unique_targets=len(answers),
                truncated=any(a.truncated for a in answers.values()),
            )
    return answers


def backbone_one_to_all(
    index: BackboneIndex, source: int, *, engine: str = "auto"
) -> dict[int, list[Path]]:
    """Approximate one-to-all skyline paths (Section 5 extension).

    The source's partial paths climb to G_L, a one-to-all skyline runs
    there, and the results flow back *down* the index: at each level,
    a labelled node inherits paths from its entrances by reversed-label
    concatenation.  Returns a map node -> approximate skyline paths
    (the source maps to its trivial path).

    ``engine`` selects the kernel tier for the G_L sweeps — same
    contract as :func:`backbone_query`: ``"flat"``/``"batch"`` run the
    CSR one-to-all kernel over the index's cached top snapshot,
    ``"auto"`` reuses that snapshot only when it already exists, and
    ``"python"`` keeps the dict-based search.  Flat answers are
    bit-identical to python; batch answers are equal as path sets.
    """
    graph = index.original_graph
    if not graph.has_node(source):
        raise NodeNotFoundError(source)

    stats = QueryStats()
    results = PathSet()  # unused sink for the grow helper
    reached, _ = _grow(
        index, source, results=results, other=None, goal=source, stats=stats
    )

    answers: dict[int, PathSet] = {}
    for node, bucket in reached.items():
        answers[node] = PathSet(bucket.paths())

    # Sweep the most abstracted graph from every surviving key.
    top = index.top_graph
    snapshot = _top_snapshot(index, engine, None)
    if snapshot is None:
        kernel = "python"
    else:
        kernel = "batch" if engine == "batch" else "flat"
    for node in list(answers.keys()):
        if not top.has_node(node):
            continue
        prefixes = answers[node].paths()
        sweep = one_to_all_skyline(
            top, node, engine=kernel, snapshot=snapshot
        )
        for landing, paths in sweep.items():
            if landing == node:
                continue
            bucket = answers.setdefault(landing, PathSet())
            for prefix in prefixes:
                for middle in paths:
                    bucket.add(prefix.concat(middle))

    # Flow back down: a labelled node is reachable through any of its
    # entrances by reversing the label paths.
    for level in reversed(index.levels):
        for node in level.nodes():
            label = level.get(node)
            assert label is not None
            bucket = answers.setdefault(node, PathSet())
            for entrance, hops in label.entrances.items():
                upstream = answers.get(entrance)
                if upstream is None or entrance == node:
                    continue
                for prefix in upstream.paths():
                    for hop in hops:
                        bucket.add(prefix.concat(hop.reverse()))

    return {
        node: bucket.paths() for node, bucket in answers.items() if bucket
    }
