"""Dynamic index maintenance (paper Section 4.3.1, "Index maintenance").

The paper maintains the backbone index under road-network updates by
recalculating skyline-path information for the affected parts instead
of rebuilding everything.  This module implements that idea at level
granularity: a :class:`MaintainableIndex` keeps a snapshot of every
level's input graph; when an edge or node changes, construction is
replayed only from the *deepest level still containing the touched
elements* — levels below it are provably unaffected, because their
labels were computed exclusively from edges already removed before the
change's level.

Cost model: an update touching only the abstracted graph G_i (i > 0)
replays the cheap upper levels; a ground-level update (new node, new
level-0 edge) degenerates to a full rebuild, exactly as the paper's
cluster-local scheme degenerates when an update splits a level-0
cluster.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.builder import (
    required_edge_removals,
    summarize_levels,
)
from repro.core.index import BackboneIndex, BuildStats, ShortcutKey
from repro.core.params import BackboneParams
from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.search.landmark import LandmarkIndex


def _path_uses_edge(path: Path, edge: tuple[int, int]) -> bool:
    """True when the walk traverses the (undirected) edge either way."""
    u, v = edge
    for a, b in zip(path.nodes, path.nodes[1:]):
        if (a == u and b == v) or (a == v and b == u):
            return True
    return False


@dataclass
class MaintenanceStats:
    """Counters describing maintenance activity so far."""

    updates: int = 0
    levels_replayed: int = 0
    full_rebuilds: int = 0


class MaintainableIndex:
    """A backbone index that absorbs network updates incrementally.

    Parameters
    ----------
    graph:
        The network to index.  The maintainer owns a private copy; read
        it through :attr:`graph`.
    params:
        Backbone construction parameters.
    """

    def __init__(
        self, graph: MultiCostGraph, params: BackboneParams | None = None
    ) -> None:
        self._params = params if params is not None else BackboneParams()
        self._graph = graph.copy()
        self.maintenance_stats = MaintenanceStats()
        self._snapshots: list[MultiCostGraph] = []
        self._level_provenance: list[dict[ShortcutKey, tuple[int, ...]]] = []
        self._index: BackboneIndex | None = None
        self.generation = 0
        self._listeners: list[Callable[[int], None]] = []
        self._rebuild_from(0)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def graph(self) -> MultiCostGraph:
        """The current network (do not mutate; use the update methods)."""
        return self._graph

    @property
    def index(self) -> BackboneIndex:
        """The up-to-date backbone index."""
        assert self._index is not None
        return self._index

    def query(self, source: int, target: int, **kwargs):
        """Convenience: query the maintained index."""
        return self.index.query(source, target, **kwargs)

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired (with the new generation) after
        every structural update.

        The serving layer uses this to invalidate cached query results:
        a result computed against generation g must never be served once
        the network has moved to generation g+1.
        """
        self._listeners.append(listener)

    def _bump_generation(self) -> None:
        self.generation += 1
        for listener in list(self._listeners):
            listener(self.generation)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert_edge(self, u: int, v: int, cost: Sequence[float]) -> None:
        """Add a road; replays construction from the deepest level with
        both endpoints present."""
        self._graph.add_edge(u, v, cost)
        self._apply_at(self._deepest_level_with_nodes(u, v), "add_edge", u, v, cost)

    def delete_edge(self, u: int, v: int, cost: Sequence[float] | None = None) -> None:
        """Remove a road (one parallel cost or all) and repair the index."""
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._graph.remove_edge(u, v, cost)
        level = self._deepest_level_with_edge(u, v)
        level = self._shallowest_label_reference(level, edge=(u, v))
        self._apply_at(level, "remove_edge", u, v, cost)

    def update_edge_cost(
        self, u: int, v: int, old_cost: Sequence[float], new_cost: Sequence[float]
    ) -> None:
        """Change one road's cost vector and repair the index."""
        self._graph.remove_edge(u, v, old_cost)
        self._graph.add_edge(u, v, new_cost)
        level = self._deepest_level_with_edge(u, v)
        level = self._shallowest_label_reference(level, edge=(u, v))
        self._apply_at(level, "update_edge", u, v, (old_cost, new_cost))

    def insert_node(
        self,
        node: int,
        edges: Sequence[tuple[int, Sequence[float]]],
        coord: tuple[float, float] | None = None,
    ) -> None:
        """Add a junction with its incident roads (ground-level rebuild)."""
        if self._graph.has_node(node):
            raise GraphError(f"node {node} already exists")
        if not edges:
            raise GraphError("a new junction needs at least one incident road")
        self._graph.add_node(node, coord)
        for neighbor, cost in edges:
            self._graph.add_edge(node, neighbor, cost)
        self._rebuild_from(0)
        self.maintenance_stats.updates += 1
        self.maintenance_stats.full_rebuilds += 1
        self._bump_generation()

    def delete_node(self, node: int) -> None:
        """Remove a junction and its roads, repairing from its level."""
        if not self._graph.has_node(node):
            raise NodeNotFoundError(node)
        level = 0
        for i, snapshot in enumerate(self._snapshots):
            if snapshot.has_node(node):
                level = i
        level = self._shallowest_label_reference(level, node=node)
        self._graph.remove_node(node)
        self._replay(level, lambda g: g.remove_node(node) if g.has_node(node) else None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _deepest_level_with_nodes(self, u: int, v: int) -> int:
        level = 0
        for i, snapshot in enumerate(self._snapshots):
            if snapshot.has_node(u) and snapshot.has_node(v):
                level = i
        return level

    def _deepest_level_with_edge(self, u: int, v: int) -> int:
        level = 0
        for i, snapshot in enumerate(self._snapshots):
            if snapshot.has_edge(u, v):
                level = i
        return level

    def _shallowest_label_reference(
        self,
        limit: int,
        *,
        edge: tuple[int, int] | None = None,
        node: int | None = None,
    ) -> int:
        """Lower the replay level to the shallowest level whose labels
        price or traverse the touched element; ``limit`` when none does.

        Level-i labels are normally built exclusively from edges removed
        during level i's construction, so an element surviving into
        deeper snapshots is invisible to them.  Two cases escape that
        argument: a label path may be routed *through* a surviving
        border node that is about to be deleted, and a label may price
        an edge that later construction rounds re-exposed.  Replaying
        from the first referencing level keeps every retained label
        provably untouched by the update.
        """
        index = self._index
        if index is None:
            return limit
        for i, level in enumerate(index.levels[:limit]):
            for owner in level.nodes():
                label = level.get(owner)
                if label is None:
                    continue
                if node is not None and owner == node:
                    return i
                for entrance, hops in label.entrances.items():
                    if node is not None and entrance == node:
                        return i
                    for hop in hops:
                        if node is not None:
                            if node in hop.nodes:
                                return i
                        elif edge is not None and _path_uses_edge(hop, edge):
                            return i
        return limit

    def _apply_at(self, level: int, op: str, u: int, v: int, payload) -> None:
        def mutate(g: MultiCostGraph) -> None:
            if op == "add_edge":
                if g.has_node(u) and g.has_node(v):
                    g.add_edge(u, v, payload)
            elif op == "remove_edge":
                if g.has_edge(u, v):
                    g.remove_edge(u, v, payload)
            elif op == "update_edge":
                old_cost, new_cost = payload
                if g.has_edge(u, v):
                    costs = g.edge_costs(u, v)
                    if tuple(float(c) for c in old_cost) in costs:
                        g.remove_edge(u, v, old_cost)
                    g.add_edge(u, v, new_cost)
            else:  # pragma: no cover - internal dispatch
                raise GraphError(f"unknown maintenance op {op!r}")

        self._replay(level, mutate)

    def _replay(self, level: int, mutate) -> None:
        """Replay construction from ``level`` after mutating its snapshot.

        The (guarded) mutation is also applied to every kept snapshot
        *below* the replay level.  Their levels' labels stay valid —
        they never reference the touched element — but a later update
        replaying from one of those lower levels re-summarizes from its
        snapshot, and a snapshot still holding pre-update state would
        resurrect stale costs into the rebuilt upper levels and the top
        graph.
        """
        self.maintenance_stats.updates += 1
        if level == 0:
            # self._graph was already mutated by the caller.
            self._rebuild_from(0)
            self.maintenance_stats.full_rebuilds += 1
            self._bump_generation()
            return
        for snapshot in self._snapshots[:level]:
            mutate(snapshot)
        work = self._snapshots[level].copy()
        mutate(work)
        self._rebuild_from(level, work)
        self.maintenance_stats.levels_replayed += (
            len(self._snapshots) - level
        )
        self._bump_generation()

    def _rebuild_from(self, level: int, work: MultiCostGraph | None = None) -> None:
        params = self._params
        if level == 0:
            work = self._graph.copy()
        assert work is not None
        outcome = summarize_levels(
            work,
            params,
            required_edge_removals(self._graph, params),
            level_offset=level,
            keep_snapshots=True,
        )
        top_graph = outcome.final_graph
        assert top_graph is not None

        old = self._index
        kept_levels = old.levels[:level] if old is not None else []
        kept_provenance: dict[ShortcutKey, tuple[int, ...]] = {}
        if old is not None and level > 0:
            kept_stats = old.build_stats.levels[:level]
            kept_snapshots = self._snapshots[:level]
            # Provenance of untouched levels: everything recorded before
            # the replay level.  Per-level provenance lives on the
            # maintainer, recorded at build time.
            for per_level in self._level_provenance[:level]:
                kept_provenance.update(per_level)
        else:
            kept_stats = []
            kept_snapshots = []
            self._level_provenance = []

        self._level_provenance = (
            self._level_provenance[:level] + outcome.level_provenance
        )
        self._snapshots = kept_snapshots + outcome.snapshots
        provenance = dict(kept_provenance)
        for per_level in outcome.level_provenance:
            provenance.update(per_level)

        landmarks = LandmarkIndex(
            top_graph, min(params.landmark_count, max(top_graph.num_nodes, 1))
        )
        self._index = BackboneIndex(
            original_graph=self._graph,
            params=params,
            levels=kept_levels + outcome.levels,
            top_graph=top_graph,
            landmarks=landmarks,
            provenance=provenance,
            build_stats=BuildStats(levels=kept_stats + outcome.level_stats),
        )
