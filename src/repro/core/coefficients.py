"""Node cluster coefficients and two-hop neighborhoods (Section 4.2.1).

Road-network degrees are tiny (rarely above 5), so the classic
Watts-Strogatz local clustering coefficient cannot separate dense nodes
from sparse ones.  The paper's replacement (Definition 4.1) counts how
many *pairs* of a node's neighbors connect through a common two-hop
neighbor::

    cc(v) = |N_com(v)| / (|N1(v)| * (|N1(v)| - 1))

where ``N_com(v)`` is the set of unordered neighbor pairs (u, w) that
share a common node in ``N2(v)`` (the strict two-hop neighborhood).
"""

from __future__ import annotations

from itertools import combinations

from repro.graph.mcrn import MultiCostGraph


def two_hop_neighborhood(graph: MultiCostGraph, node: int) -> tuple[set[int], set[int]]:
    """Return (N1, N2): direct neighbors and strict two-hop neighbors.

    ``N2`` excludes ``node`` itself and everything already in ``N1``.
    """
    first = graph.neighbors(node)
    second: set[int] = set()
    for neighbor in first:
        second |= graph.neighbors(neighbor)
    second.discard(node)
    second -= first
    return first, second


def two_hop_cardinality(graph: MultiCostGraph, node: int) -> int:
    """``|N1(v) + N2(v)|`` — the condensing-threshold measurement.

    The paper observed this quantity has a much wider value range than
    either the degree or the cluster coefficient, making it the right
    signal for noise detection (Section 4.2.2).
    """
    first, second = two_hop_neighborhood(graph, node)
    return len(first) + len(second)


def cluster_coefficient(graph: MultiCostGraph, node: int) -> float:
    """The node's cluster coefficient (Definition 4.1).

    Nodes with fewer than two neighbors have no neighbor pairs and get
    coefficient 0.
    """
    first, second = two_hop_neighborhood(graph, node)
    k = len(first)
    if k < 2:
        return 0.0
    common_pairs = 0
    # For each unordered neighbor pair, test whether they reach a common
    # strict two-hop neighbor of v.
    neighbor_reach = {
        u: graph.neighbors(u) & second for u in first
    }
    for u, w in combinations(first, 2):
        if neighbor_reach[u] & neighbor_reach[w]:
            common_pairs += 1
    return common_pairs / (k * (k - 1))


def all_cluster_coefficients(graph: MultiCostGraph) -> dict[int, float]:
    """Cluster coefficients for every node (bulk convenience)."""
    return {node: cluster_coefficient(graph, node) for node in graph.nodes()}


def all_two_hop_cardinalities(graph: MultiCostGraph) -> dict[int, int]:
    """Two-hop cardinalities for every node (bulk convenience)."""
    return {node: two_hop_cardinality(graph, node) for node in graph.nodes()}


def all_coefficient_stats(
    graph: MultiCostGraph,
) -> tuple[dict[int, float], dict[int, int]]:
    """Both bulk tables in one pass: ``(coefficients, cardinalities)``.

    Cluster discovery needs both, and each per-node helper recomputes
    the two-hop neighborhood from scratch — the dominant cost of the
    bulk conveniences.  Sharing one ``(N1, N2)`` computation per node
    yields bit-identical values (``common_pairs`` is a count, so the
    neighbor iteration order cannot affect the quotient) at roughly
    half the set work; the flat construction pipeline calls this
    instead of the two separate tables.
    """
    coefficients: dict[int, float] = {}
    cardinalities: dict[int, int] = {}
    neighbors = graph.neighbors
    for node in graph.nodes():
        first = neighbors(node)
        second: set[int] = set()
        for neighbor in first:
            second |= neighbors(neighbor)
        second.discard(node)
        second -= first
        cardinalities[node] = len(first) + len(second)
        k = len(first)
        if k < 2:
            coefficients[node] = 0.0
            continue
        common_pairs = 0
        neighbor_reach = {u: neighbors(u) & second for u in first}
        for u, w in combinations(first, 2):
            if neighbor_reach[u] & neighbor_reach[w]:
                common_pairs += 1
        coefficients[node] = common_pairs / (k * (k - 1))
    return coefficients, cardinalities
