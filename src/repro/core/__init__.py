"""The backbone index: construction, querying, and maintenance."""

from repro.core.builder import build_backbone_index
from repro.core.directed import (
    DirectedBackboneIndex,
    DirectedQueryResult,
    project_undirected,
)
from repro.core.clustering import Clustering, find_dense_clusters
from repro.core.coefficients import (
    all_cluster_coefficients,
    all_two_hop_cardinalities,
    cluster_coefficient,
    two_hop_cardinality,
    two_hop_neighborhood,
)
from repro.core.index import BackboneIndex, BuildStats, LevelStats
from repro.core.labels import LevelIndex, NodeLabel, build_cluster_labels
from repro.core.params import (
    AggressiveMode,
    BackboneParams,
    ClusteringStrategy,
    LabelScope,
    TreePolicy,
)
from repro.core.query import (
    QueryResult,
    QueryStats,
    backbone_one_to_all,
    backbone_query,
    backbone_query_shared_source,
)
from repro.core.segments import (
    AggressiveResult,
    Segment,
    condense_segments,
    find_single_segments,
)
from repro.core.spanning import (
    CondensedCluster,
    condense_cluster,
    degree_pair_spanning_forest,
)
from repro.core.summarize import (
    RoundResult,
    bfs_partitions,
    condense_round,
    strip_degree_one,
)
from repro.core.threshold import condensing_threshold, is_noise
from repro.core.verify import VerificationReport, verify_index

__all__ = [
    "AggressiveMode",
    "AggressiveResult",
    "BackboneIndex",
    "BackboneParams",
    "BuildStats",
    "Clustering",
    "ClusteringStrategy",
    "CondensedCluster",
    "DirectedBackboneIndex",
    "DirectedQueryResult",
    "LabelScope",
    "LevelIndex",
    "LevelStats",
    "NodeLabel",
    "QueryResult",
    "QueryStats",
    "RoundResult",
    "VerificationReport",
    "Segment",
    "TreePolicy",
    "all_cluster_coefficients",
    "all_two_hop_cardinalities",
    "backbone_one_to_all",
    "backbone_query",
    "backbone_query_shared_source",
    "bfs_partitions",
    "build_backbone_index",
    "build_cluster_labels",
    "cluster_coefficient",
    "condense_cluster",
    "condense_round",
    "condense_segments",
    "condensing_threshold",
    "degree_pair_spanning_forest",
    "find_dense_clusters",
    "find_single_segments",
    "is_noise",
    "project_undirected",
    "strip_degree_one",
    "two_hop_cardinality",
    "two_hop_neighborhood",
    "verify_index",
]
