"""The backbone index container (Definition 4.8).

A built index holds the per-level label structures (0, I_0) ... (L-1,
I_{L-1}), the most abstracted graph G_L, a landmark index over G_L, and
the shortcut provenance needed to expand abstract paths back toward the
original network.  Construction lives in :mod:`repro.core.builder`;
query evaluation in :mod:`repro.core.query`.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path as FilePath

from repro.core.labels import LevelIndex
from repro.core.params import AggressiveMode, BackboneParams, ClusteringStrategy
from repro.errors import BuildError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import CostVector
from repro.paths.path import Path
from repro.search.landmark import LandmarkIndex

ShortcutKey = tuple[int, int, CostVector]

# Distinct-cost expansion states kept while splicing one walk; beyond
# this the cheapest-by-sum states survive (best-effort expansion).
_MAX_EXPANSION_STATES = 4096


def _combine_expansions(
    states: dict[CostVector, tuple[int, ...]],
    options: dict[CostVector, tuple[int, ...]],
) -> dict[CostVector, tuple[int, ...]]:
    """Extend every partial walk by every expansion of the next pair."""
    combined: dict[CostVector, tuple[int, ...]] = {}
    for acc_cost, walk in states.items():
        for opt_cost, opt_walk in options.items():
            total = tuple(a + b for a, b in zip(acc_cost, opt_cost))
            if total not in combined:
                combined[total] = walk + opt_walk[1:]
    if len(combined) > _MAX_EXPANSION_STATES:
        keep = sorted(combined, key=sum)[:_MAX_EXPANSION_STATES]
        combined = {cost: combined[cost] for cost in keep}
    return combined


@dataclass
class LevelStats:
    """Construction bookkeeping for one index level."""

    level: int
    nodes_before: int
    edges_before: int
    removed_edges: int
    label_paths: int
    aggressive_used: bool
    rounds: int


@dataclass
class BuildStats:
    """Construction bookkeeping for a whole index."""

    elapsed_seconds: float = 0.0
    levels: list[LevelStats] = field(default_factory=list)

    @property
    def height(self) -> int:
        return len(self.levels)


class BackboneIndex:
    """A built backbone index over one multi-cost road network."""

    def __init__(
        self,
        *,
        original_graph: MultiCostGraph,
        params: BackboneParams,
        levels: list[LevelIndex],
        top_graph: MultiCostGraph,
        landmarks: LandmarkIndex,
        provenance: dict[ShortcutKey, tuple[int, ...]],
        build_stats: BuildStats,
    ) -> None:
        self.original_graph = original_graph
        self.params = params
        self.levels = levels
        self.top_graph = top_graph
        self.landmarks = landmarks
        self.provenance = provenance
        self.build_stats = build_stats
        # (u, v) -> list of recorded underlying sequences, for expansion
        self._pair_provenance: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        for (u, v, _cost), sequence in provenance.items():
            key = (u, v) if u <= v else (v, u)
            self._pair_provenance.setdefault(key, []).append(sequence)
        self._expansion_memo: dict[
            tuple[int, int], dict[CostVector, tuple[int, ...]]
        ] = {}
        self._size_bytes_cache: int | None = None
        self._csr_top = None

    # ------------------------------------------------------------------
    # accelerator snapshot
    # ------------------------------------------------------------------

    def csr_top(self, *, build: bool = True, tracer=None):
        """The CSR snapshot of the top graph G_L, built lazily.

        The snapshot is cached on the index; an index is immutable after
        construction (maintenance builds a new one), so the cache never
        goes stale.  ``build=False`` only returns an already-available
        snapshot — the probe used by ``engine="auto"`` callers that must
        not pay a build on the query path.
        """
        if self._csr_top is None and build:
            from repro.accel.csr import CSRSnapshot

            self._csr_top = CSRSnapshot.from_graph(self.top_graph, tracer=tracer)
        return self._csr_top

    def install_csr_top(self, snapshot) -> None:
        """Install a snapshot restored by :mod:`repro.store` (warm start)."""
        self._csr_top = snapshot

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Cost dimensionality of the indexed network."""
        return self.original_graph.dim

    @property
    def height(self) -> int:
        """L — the number of summarization levels."""
        return len(self.levels)

    def label_path_count(self) -> int:
        """Total skyline paths stored across all level indexes."""
        return sum(level.path_count() for level in self.levels)

    def size_bytes(self) -> int:
        """Measured size of the index payload: its binary-store bytes.

        This is the number the paper's index-size comparisons want —
        what the index costs to persist and ship, not what CPython's
        boxed objects happen to occupy.  The serialization is cached;
        a :class:`BackboneIndex` is immutable after construction
        (maintenance builds a new one).  The old per-object estimate
        remains available as :meth:`estimated_size_bytes`.
        """
        if self._size_bytes_cache is None:
            from repro.store.writer import serialize_index

            self._size_bytes_cache = len(serialize_index(self))
        return self._size_bytes_cache

    def estimated_size_bytes(self) -> int:
        """Estimated in-memory footprint of the index payload.

        Counts label path nodes and costs, the top graph, landmark
        entries, and provenance sequences at boxed-object sizes
        (``sys.getsizeof``) — an upper-bound estimate of what the live
        Python structures occupy, kept for comparison with the
        measured :meth:`size_bytes`.
        """
        int_size = sys.getsizeof(0)
        float_size = sys.getsizeof(0.0)
        total = 0
        for level in self.levels:
            for node in level.nodes():
                label = level.get(node)
                assert label is not None
                for entrance, paths in label.entrances.items():
                    total += 2 * int_size  # (node, entrance) key
                    for path in paths:
                        total += len(path.nodes) * int_size
                        total += self.dim * float_size
        total += self.top_graph.num_nodes * int_size
        total += self.top_graph.num_edge_entries * (
            2 * int_size + self.dim * float_size
        )
        total += self.landmarks.size_entries() * float_size
        for sequence in self.provenance.values():
            total += len(sequence) * int_size
        return total

    def stats(self) -> dict:
        """A summary dictionary (levels, sizes, counts) for reporting."""
        return {
            "height": self.height,
            "label_paths": self.label_path_count(),
            "labelled_nodes": sum(len(level) for level in self.levels),
            "top_graph_nodes": self.top_graph.num_nodes,
            "top_graph_edges": self.top_graph.num_edge_entries,
            "size_bytes": self.size_bytes(),
            "estimated_size_bytes": self.estimated_size_bytes(),
            "build_seconds": self.build_stats.elapsed_seconds,
            "shortcuts": len(self.provenance),
        }

    # ------------------------------------------------------------------
    # queries (delegating to repro.core.query)
    # ------------------------------------------------------------------

    def query(self, source: int, target: int, **kwargs):
        """Approximate skyline paths between two nodes (Algorithm 3)."""
        from repro.core.query import backbone_query

        return backbone_query(self, source, target, **kwargs).paths

    def query_detailed(self, source: int, target: int, **kwargs):
        """Like :meth:`query` but returns the full result with stats."""
        from repro.core.query import backbone_query

        return backbone_query(self, source, target, **kwargs)

    def one_to_all(self, source: int, **kwargs):
        """Approximate skyline paths from one node to every node."""
        from repro.core.query import backbone_one_to_all

        return backbone_one_to_all(self, source, **kwargs)

    # ------------------------------------------------------------------
    # path expansion
    # ------------------------------------------------------------------

    def expand_path(self, path: Path) -> Path:
        """Expand an abstract path to an original-graph walk, cost-aware.

        Shortcut edges created by aggressive summarization are spliced
        with their recorded underlying sequences, recursively, until
        every consecutive pair is an edge of the original graph.  A
        node pair may have *several* recorded expansions (and parallel
        original edges), each with a different cost; the expansion
        explores the combinations and returns the walk whose total
        cost reproduces the abstract path's cost.  If no combination
        matches (the abstract estimate collapsed alternatives the
        provenance no longer distinguishes), the cheapest-by-sum walk
        is returned as a best effort.
        """
        if len(path.nodes) < 2:
            return path
        states: dict[CostVector, tuple[int, ...]] = {
            (0.0,) * self.dim: (path.nodes[0],)
        }
        for u, v in zip(path.nodes, path.nodes[1:]):
            states = _combine_expansions(
                states, self._pair_expansions(u, v, depth=0)
            )
        for cost, walk in states.items():
            if all(
                abs(a - b) <= max(1e-9, 1e-9 * abs(b))
                for a, b in zip(cost, path.cost)
            ):
                return Path(list(walk), cost)
        cost = min(states, key=sum)
        return Path(list(states[cost]), cost)

    def _pair_expansions(
        self, u: int, v: int, depth: int
    ) -> dict[CostVector, tuple[int, ...]]:
        """All distinct-cost original walks one abstract edge stands for."""
        if depth > 64:
            raise BuildError(f"shortcut expansion too deep at edge ({u}, {v})")
        cached = self._expansion_memo.get((u, v))
        if cached is not None:
            return cached
        options: dict[CostVector, tuple[int, ...]] = {}
        if self.original_graph.has_edge(u, v):
            for cost in self.original_graph.edge_costs(u, v):
                options.setdefault(tuple(cost), (u, v))
        key = (u, v) if u <= v else (v, u)
        for sequence in self._pair_provenance.get(key, ()):
            oriented = sequence if sequence[0] == u else sequence[::-1]
            states: dict[CostVector, tuple[int, ...]] = {
                (0.0,) * self.dim: (u,)
            }
            for a, b in zip(oriented, oriented[1:]):
                states = _combine_expansions(
                    states, self._pair_expansions(a, b, depth + 1)
                )
            for cost, walk in states.items():
                options.setdefault(cost, walk)
        if not options:
            raise BuildError(
                f"edge ({u}, {v}) is neither original nor a recorded shortcut"
            )
        self._expansion_memo[(u, v)] = options
        return options

    def _expand_pair(self, u: int, v: int, depth: int) -> list[int]:
        if depth > 64:
            raise BuildError(f"shortcut expansion too deep at edge ({u}, {v})")
        if self.original_graph.has_edge(u, v):
            return [u, v]
        key = (min(u, v), max(u, v))
        sequences = self._pair_provenance.get(key)
        if not sequences:
            raise BuildError(
                f"edge ({u}, {v}) is neither original nor a recorded shortcut"
            )
        sequence = sequences[0]
        if sequence[0] != u:
            sequence = sequence[::-1]
        result = [u]
        for a, b in zip(sequence, sequence[1:]):
            result.extend(self._expand_pair(a, b, depth + 1)[1:])
        return result

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def save(
        self,
        path: FilePath | str,
        *,
        format: str = "binary",
        compress: bool = True,
    ) -> None:
        """Persist the index.

        ``format="binary"`` (default) writes the compact, checksummed
        :mod:`repro.store` format — including the landmark tables, so
        loading restores bit-identical bounds without rebuilding.
        ``format="json"`` writes the legacy verbose JSON document.
        Both writes are atomic (tmp file + ``os.replace``).
        """
        if format == "binary":
            from repro.store.writer import save_index

            save_index(self, path, compress=compress)
            return
        if format != "json":
            raise BuildError(
                f"unknown index format {format!r} (use 'binary' or 'json')"
            )
        document = {
            "format": "repro-backbone-index",
            "version": 2,
            "dim": self.dim,
            "params": {
                "m_max": self.params.m_max,
                "m_min": self.params.m_min,
                "p": self.params.p,
                "p_ind": self.params.p_ind,
                "aggressive": self.params.aggressive.value,
                "clustering": self.params.clustering.value,
                "landmark_count": self.params.landmark_count,
            },
            "levels": [
                {
                    str(node): {
                        str(entrance): [
                            {"nodes": list(p.nodes), "cost": list(p.cost)}
                            for p in paths
                        ]
                        for entrance, paths in level.get(node).entrances.items()
                    }
                    for node in level.nodes()
                }
                for level in self.levels
            ],
            "top_graph": {
                "nodes": sorted(self.top_graph.nodes()),
                "edges": [
                    [u, v, list(cost)] for u, v, cost in self.top_graph.edges()
                ],
            },
            "provenance": [
                {"u": u, "v": v, "cost": list(cost), "seq": list(sequence)}
                for (u, v, cost), sequence in self.provenance.items()
            ],
            "landmarks": {
                "nodes": self.landmarks.landmarks,
                "tables": [
                    [
                        [[node, dist] for node, dist in table.items()]
                        for table in per_landmark
                    ]
                    for per_landmark in self.landmarks.distance_tables()
                ],
            },
        }
        from repro.store.writer import atomic_write_bytes

        atomic_write_bytes(path, json.dumps(document).encode("utf-8"))

    @classmethod
    def load(
        cls,
        path: FilePath | str,
        original_graph: MultiCostGraph,
        *,
        lazy: bool = False,
    ) -> "BackboneIndex":
        """Load an index saved by :meth:`save` (either format).

        The format is sniffed from the file's magic bytes: binary
        store files go through :mod:`repro.store` (``lazy=True`` defers
        the per-level label sections until first access); anything else
        is parsed as the legacy JSON document.  The original graph is
        supplied by the caller (the index file stores only the derived
        structures, matching the paper's setup where graphs live in
        the database and the index besides it).
        """
        from repro.store.reader import is_store_file, load_index

        if is_store_file(path):
            return load_index(path, original_graph, lazy=lazy)
        with open(path) as handle:
            document = json.load(handle)
        if document.get("format") != "repro-backbone-index":
            raise BuildError(f"{path}: not a backbone index file")
        version = document.get("version")
        if version not in (1, 2):
            raise BuildError(f"{path}: unsupported index version")
        raw = document["params"]
        params = BackboneParams(
            m_max=raw["m_max"],
            m_min=raw["m_min"],
            p=raw["p"],
            p_ind=raw["p_ind"],
            aggressive=AggressiveMode(raw["aggressive"]),
            clustering=ClusteringStrategy(raw["clustering"]),
            landmark_count=raw["landmark_count"],
        )
        levels: list[LevelIndex] = []
        for level_doc in document["levels"]:
            level = LevelIndex()
            for node_str, entrances in level_doc.items():
                node = int(node_str)
                for entrance_str, paths in entrances.items():
                    entrance = int(entrance_str)
                    for payload in paths:
                        level.add_path(
                            node,
                            entrance,
                            Path(payload["nodes"], payload["cost"]),
                        )
            levels.append(level)
        top_graph = MultiCostGraph(document["dim"])
        for node in document["top_graph"]["nodes"]:
            top_graph.add_node(node)
        for u, v, cost in document["top_graph"]["edges"]:
            top_graph.add_edge(u, v, cost)
        provenance = {
            (entry["u"], entry["v"], tuple(entry["cost"])): tuple(entry["seq"])
            for entry in document["provenance"]
        }
        stored_landmarks = document.get("landmarks")
        if stored_landmarks is not None:
            landmarks = LandmarkIndex.from_tables(
                document["dim"],
                stored_landmarks["nodes"],
                [
                    [
                        {int(node): float(dist) for node, dist in table}
                        for table in per_landmark
                    ]
                    for per_landmark in stored_landmarks["tables"]
                ],
            )
        else:
            # Version-1 documents predate landmark persistence; rebuild
            # the tables from G_L (the legacy Dijkstra-per-landmark cost).
            landmarks = LandmarkIndex(
                top_graph,
                min(params.landmark_count, max(top_graph.num_nodes, 1)),
            )
        return cls(
            original_graph=original_graph,
            params=params,
            levels=levels,
            top_graph=top_graph,
            landmarks=landmarks,
            provenance=provenance,
            build_stats=BuildStats(),
        )

    def __repr__(self) -> str:
        return (
            f"BackboneIndex(L={self.height}, "
            f"|G_L.V|={self.top_graph.num_nodes}, "
            f"label_paths={self.label_path_count()})"
        )
