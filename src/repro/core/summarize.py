"""Level summarization: degree-1 stripping and cluster condensation.

Regular summarization of a level graph G_i (Section 4.3.1) runs in
rounds until enough edges are gone:

1. strip degree-1 edges recursively (dangling trees), labeling each
   removed node with its unique path to the surviving anchor;
2. find dense clusters (Algorithm 1) and condense each one (spanning
   tree + 2-core pruning), labeling every cluster node with its skyline
   paths to the cluster's highway entrances over the removed edges.

Every round mutates a working copy of the level graph in place and
returns the labels it generated; the caller folds rounds together with
:meth:`LevelIndex.absorb`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clustering import Clustering, find_dense_clusters
from repro.core.coefficients import all_coefficient_stats
from repro.core.labels import (
    CostedEdge,
    LabelTask,
    LevelIndex,
    record_label_rows,
    run_label_task,
)
from repro.core.params import BackboneParams, ClusteringStrategy, LabelScope
from repro.core.spanning import condense_cluster
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.graph.traversal import bfs_order, peel_degree_one
from repro.paths.dominance import (
    CostVector,
    add_costs,
    dominates,
    dominates_or_equal,
)
from repro.paths.frontier import PathSet
from repro.paths.path import Path


@dataclass
class RoundResult:
    """What one summarization round removed and recorded.

    ``clusters_condensed`` counts the dense clusters this round
    actually collapsed (observability only; zero for pure strip
    rounds).
    """

    removed_nodes: set[int] = field(default_factory=set)
    removed_edges: list[CostedEdge] = field(default_factory=list)
    index: LevelIndex = field(default_factory=LevelIndex)
    clusters_condensed: int = 0

    @property
    def removed_edge_count(self) -> int:
        return len(self.removed_edges)

    @property
    def changed(self) -> bool:
        return bool(self.removed_nodes or self.removed_edges)


def strip_degree_one(graph: MultiCostGraph, *, fast: bool = False) -> RoundResult:
    """Remove dangling trees, labeling removed nodes to their anchors.

    "We first remove the degree-1 edges from graph G_i ... until every
    remaining node has a degree of 2 or higher."  Each removed node's
    highway entrance is the surviving node its dangling tree hangs
    from; the label paths follow the unique tree route (parallel edges
    contribute a skyline of cost combinations).

    ``fast`` (the flat construction pipeline): every path in a removed
    node's bucket follows the same unique tree route, so the per-node
    ``PathSet`` reduces to a cost skyline over parallel-edge cost
    combinations plus one shared route tuple.  Same insertion
    discipline, same surviving costs in the same order — the emitted
    labels are bit-identical to the reference branch.
    """
    result = RoundResult()
    order = peel_degree_one(graph)
    removed = {node for node, _ in order}
    # Process outermost-anchor first: iterate the peel order in reverse
    # so a node's anchor paths are ready before the node needs them.
    if fast:
        skyline_to_anchor: dict[
            int, tuple[int, tuple[int, ...], list[CostVector]]
        ] = {}
        for node, anchor in reversed(order):
            edge_costs = graph.edge_costs(node, anchor)
            if anchor in removed:
                final_anchor, route, anchor_costs = skyline_to_anchor[anchor]
                route = (node,) + route
                bucket_costs: list[CostVector] = []
                for edge_cost in edge_costs:
                    for continuation in anchor_costs:
                        candidate = add_costs(edge_cost, continuation)
                        if any(
                            dominates_or_equal(kept, candidate)
                            for kept in bucket_costs
                        ):
                            continue
                        if bucket_costs:
                            bucket_costs[:] = [
                                kept
                                for kept in bucket_costs
                                if not dominates(candidate, kept)
                            ]
                        bucket_costs.append(candidate)
            else:
                final_anchor = anchor
                route = (node, anchor)
                bucket_costs = []
                for edge_cost in edge_costs:
                    candidate = tuple(edge_cost)
                    if any(
                        dominates_or_equal(kept, candidate)
                        for kept in bucket_costs
                    ):
                        continue
                    if bucket_costs:
                        bucket_costs[:] = [
                            kept
                            for kept in bucket_costs
                            if not dominates(candidate, kept)
                        ]
                    bucket_costs.append(candidate)
            skyline_to_anchor[node] = (final_anchor, route, bucket_costs)

        for node, anchor in order:
            for cost in graph.edge_costs(node, anchor):
                result.removed_edges.append((node, anchor, cost))
            final_anchor, route, bucket_costs = skyline_to_anchor[node]
            for cost in bucket_costs:
                result.index.add_path(node, final_anchor, Path(route, cost))
            result.removed_nodes.add(node)
        for node, _ in order:
            graph.remove_node(node)
        return result

    paths_to_anchor: dict[int, tuple[int, PathSet]] = {}
    for node, anchor in reversed(order):
        edge_paths = [
            Path((node, anchor), cost) for cost in graph.edge_costs(node, anchor)
        ]
        if anchor in removed:
            final_anchor, anchor_paths = paths_to_anchor[anchor]
            bucket = PathSet()
            for edge_path in edge_paths:
                for continuation in anchor_paths:
                    bucket.add(edge_path.concat(continuation))
        else:
            final_anchor = anchor
            bucket = PathSet(edge_paths)
        paths_to_anchor[node] = (final_anchor, bucket)

    for node, anchor in order:
        for cost in graph.edge_costs(node, anchor):
            result.removed_edges.append((node, anchor, cost))
        final_anchor, bucket = paths_to_anchor[node]
        for path in bucket:
            result.index.add_path(node, final_anchor, path)
        result.removed_nodes.add(node)
    for node, _ in order:
        graph.remove_node(node)
    return result


def bfs_partitions(graph: MultiCostGraph, m_max: int) -> Clustering:
    """Partition nodes into BFS chunks of at most ``m_max`` nodes.

    The comparison method of Section 6.2.3: connected partitions that
    ignore density.  Every node lands in some partition; there are no
    noise nodes.
    """
    clustering = Clustering()
    seen: set[int] = set()
    for start in graph.nodes():
        if start in seen:
            continue
        chunk: set[int] = set()
        for node in bfs_order(graph, start):
            if node in seen:
                continue
            chunk.add(node)
            seen.add(node)
            if len(chunk) >= m_max:
                clustering.clusters.append(chunk)
                chunk = set()
        if chunk:
            clustering.clusters.append(chunk)
    return clustering


def _discover_clusters(
    graph: MultiCostGraph, params: BackboneParams, *, fast: bool = False
) -> Clustering:
    if params.clustering is ClusteringStrategy.BFS:
        return bfs_partitions(graph, params.m_max)
    if fast:
        coefficients, cardinalities = all_coefficient_stats(graph)
        return find_dense_clusters(
            graph,
            params,
            coefficients=coefficients,
            cardinalities=cardinalities,
        )
    return find_dense_clusters(graph, params)


def condense_round(
    graph: MultiCostGraph,
    params: BackboneParams,
    *,
    tracer: Tracer | None = None,
    engine: str = "python",
    label_pool=None,
) -> RoundResult:
    """One full condensing round: strip degree-1, then condense clusters.

    Mutates ``graph`` in place.  The returned index already folds the
    stripping labels and the cluster labels together (strip labels whose
    anchors get condensed are re-targeted through the cluster labels).

    Condensing decisions run first, collecting one pure
    :class:`LabelTask` per cluster; the tasks then execute after the
    graph has mutated — serially with ``engine`` (clusters' removed
    edges are captured costed, so nothing depends on the live graph),
    or on ``label_pool`` (a
    :class:`repro.mp.build_pool.BuildLabelPool`), whose results merge
    in task order and therefore reproduce the serial construction
    exactly.  An ``engine`` other than ``"python"`` gates the flat
    pipeline: one-pass coefficient tables, cluster-local spanning
    scans, CSR-kernel label searches, and steal-merge absorption — all
    decision- and label-identical to the reference path.
    """
    tracer = resolve_tracer(tracer)
    flat = engine != "python"
    with tracer.span("build.strip_degree_one") as span:
        strip = strip_degree_one(graph, fast=flat)
        if span.enabled:
            span.set(
                removed_nodes=len(strip.removed_nodes),
                removed_edges=len(strip.removed_edges),
            )
    with tracer.span("build.cluster_discovery") as span:
        clustering = _discover_clusters(graph, params, fast=flat)
        if span.enabled:
            span.set(clusters=len(clustering.clusters))

    cluster_result = RoundResult()
    with tracer.span("build.condense_clusters") as cspan:
        tasks: list[LabelTask] = []
        for cluster_nodes in clustering.clusters:
            live_nodes = {
                node for node in cluster_nodes if graph.has_node(node)
            }
            if len(live_nodes) < 2:
                continue
            condensed = condense_cluster(
                graph, live_nodes, policy=params.tree_policy, local_scan=flat
            )
            if not condensed.kept_nodes:
                # The cluster is an entire connected component of the
                # working graph, so it has no highway entrance to label
                # toward: condensing would strand every node in it,
                # unreachable by any query.  Algorithm 2's non-empty
                # G_{i+1} requirement applies per component — leave the
                # remnant intact and let it flow up to G_L.
                continue
            cluster_result.clusters_condensed += 1
            cspan.count("spanning_trees")
            costed: list[CostedEdge] = []
            for u, v in condensed.removed_edges:
                for cost in graph.edge_costs(u, v):
                    costed.append((u, v, cost))
            label_edges = costed
            if params.label_scope is LabelScope.FULL_CLUSTER:
                # ablation: label searches may also use the kept cluster
                # edges — richer labels at higher construction cost
                removed_pairs = set(condensed.removed_edges)
                label_edges = list(costed)
                for u, v in graph.edge_pairs():
                    if (
                        u in live_nodes
                        and v in live_nodes
                        and (min(u, v), max(u, v)) not in removed_pairs
                    ):
                        for cost in graph.edge_costs(u, v):
                            label_edges.append((u, v, cost))
            tasks.append(
                LabelTask(
                    dim=graph.dim,
                    cluster_nodes=live_nodes,
                    removed_edges=label_edges,
                    entrances=condensed.kept_nodes,
                    max_frontier=params.max_label_frontier,
                )
            )
            for u, v in condensed.removed_edges:
                graph.remove_edge(u, v)
            for node in condensed.removed_nodes:
                graph.remove_node(node)
            cluster_result.removed_nodes |= condensed.removed_nodes
            cluster_result.removed_edges.extend(costed)

        if label_pool is not None and len(tasks) > 1:
            all_rows = label_pool.run(tasks)
        else:
            all_rows = [run_label_task(task, engine=engine) for task in tasks]
        for rows in all_rows:
            record_label_rows(cluster_result.index, rows)

        if cspan.enabled:
            cspan.set(
                clusters=cluster_result.clusters_condensed,
                removed_edges=len(cluster_result.removed_edges),
                label_paths=cluster_result.index.path_count(),
            )

    surviving = set(graph.nodes())
    strip.index.absorb(cluster_result.index, surviving, steal=flat)
    return RoundResult(
        removed_nodes=strip.removed_nodes | cluster_result.removed_nodes,
        removed_edges=strip.removed_edges + cluster_result.removed_edges,
        index=strip.index,
        clusters_condensed=cluster_result.clusters_condensed,
    )
