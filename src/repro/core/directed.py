"""Directed-network extension of the backbone index (Section 4.3.1).

The paper models road networks as undirected graphs, noting that
opposite-direction roads "generally connect two same nodes, and the
costs of the two opposite directed roads do not differ much", and
sketches the directed extension: "the index just needs to include the
extra information from highway entrances to each node in dense
clusters".

This module implements that extension without disturbing the undirected
pipeline:

1. the directed network is *projected* to an undirected multigraph
   (per node pair, the skyline of both directions' cost vectors);
2. the standard backbone index is built over the projection — all
   structural decisions (clusters, spanning trees, segments) are
   direction-blind, exactly as the paper's sketch implies;
3. at query time every label hop is *replayed* on the directed
   network in the direction the query needs: source-side hops forward,
   target-side hops backward (the "extra information from highway
   entrances to each node").  A hop whose underlying road is one-way
   against the direction of travel is dropped;
4. the second-type search runs m_BBS over the *directed* top graph.

Under the paper's stated assumption (near-symmetric costs) the replay
preserves approximation quality; for strongly asymmetric networks it
degrades gracefully (fewer surviving hops, never invalid paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import build_backbone_index
from repro.core.index import BackboneIndex
from repro.core.params import BackboneParams
from repro.errors import BuildError, NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.frontier import PathSet
from repro.paths.path import Path
from repro.search.bounds import ExactBounds
from repro.search.mbbs import Seed, many_to_many_skyline


def project_undirected(directed: MultiCostGraph) -> MultiCostGraph:
    """The undirected projection: one representative cost per node pair.

    Each pair's cost vector is the component-wise mean over every
    directed edge between the endpoints.  Keeping the *skyline* of both
    directions instead would store two nearly-parallel vectors per road
    (asymmetric costs are mutually incomparable), and skyline widths in
    label construction would then grow exponentially with hop count.
    The projection only drives structure and abstract routing — true
    directed costs are recovered by replay at query time — so the
    symmetric average is the right summary under the paper's
    "costs do not differ much" assumption.
    """
    if not directed.directed:
        raise BuildError("project_undirected expects a directed graph")
    projection = MultiCostGraph(directed.dim)
    for node in directed.nodes():
        projection.add_node(node, directed.coord(node))
    pair_costs: dict[tuple[int, int], list] = {}
    for u, v, cost in directed.edges():
        key = (u, v) if u <= v else (v, u)
        pair_costs.setdefault(key, []).append(cost)
    for (u, v), costs in pair_costs.items():
        mean = tuple(
            sum(cost[i] for cost in costs) / len(costs)
            for i in range(directed.dim)
        )
        projection.add_edge(u, v, mean)
    return projection


@dataclass
class DirectedQueryResult:
    """Approximate directed skyline paths plus diagnostics."""

    paths: list[Path] = field(default_factory=list)
    dropped_hops: int = 0  # label hops lost to one-way restrictions

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


class DirectedBackboneIndex:
    """A backbone index over a directed multi-cost road network.

    Parameters
    ----------
    graph:
        The directed network.  Both one-way roads and asymmetric
        two-way costs are supported.
    params:
        Backbone parameters for the underlying undirected build.
    """

    def __init__(
        self, graph: MultiCostGraph, params: BackboneParams | None = None
    ) -> None:
        if not graph.directed:
            raise BuildError(
                "DirectedBackboneIndex expects a directed graph; use "
                "build_backbone_index for undirected networks"
            )
        self.directed_graph = graph
        self.projection = project_undirected(graph)
        self.inner: BackboneIndex = build_backbone_index(self.projection, params)
        # replay caches: abstract hop node-sequence -> directed PathSets
        self._forward_cache: dict[tuple[int, ...], list[Path]] = {}
        self._backward_cache: dict[tuple[int, ...], list[Path]] = {}
        self.directed_top = self._directed_top_graph()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _directed_top_graph(self) -> MultiCostGraph:
        """G_L with direction restored (shortcut edges replayed)."""
        top = MultiCostGraph(self.directed_graph.dim, directed=True)
        for node in self.inner.top_graph.nodes():
            top.add_node(node, self.directed_graph.coord(node))
        for u, v, _cost in self.inner.top_graph.edges():
            for a, b in ((u, v), (v, u)):
                for path in self._replay_forward(
                    self._expand_pair_sequence(a, b)
                ):
                    top.add_edge(a, b, path.cost)
        return top

    def _expand_pair_sequence(self, u: int, v: int) -> tuple[int, ...]:
        """The original-node sequence behind an abstract edge (u, v)."""
        expanded = self.inner._expand_pair(u, v, depth=0)
        return tuple(expanded)

    def _expand_hop(self, hop: Path) -> tuple[int, ...]:
        """Expand one abstract label path to original projection nodes."""
        nodes: list[int] = [hop.nodes[0]]
        for u, v in zip(hop.nodes, hop.nodes[1:]):
            nodes.extend(self.inner._expand_pair(u, v, depth=0)[1:])
        return tuple(nodes)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def _replay_forward(self, nodes: tuple[int, ...]) -> list[Path]:
        """Directed skyline costs of walking ``nodes`` left to right.

        Returns the Pareto set over parallel-edge choices; empty when a
        one-way road blocks the direction of travel.
        """
        cached = self._forward_cache.get(nodes)
        if cached is not None:
            return cached
        graph = self.directed_graph
        partials = PathSet([Path.trivial(nodes[0], graph.dim)])
        for u, v in zip(nodes, nodes[1:]):
            if not graph.has_edge(u, v):
                partials = PathSet()
                break
            grown = PathSet()
            for prefix in partials:
                for cost in graph.edge_costs(u, v):
                    grown.add(prefix.concat(Path((u, v), cost)))
            partials = grown
        result = partials.paths()
        self._forward_cache[nodes] = result
        return result

    def _replay_hop(self, hop: Path, *, backward: bool) -> list[Path]:
        """Replay one abstract label hop in the required direction.

        ``backward=False``: directed paths hop.source -> hop.target.
        ``backward=True``: directed paths hop.target -> hop.source.
        """
        expanded = self._expand_hop(hop)
        if backward:
            key = expanded[::-1]
            cached = self._backward_cache.get(key)
            if cached is None:
                cached = self._replay_forward(key)
                self._backward_cache[key] = cached
            return cached
        return self._replay_forward(expanded)

    # ------------------------------------------------------------------
    # query (directed Algorithm 3)
    # ------------------------------------------------------------------

    def query(self, source: int, target: int) -> DirectedQueryResult:
        """Approximate directed skyline paths from source to target."""
        graph = self.directed_graph
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        if not graph.has_node(target):
            raise NodeNotFoundError(target)
        result = DirectedQueryResult()
        if source == target:
            result.paths = [Path.trivial(source, graph.dim)]
            return result

        results = PathSet()
        forward = self._grow(source, backward=False, result=result)

        # grow D with backward replay: D[h] holds directed paths h -> target
        backward = self._grow(target, backward=True, result=result)

        for node, suffixes in backward.items():
            if node == source:
                for suffix in suffixes:
                    results.add(suffix)
            prefixes = forward.get(node)
            if prefixes is None or node == source or node == target:
                continue
            for prefix in prefixes:
                for suffix in suffixes:
                    results.add(prefix.concat(suffix))
        if target in forward:
            for path in forward[target]:
                results.add(path)

        # second type: m_BBS over the directed top graph
        top = self.directed_top
        source_possible = [n for n in forward if top.has_node(n)]
        target_possible = [n for n in backward if top.has_node(n)]
        if source_possible and target_possible:
            seeds = [
                Seed(node, prefix.cost, payload=prefix)
                for node in source_possible
                for prefix in forward[node]
            ]
            bounds = ExactBounds(top, target_possible)
            outcome = many_to_many_skyline(
                top, seeds, target_possible, bounds=bounds
            )
            for landing, hits in outcome.hits.items():
                suffixes = backward[landing].paths()
                for _cost, (prefix, middle) in hits:
                    through = prefix.concat(middle)
                    for suffix in suffixes:
                        results.add(through.concat(suffix))

        result.paths = results.paths()
        return result

    def _grow(
        self, start: int, *, backward: bool, result: DirectedQueryResult
    ) -> dict[int, PathSet]:
        """Climb the label hierarchy with direction-aware replay.

        Forward mode returns paths ``start -> key``; backward mode
        returns paths ``key -> start``.
        """
        dim = self.directed_graph.dim
        reached: dict[int, PathSet] = {start: PathSet([Path.trivial(start, dim)])}
        for level in self.inner.levels:
            for node in list(reached.keys()):
                label = level.get(node)
                if label is None:
                    continue
                anchored = reached[node].paths()
                for entrance, hops in label.entrances.items():
                    bucket = None
                    for hop in hops:
                        directed_hops = self._replay_hop(hop, backward=backward)
                        if not directed_hops:
                            result.dropped_hops += 1
                            continue
                        if bucket is None:
                            bucket = reached.get(entrance)
                            if bucket is None:
                                bucket = reached[entrance] = PathSet()
                        for existing in anchored:
                            for directed_hop in directed_hops:
                                if backward:
                                    bucket.add(directed_hop.concat(existing))
                                else:
                                    bucket.add(existing.concat(directed_hop))
        return reached
