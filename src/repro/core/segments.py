"""Single segments and aggressive summarization (Definition 3.5, Ex. 4.9).

A *single segment* is a maximal path whose interior nodes all have
degree 2 (consecutive <2,2> degree-pair edges) bracketed by two
higher-degree endpoints.  When regular summarization stalls — it cannot
remove enough edges without destroying topology — the aggressive
strategy replaces each segment with a *shortcut edge* between its
endpoints whose cost is the segment's summed cost, and gives every
removed interior node a label to the two endpoints.

Parallel edges along a segment multiply path choices, so the shortcut
is in general a *skyline set* of cost vectors, which the multigraph's
parallel-edge pruning stores naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.labels import CostedEdge, LevelIndex
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import (
    CostVector,
    add_costs,
    dominates,
    dominates_or_equal,
    zero_cost,
)
from repro.paths.frontier import PathSet
from repro.paths.path import Path


@dataclass
class Segment:
    """One single segment: endpoints plus interior degree-2 nodes."""

    nodes: list[int]  # [u, v0, ..., vj, w]

    @property
    def left(self) -> int:
        return self.nodes[0]

    @property
    def right(self) -> int:
        return self.nodes[-1]

    @property
    def interior(self) -> list[int]:
        return self.nodes[1:-1]


@dataclass
class AggressiveResult:
    """Outcome of one aggressive summarization pass."""

    removed_nodes: set[int] = field(default_factory=set)
    removed_edges: list[CostedEdge] = field(default_factory=list)
    index: LevelIndex = field(default_factory=LevelIndex)
    shortcuts: list[CostedEdge] = field(default_factory=list)
    # shortcut (u, w, cost) -> underlying node sequence in the level graph
    provenance: dict[tuple[int, int, CostVector], tuple[int, ...]] = field(
        default_factory=dict
    )


def find_single_segments(graph: MultiCostGraph) -> list[Segment]:
    """All single segments of the graph (Definition 3.5).

    Pure degree-2 cycles have no qualifying endpoints and are skipped —
    condensing them to a single edge has no endpoint to anchor to.
    """
    segments: list[Segment] = []
    assigned: set[int] = set()
    for start in graph.nodes():
        if graph.degree(start) != 2 or start in assigned:
            continue
        # Walk left and right from the degree-2 node until hitting a
        # node whose degree differs from 2.
        chain = [start]
        is_cycle = False
        for direction in (0, 1):
            previous = start
            neighbors = sorted(graph.neighbors(start))
            current = neighbors[direction] if len(neighbors) > direction else None
            if current is None:
                break
            while True:
                if direction == 0:
                    chain.insert(0, current)
                else:
                    chain.append(current)
                if graph.degree(current) != 2:
                    break
                if current == start:
                    is_cycle = True
                    break
                step = [n for n in graph.neighbors(current) if n != previous]
                if not step:
                    break
                previous, current = current, step[0]
            if is_cycle:
                break
        if is_cycle:
            # Mark the whole cycle assigned so we do not rediscover it.
            assigned.update(n for n in chain if graph.degree(n) == 2)
            continue
        interior = [n for n in chain if graph.degree(n) == 2]
        if not interior:
            continue
        if graph.degree(chain[0]) < 3 or graph.degree(chain[-1]) < 3:
            # Definition 3.5 requires the outer edges to touch a node of
            # degree > 2; runs ending in degree-1 tails belong to the
            # regular degree-1 stripping instead.
            continue
        assigned.update(interior)
        segments.append(Segment(nodes=chain))
    return segments


def _segment_prefixes(
    graph: MultiCostGraph, nodes: list[int]
) -> list[PathSet]:
    """Skyline paths from ``nodes[0]`` to each position along a segment."""
    dim = graph.dim
    prefixes: list[PathSet] = [PathSet([Path.trivial(nodes[0], dim)])]
    for u, v in zip(nodes, nodes[1:]):
        grown = PathSet()
        for prefix in prefixes[-1]:
            for cost in graph.edge_costs(u, v):
                grown.add(prefix.concat(Path((u, v), cost)))
        prefixes.append(grown)
    return prefixes


def _segment_cost_prefixes(
    graph: MultiCostGraph, nodes: list[int]
) -> list[list[CostVector]]:
    """Skyline *costs* from ``nodes[0]`` to each position along a segment.

    Every skyline path to position ``k`` walks the same node sequence
    ``nodes[0..k]`` — only the parallel-edge cost choices differ — so
    the per-position ``PathSet`` of :func:`_segment_prefixes` reduces to
    a cost skyline (payload equality collapses to cost equality).  The
    insertion discipline below is ``ParetoSet.add`` with
    ``keep_equal_costs=True`` under that collapse, so each returned list
    matches the corresponding ``PathSet``'s costs value for value, in
    the same order.
    """
    chain_costs = [
        graph.edge_costs(u, v) for u, v in zip(nodes, nodes[1:])
    ]
    return _chain_cost_prefixes(graph.dim, chain_costs)


def _chain_cost_prefixes(
    dim: int, chain_costs: list[list[CostVector]]
) -> list[list[CostVector]]:
    """Positional cost skylines over pre-fetched per-edge cost lists."""
    skylines: list[list[CostVector]] = [[zero_cost(dim)]]
    for edge_costs in chain_costs:
        grown: list[CostVector] = []
        for previous in skylines[-1]:
            for cost in edge_costs:
                candidate = add_costs(previous, cost)
                if any(dominates_or_equal(kept, candidate) for kept in grown):
                    continue
                if grown:
                    grown[:] = [
                        kept for kept in grown if not dominates(candidate, kept)
                    ]
                grown.append(candidate)
        skylines.append(grown)
    return skylines


def condense_segments(
    graph: MultiCostGraph, segments: list[Segment], *, fast: bool = False
) -> AggressiveResult:
    """Condense segments into shortcuts, mutating ``graph`` (Ex. 4.9).

    Every interior node receives labels to both segment endpoints (its
    highway entrances).  When a segment's endpoints coincide (a
    lollipop), no shortcut is added — the interior is reachable only
    through that one endpoint anyway.

    ``fast`` (the flat construction pipeline) computes per-position
    cost skylines instead of full path sets and materializes each
    label path once, directly in reversed (label) orientation — the
    result is bit-identical to the reference path (see
    :func:`_segment_cost_prefixes`).
    """
    result = AggressiveResult()
    for segment in segments:
        nodes = segment.nodes
        if any(node in result.removed_nodes for node in nodes):
            continue  # already consumed by an overlapping segment
        if fast:
            chain_costs = [
                graph.edge_costs(u, v) for u, v in zip(nodes, nodes[1:])
            ]
            cost_prefixes = _chain_cost_prefixes(graph.dim, chain_costs)
            cost_suffixes = _chain_cost_prefixes(
                graph.dim, chain_costs[::-1]
            )[::-1]
            for position, node in enumerate(nodes[1:-1], start=1):
                toward_left = tuple(nodes[position::-1])
                for cost in cost_prefixes[position]:
                    result.index.add_path(
                        node, segment.left, Path(toward_left, cost)
                    )
                toward_right = tuple(nodes[position:])
                for cost in cost_suffixes[position]:
                    result.index.add_path(
                        node, segment.right, Path(toward_right, cost)
                    )
            shortcut_costs = cost_prefixes[-1]
            through_nodes = tuple(nodes)
        else:
            prefixes = _segment_prefixes(graph, nodes)
            suffixes = _segment_prefixes(graph, nodes[::-1])[::-1]
            # suffixes[k] holds skyline paths right-endpoint -> nodes[k];
            # reverse each to get nodes[k] -> right-endpoint.

            for position, node in enumerate(nodes[1:-1], start=1):
                for prefix in prefixes[position]:
                    result.index.add_path(node, segment.left, prefix.reverse())
                for suffix in suffixes[position]:
                    result.index.add_path(node, segment.right, suffix.reverse())
            shortcut_costs = [through.cost for through in prefixes[-1]]
            # Every through path walks the full chain, so the node
            # sequence is shared — same as the fast branch.
            through_nodes = tuple(nodes)

        for u, v in zip(nodes, nodes[1:]):
            for cost in graph.edge_costs(u, v):
                result.removed_edges.append((u, v, cost))
        result.removed_nodes.update(segment.interior)

        if segment.left != segment.right:
            for cost in shortcut_costs:
                key = (segment.left, segment.right, cost)
                result.shortcuts.append(key)
                result.provenance.setdefault(key, through_nodes)

        # Mutate the graph: drop the chain, add the shortcut skyline.
        for u, v in zip(nodes, nodes[1:]):
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
        for node in segment.interior:
            if graph.has_node(node):
                graph.remove_node(node)
        if segment.left != segment.right:
            for cost in shortcut_costs:
                graph.add_edge(segment.left, segment.right, cost)
    return result
