"""Label structures — the facilitating structure I_i (Definition 4.7).

When level i condenses a cluster, the removed nodes and edges would be
lost to queries.  The *label* of a cluster node ``v`` compensates: it
stores the skyline paths from ``v`` to each of the cluster's highway
entrances (the surviving nodes ``C.Ṽ``), computed **over the cluster's
removed edges only** — exactly the information a query needs to climb
from level i to level i+1.

A :class:`LevelIndex` collects the labels of one level.  Because a
level may run several condensing rounds (and an aggressive
summarization pass), the index supports :meth:`absorb`: labels whose
entrances were themselves removed by a later round are re-targeted by
concatenating with the later round's labels (Algorithm 2, line 12).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import CostVector
from repro.paths.frontier import PathSet
from repro.paths.path import Path
from repro.search.onetoall import one_to_all_skyline

CostedEdge = tuple[int, int, CostVector]


@dataclass
class NodeLabel:
    """label(v): skyline paths from one node to its highway entrances."""

    node: int
    entrances: dict[int, PathSet] = field(default_factory=dict)

    def add_path(self, entrance: int, path: Path) -> bool:
        """Record a skyline path ``node -> entrance``."""
        bucket = self.entrances.get(entrance)
        if bucket is None:
            bucket = self.entrances[entrance] = PathSet()
        return bucket.add(path)

    def paths_to(self, entrance: int) -> list[Path]:
        """Skyline paths to one entrance (empty list when unreachable)."""
        bucket = self.entrances.get(entrance)
        return bucket.paths() if bucket is not None else []

    def path_count(self) -> int:
        """Total stored skyline paths across all entrances."""
        return sum(len(bucket) for bucket in self.entrances.values())


class LevelIndex:
    """I_i: the labels of every condensed-cluster node at one level."""

    def __init__(self) -> None:
        self._labels: dict[int, NodeLabel] = {}

    def get(self, node: int) -> NodeLabel | None:
        """The node's label, or None when the node has no label here."""
        return self._labels.get(node)

    def add_path(self, node: int, entrance: int, path: Path) -> bool:
        """Record one skyline path for a node's label."""
        if node == entrance:
            return False
        label = self._labels.get(node)
        if label is None:
            label = self._labels[node] = NodeLabel(node)
        return label.add_path(entrance, path)

    def nodes(self) -> Iterable[int]:
        """Nodes that carry a label at this level."""
        return self._labels.keys()

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, node: int) -> bool:
        return node in self._labels

    def path_count(self) -> int:
        """Total skyline paths stored at this level."""
        return sum(label.path_count() for label in self._labels.values())

    def entrance_count(self) -> int:
        """Total (node, entrance) pairs stored at this level."""
        return sum(len(label.entrances) for label in self._labels.values())

    def absorb(
        self, later: "LevelIndex", surviving: set[int], *, steal: bool = False
    ) -> None:
        """Fold a later condensing round's labels into this index.

        Existing paths ending at an entrance that the later round
        removed are extended with that entrance's new paths (skyline
        concatenation); then the later round's own labels merge in.
        After absorbing, every stored entrance is in ``surviving``.

        ``steal=True`` moves each of ``later``'s :class:`NodeLabel`
        objects wholesale when this index has no label for that node
        yet — the dominant case, since successive rounds condense
        disjoint clusters.  Content and ordering are identical to the
        path-by-path merge (a ``PathSet``'s members are mutually
        non-dominated, so re-adding them one by one into an empty set
        keeps all of them in the same order), but the per-path Pareto
        scans disappear.  The caller gives up ownership of ``later``.
        """
        for label in self._labels.values():
            stale = [h for h in label.entrances if h not in surviving]
            for entrance in stale:
                old_paths = label.entrances.pop(entrance).paths()
                extension = later.get(entrance)
                if extension is None:
                    continue  # the entrance vanished unreachable; drop
                for new_entrance, suffixes in extension.entrances.items():
                    if new_entrance == label.node:
                        continue
                    for prefix in old_paths:
                        for suffix in suffixes:
                            label.add_path(new_entrance, prefix.concat(suffix))
        labels = self._labels
        for node, new_label in later._labels.items():
            if steal and node not in labels:
                labels[node] = new_label
                continue
            for entrance, paths in new_label.entrances.items():
                for path in paths:
                    self.add_path(node, entrance, path)


@dataclass
class LabelTask:
    """One cluster's deferred label-construction work.

    Pure in its arguments: the costed removed edges are captured before
    the level graph mutates, so a task can run any time after its
    cluster condensed — serially, or on a
    :class:`repro.mp.build_pool.BuildLabelPool` worker (the payload
    pickles cleanly).  Executing tasks in cluster order reproduces the
    inline construction path for path.
    """

    dim: int
    cluster_nodes: set[int]
    removed_edges: list[CostedEdge]
    entrances: set[int]
    max_frontier: int | None = None


def run_label_task(
    task: LabelTask, *, engine: str = "python"
) -> list[tuple[int, int, Path]]:
    """Execute one label task, returning ``(node, entrance, path)`` rows.

    Entrances are visited in sorted order and each entrance's reached
    nodes in first-pop order, so the row sequence — and therefore every
    downstream ``PathSet`` insertion order — is deterministic and
    independent of who runs the task.

    ``engine="python"`` searches a restricted :class:`MultiCostGraph`;
    any other engine freezes the removed edges straight into a
    :class:`~repro.accel.csr.CSRSnapshot` (skipping graph-object churn)
    and runs the flat one-to-all kernel.  The flat tier is pinned
    (``bucket_size=None``) so both engines emit bit-identical rows:
    cluster subgraphs sit far below the bucket kernel's crossover
    anyway, and bit-identity is what lets a flat-pipeline build serve
    the exact answers of a scalar build.
    """
    if not task.removed_edges or not task.entrances:
        return []
    rows: list[tuple[int, int, Path]] = []
    cluster_nodes = task.cluster_nodes
    if engine == "python":
        restricted = MultiCostGraph(task.dim)
        for node in cluster_nodes:
            restricted.add_node(node)
        for u, v, cost in task.removed_edges:
            restricted.add_edge(u, v, cost)
        for entrance in sorted(task.entrances):
            if not restricted.has_node(entrance):
                continue
            reached = one_to_all_skyline(
                restricted, entrance, max_frontier=task.max_frontier
            )
            for node, paths in reached.items():
                if node == entrance or node not in cluster_nodes:
                    continue
                for path in paths:
                    rows.append((node, entrance, path.reverse()))
        return rows

    from repro.accel.csr import CSRSnapshot
    from repro.accel.onetoall_kernel import flat_label_rows

    snapshot = CSRSnapshot.from_edges(
        task.dim, cluster_nodes, task.removed_edges
    )
    return flat_label_rows(
        snapshot, cluster_nodes, task.entrances, task.max_frontier
    )


def record_label_rows(
    into: LevelIndex, rows: Iterable[tuple[int, int, Path]]
) -> None:
    """Replay task rows into a level index (order-preserving)."""
    for node, entrance, path in rows:
        into.add_path(node, entrance, path)


def build_cluster_labels(
    dim: int,
    cluster_nodes: set[int],
    removed_edges: list[CostedEdge],
    entrances: set[int],
    *,
    into: LevelIndex,
    max_frontier: int | None = None,
    engine: str = "python",
) -> None:
    """Build labels for one condensed cluster (Definition 4.7).

    The skyline searches run on the *restricted graph* formed by the
    cluster's removed edges only — the paper's strategy that "preserves
    the deleted edge information in the skyline paths" while keeping
    the searches tiny.  One one-to-all run per entrance (paths are then
    reversed) covers every (node, entrance) pair.
    """
    task = LabelTask(
        dim=dim,
        cluster_nodes=cluster_nodes,
        removed_edges=removed_edges,
        entrances=entrances,
        max_frontier=max_frontier,
    )
    record_label_rows(into, run_label_task(task, engine=engine))
