"""Condensing one dense cluster: spanning tree + 2-core pruning.

Section 4.2.3: a cluster is condensed by (1) building a spanning tree
of its induced subgraph that prefers *higher degree-pair* edges — these
carry the most topological information [40] — and (2) recursively
removing degree-1 edges so the remaining network is a 2-core.  Degrees
in step (2) are *global*: a cluster-boundary node with edges into the
rest of the graph is never peeled, which is what preserves overall
connectivity.

The surviving cluster nodes are the cluster's *highway entrances*
(``C.Ṽ``, Definition 4.5); the removed nodes and edges feed label
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import TreePolicy
from repro.graph.mcrn import MultiCostGraph
from repro.graph.stats import degree_pair

Edge = tuple[int, int]


@dataclass
class CondensedCluster:
    """The outcome of condensing one dense cluster."""

    kept_nodes: set[int] = field(default_factory=set)
    removed_nodes: set[int] = field(default_factory=set)
    # Node pairs (canonical orientation) deleted from the level graph.
    removed_edges: list[Edge] = field(default_factory=list)


def _cluster_internal_edges(
    graph: MultiCostGraph, cluster_nodes: set[int]
) -> list[Edge]:
    """Cluster-internal edge pairs via per-node neighbor scans.

    The same pair set as filtering ``graph.edge_pairs()`` down to the
    cluster, but the work scales with the cluster's degree sum instead
    of the whole level graph's edge count (clusters are ~m_max nodes,
    the level graph thousands).  Pairs come out in the canonical
    ``u < v`` orientation the edge table stores.
    """
    edges: list[Edge] = []
    for u in cluster_nodes:
        for v in graph.neighbors(u):
            if u < v and v in cluster_nodes:
                edges.append((u, v))
    return edges


def degree_pair_spanning_forest(
    graph: MultiCostGraph,
    cluster_nodes: set[int],
    *,
    policy: TreePolicy = TreePolicy.DEGREE_PAIR,
    local_scan: bool = False,
) -> set[Edge]:
    """A spanning forest of the cluster preferring high degree pairs.

    Kruskal's procedure with edges sorted by degree pair descending
    (ties broken deterministically by the edge's node ids).  Degree
    pairs are evaluated on the full level graph, so boundary structure
    influences which edges survive.  The ``ARBITRARY`` policy processes
    edges in plain id order instead — the ablation comparator for the
    paper's design choice.

    ``local_scan`` enumerates internal edges through the cluster's own
    neighbor lists instead of sweeping the level graph's full edge
    table; both sort keys are total orders on edges, so the forest is
    identical either way.
    """
    if local_scan:
        internal_edges = _cluster_internal_edges(graph, cluster_nodes)
    else:
        internal_edges = [
            (u, v)
            for u, v in graph.edge_pairs()
            if u in cluster_nodes and v in cluster_nodes
        ]
    if policy is TreePolicy.DEGREE_PAIR:
        internal_edges.sort(
            key=lambda edge: (degree_pair(graph, *edge), (-edge[0], -edge[1])),
            reverse=True,
        )
    else:
        internal_edges.sort()
    parent: dict[int, int] = {node: node for node in cluster_nodes}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    forest: set[Edge] = set()
    for u, v in internal_edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            forest.add((u, v))
    return forest


def condense_cluster(
    graph: MultiCostGraph,
    cluster_nodes: set[int],
    *,
    policy: TreePolicy = TreePolicy.DEGREE_PAIR,
    local_scan: bool = False,
) -> CondensedCluster:
    """Condense one cluster of the level graph (Section 4.2.3).

    Non-tree internal edges are removed, then degree-1 nodes are peeled
    recursively (counting edges to the outside), leaving a 2-core.  The
    graph is *not* modified; the caller applies the removals so it can
    first build labels from them.  ``local_scan`` switches both
    internal-edge sweeps to cluster-local neighbor scans (same sets,
    see :func:`degree_pair_spanning_forest`).
    """
    forest = degree_pair_spanning_forest(
        graph, cluster_nodes, policy=policy, local_scan=local_scan
    )
    if local_scan:
        internal = set(_cluster_internal_edges(graph, cluster_nodes))
    else:
        internal = {
            (u, v)
            for u, v in graph.edge_pairs()
            if u in cluster_nodes and v in cluster_nodes
        }
    removed_edges = list(internal - forest)

    # Only tree edges are removable: a node anchored to the rest of the
    # graph by an external edge is never peeled, so global connectivity
    # through the cluster is preserved.
    external: dict[int, int] = {
        node: sum(
            1 for neighbor in graph.neighbors(node) if neighbor not in cluster_nodes
        )
        for node in cluster_nodes
    }
    tree_degree: dict[int, int] = {node: 0 for node in cluster_nodes}
    adjacency: dict[int, set[int]] = {node: set() for node in cluster_nodes}
    for u, v in forest:
        adjacency[u].add(v)
        adjacency[v].add(u)
        tree_degree[u] += 1
        tree_degree[v] += 1

    def peelable(node: int) -> bool:
        return external[node] == 0 and tree_degree[node] <= 1

    removed_nodes: set[int] = set()
    stack = [node for node in cluster_nodes if peelable(node)]
    while stack:
        node = stack.pop()
        if node in removed_nodes or not peelable(node):
            continue
        removed_nodes.add(node)
        for neighbor in adjacency[node]:
            if neighbor in removed_nodes:
                continue
            removed_edges.append((min(node, neighbor), max(node, neighbor)))
            tree_degree[neighbor] -= 1
            if peelable(neighbor):
                stack.append(neighbor)
        adjacency[node].clear()

    kept = cluster_nodes - removed_nodes
    return CondensedCluster(
        kept_nodes=kept,
        removed_nodes=removed_nodes,
        removed_edges=removed_edges,
    )
