"""Backbone index construction — Algorithm 2.

The builder repeatedly summarizes the working graph level by level:

1. **Regular summarization** — condensing rounds (degree-1 stripping +
   dense-cluster condensation) repeat until the level has removed at
   least ``p * |G_0.E|`` edges or stalls.
2. **Aggressive summarization** — if the level still fell short (the
   ``NORMAL`` variant, Algorithm 2 line 9) or unconditionally (the
   ``EACH`` variant), single segments collapse into shortcut edges and
   their labels fold into the level's index.

The level loop ends when a level cannot remove the required edge share
(or would empty the graph — that level's last round is rolled back),
after which a landmark index is built over the final most-abstracted
graph G_L.

The loop core is exposed as :func:`summarize_levels` so index
maintenance (:mod:`repro.core.maintenance`) can replay construction
from an intermediate level after a network update.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.index import BackboneIndex, BuildStats, LevelStats, ShortcutKey
from repro.core.labels import LevelIndex
from repro.core.params import AggressiveMode, BackboneParams
from repro.core.segments import condense_segments, find_single_segments
from repro.core.summarize import condense_round
from repro.errors import BuildError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.search.landmark import LandmarkIndex

# A level may loop condensing rounds only so many times before we call
# it stalled; each round shrinks the graph, so this is a safety valve.
_MAX_ROUNDS_PER_LEVEL = 32


@dataclass
class SummarizationOutcome:
    """Everything the level loop produced from one starting graph."""

    levels: list[LevelIndex] = field(default_factory=list)
    # Shortcut provenance recorded per level, so a partial rebuild can
    # keep the untouched levels' entries.
    level_provenance: list[dict[ShortcutKey, tuple[int, ...]]] = field(
        default_factory=list
    )
    level_stats: list[LevelStats] = field(default_factory=list)
    # Copies of each level's input graph (G_offset, G_offset+1, ...),
    # recorded only when requested; index maintenance replays from them.
    snapshots: list[MultiCostGraph] = field(default_factory=list)
    final_graph: MultiCostGraph | None = None


def summarize_levels(
    work: MultiCostGraph,
    params: BackboneParams,
    required_removals: int,
    *,
    level_offset: int = 0,
    keep_snapshots: bool = False,
    tracer: Tracer | None = None,
) -> SummarizationOutcome:
    """Run Algorithm 2's level loop, mutating ``work`` in place.

    ``required_removals`` is ``p * |G_0.E|`` evaluated on the original
    network; ``level_offset`` only affects reported level numbers (a
    maintenance replay starts mid-index).  An enabled ``tracer`` emits
    one ``build.level`` span per constructed level, with nested spans
    for condensing rounds and segment materialization.
    """
    outcome = SummarizationOutcome()
    tracer = resolve_tracer(tracer)

    while len(outcome.levels) + level_offset < params.max_levels:
        if keep_snapshots:
            outcome.snapshots.append(work.copy())
        nodes_before = work.num_nodes
        edges_before = work.num_edge_entries

        level_index = LevelIndex()
        level_provenance: dict[ShortcutKey, tuple[int, ...]] = {}
        removed_edges = 0
        rounds = 0
        clusters = 0
        aggressive_used = False

        with tracer.span(
            "build.level",
            level=level_offset + len(outcome.levels),
            nodes_before=nodes_before,
            edges_before=edges_before,
        ) as level_span:
            # --- Step 1: regular summarization rounds -----------------
            while (
                removed_edges < required_removals
                and rounds < _MAX_ROUNDS_PER_LEVEL
            ):
                snapshot = work.copy()
                with tracer.span("build.condense_round") as round_span:
                    round_result = condense_round(work, params, tracer=tracer)
                    if round_span.enabled:
                        round_span.set(
                            removed_edges=round_result.removed_edge_count,
                            clusters=round_result.clusters_condensed,
                        )
                rounds += 1
                if not round_result.changed:
                    break
                if work.num_nodes == 0:
                    # The round would empty the graph; Algorithm 2
                    # requires |G_{i+1}.V| != 0, so undo this round and
                    # stop here.
                    work.restore_from(snapshot)
                    break
                level_index.absorb(round_result.index, set(work.nodes()))
                removed_edges += round_result.removed_edge_count
                clusters += round_result.clusters_condensed

            # --- Step 2: aggressive summarization ---------------------
            wants_aggressive = params.aggressive is AggressiveMode.EACH or (
                params.aggressive is AggressiveMode.NORMAL
                and removed_edges < required_removals
            )
            if wants_aggressive and work.num_nodes > 0:
                with tracer.span("build.segments") as seg_span:
                    segments = find_single_segments(work)
                    if segments:
                        aggressive = condense_segments(work, segments)
                        if aggressive.removed_edges and work.num_nodes > 0:
                            aggressive_used = True
                            level_index.absorb(
                                aggressive.index, set(work.nodes())
                            )
                            removed_edges += len(aggressive.removed_edges)
                            level_provenance.update(aggressive.provenance)
                    if seg_span.enabled:
                        seg_span.set(
                            segments=len(segments),
                            materialized=aggressive_used,
                        )

            if level_span.enabled:
                level_span.set(
                    removed_edges=removed_edges,
                    rounds=rounds,
                    clusters=clusters,
                    aggressive_used=aggressive_used,
                    label_paths=level_index.path_count(),
                    nodes_after=work.num_nodes,
                )

        if removed_edges == 0:
            if keep_snapshots:
                outcome.snapshots.pop()  # the level never materialized
            break  # nothing condensable remains; the loop is done

        outcome.levels.append(level_index)
        outcome.level_provenance.append(level_provenance)
        outcome.level_stats.append(
            LevelStats(
                level=level_offset + len(outcome.levels) - 1,
                nodes_before=nodes_before,
                edges_before=edges_before,
                removed_edges=removed_edges,
                label_paths=level_index.path_count(),
                aggressive_used=aggressive_used,
                rounds=rounds,
            )
        )
        if work.num_nodes == 0 or removed_edges < required_removals:
            break  # Algorithm 2's do-while condition fails

    outcome.final_graph = work
    return outcome


def required_edge_removals(graph: MultiCostGraph, params: BackboneParams) -> int:
    """``p * |G_0.E|`` — the per-level removal quota (Definition 4.8)."""
    return max(1, int(params.p * graph.num_edge_entries))


def build_backbone_index(
    graph: MultiCostGraph,
    params: BackboneParams | None = None,
    *,
    tracer: Tracer | None = None,
) -> BackboneIndex:
    """Build the backbone index of a multi-cost road network.

    Parameters
    ----------
    graph:
        The original network G_0.  It is never modified; the builder
        works on a copy.
    params:
        Construction parameters; defaults follow the paper
        (``BackboneParams()``).
    tracer:
        Observability hook; defaults to the process-wide tracer.  When
        enabled, construction emits a ``build.index`` span tree (one
        ``build.level`` child per level, plus landmark construction).
    """
    if params is None:
        params = BackboneParams()
    if graph.num_nodes == 0:
        raise BuildError("cannot index an empty graph")
    if graph.directed:
        raise BuildError(
            "build_backbone_index expects an undirected network; model "
            "directed roads as undirected edges per the paper's Section 3"
        )

    started = time.perf_counter()
    tracer = resolve_tracer(tracer)
    with tracer.span(
        "build.index", nodes=graph.num_nodes, edges=graph.num_edges
    ) as build_span:
        work = graph.copy()
        outcome = summarize_levels(
            work, params, required_edge_removals(graph, params),
            tracer=tracer,
        )
        top_graph = outcome.final_graph
        assert top_graph is not None
        if top_graph.num_nodes == 0:
            raise BuildError(
                "summarization emptied the graph; this indicates an "
                "internal rollback failure"
            )

        provenance: dict[ShortcutKey, tuple[int, ...]] = {}
        for per_level in outcome.level_provenance:
            provenance.update(per_level)
        landmarks = LandmarkIndex(
            top_graph,
            min(params.landmark_count, top_graph.num_nodes),
            tracer=tracer,
        )
        stats = BuildStats(levels=outcome.level_stats)
        stats.elapsed_seconds = time.perf_counter() - started
        if build_span.enabled:
            build_span.set(
                levels=len(outcome.levels),
                top_graph_nodes=top_graph.num_nodes,
                label_paths=sum(s.label_paths for s in outcome.level_stats),
            )

    return BackboneIndex(
        original_graph=graph,
        params=params,
        levels=outcome.levels,
        top_graph=top_graph,
        landmarks=landmarks,
        provenance=provenance,
        build_stats=stats,
    )
