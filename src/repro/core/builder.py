"""Backbone index construction — Algorithm 2.

The builder repeatedly summarizes the working graph level by level:

1. **Regular summarization** — condensing rounds (degree-1 stripping +
   dense-cluster condensation) repeat until the level has removed at
   least ``p * |G_0.E|`` edges or stalls.
2. **Aggressive summarization** — if the level still fell short (the
   ``NORMAL`` variant, Algorithm 2 line 9) or unconditionally (the
   ``EACH`` variant), single segments collapse into shortcut edges and
   their labels fold into the level's index.

The level loop ends when a level cannot remove the required edge share
(or would empty the graph — that level's last round is rolled back),
after which a landmark index is built over the final most-abstracted
graph G_L.

The loop core is exposed as :func:`summarize_levels` so index
maintenance (:mod:`repro.core.maintenance`) can replay construction
from an intermediate level after a network update.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.index import BackboneIndex, BuildStats, LevelStats, ShortcutKey
from repro.core.labels import LevelIndex
from repro.core.params import AggressiveMode, BackboneParams
from repro.core.segments import condense_segments, find_single_segments
from repro.core.summarize import condense_round
from repro.errors import BuildError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.search.landmark import LandmarkIndex

# A level may loop condensing rounds only so many times before we call
# it stalled; each round shrinks the graph, so this is a safety valve.
_MAX_ROUNDS_PER_LEVEL = 32


def _replay_round_removals(
    work: MultiCostGraph,
    nodes_before: list[tuple[int, tuple[float, float] | None]],
    round_result,
) -> None:
    """Roll back one condensing round without a pre-round graph copy.

    The flat pipeline skips the defensive ``work.copy()`` the reference
    pipeline takes before each round (the emptied-graph rollback has
    never been observed: stripping always leaves the last node of a
    component, and cluster condensation keeps its entrances).  If the
    round nevertheless emptied the graph, rebuild it from the round's
    own removal record: nodes re-register in their original iteration
    order, then every removed parallel edge is re-added — each pair's
    surviving cost set is mutually non-dominated, so re-insertion
    reproduces the stored skylines exactly.
    """
    for node, coord in nodes_before:
        if not work.has_node(node):
            work.add_node(node, coord)
    for u, v, cost in round_result.removed_edges:
        work.add_edge(u, v, cost)


@dataclass
class SummarizationOutcome:
    """Everything the level loop produced from one starting graph."""

    levels: list[LevelIndex] = field(default_factory=list)
    # Shortcut provenance recorded per level, so a partial rebuild can
    # keep the untouched levels' entries.
    level_provenance: list[dict[ShortcutKey, tuple[int, ...]]] = field(
        default_factory=list
    )
    level_stats: list[LevelStats] = field(default_factory=list)
    # Copies of each level's input graph (G_offset, G_offset+1, ...),
    # recorded only when requested; index maintenance replays from them.
    snapshots: list[MultiCostGraph] = field(default_factory=list)
    final_graph: MultiCostGraph | None = None


def summarize_levels(
    work: MultiCostGraph,
    params: BackboneParams,
    required_removals: int,
    *,
    level_offset: int = 0,
    keep_snapshots: bool = False,
    tracer: Tracer | None = None,
    engine: str = "python",
    label_pool=None,
) -> SummarizationOutcome:
    """Run Algorithm 2's level loop, mutating ``work`` in place.

    ``required_removals`` is ``p * |G_0.E|`` evaluated on the original
    network; ``level_offset`` only affects reported level numbers (a
    maintenance replay starts mid-index).  An enabled ``tracer`` emits
    one ``build.level`` span per constructed level, with nested spans
    for condensing rounds and segment materialization.  ``engine`` and
    ``label_pool`` select the construction pipeline (see
    :func:`repro.core.summarize.condense_round`); both produce the
    same index as the reference path.
    """
    outcome = SummarizationOutcome()
    tracer = resolve_tracer(tracer)
    flat = engine != "python"

    while len(outcome.levels) + level_offset < params.max_levels:
        if keep_snapshots:
            outcome.snapshots.append(work.copy())
        nodes_before = work.num_nodes
        edges_before = work.num_edge_entries

        level_index = LevelIndex()
        level_provenance: dict[ShortcutKey, tuple[int, ...]] = {}
        removed_edges = 0
        rounds = 0
        clusters = 0
        aggressive_used = False

        with tracer.span(
            "build.level",
            level=level_offset + len(outcome.levels),
            nodes_before=nodes_before,
            edges_before=edges_before,
        ) as level_span:
            # --- Step 1: regular summarization rounds -----------------
            while (
                removed_edges < required_removals
                and rounds < _MAX_ROUNDS_PER_LEVEL
            ):
                if flat:
                    # Rollback insurance without the full graph copy —
                    # see _replay_round_removals.
                    snapshot = None
                    nodes_before_round = [
                        (node, work.coord(node)) for node in work.nodes()
                    ]
                else:
                    snapshot = work.copy()
                with tracer.span("build.condense_round") as round_span:
                    round_result = condense_round(
                        work,
                        params,
                        tracer=tracer,
                        engine=engine,
                        label_pool=label_pool,
                    )
                    if round_span.enabled:
                        round_span.set(
                            removed_edges=round_result.removed_edge_count,
                            clusters=round_result.clusters_condensed,
                        )
                rounds += 1
                if not round_result.changed:
                    break
                if work.num_nodes == 0:
                    # The round would empty the graph; Algorithm 2
                    # requires |G_{i+1}.V| != 0, so undo this round and
                    # stop here.
                    if snapshot is not None:
                        work.restore_from(snapshot)
                    else:
                        _replay_round_removals(
                            work, nodes_before_round, round_result
                        )
                    break
                level_index.absorb(
                    round_result.index, set(work.nodes()), steal=flat
                )
                removed_edges += round_result.removed_edge_count
                clusters += round_result.clusters_condensed

            # --- Step 2: aggressive summarization ---------------------
            wants_aggressive = params.aggressive is AggressiveMode.EACH or (
                params.aggressive is AggressiveMode.NORMAL
                and removed_edges < required_removals
            )
            if wants_aggressive and work.num_nodes > 0:
                with tracer.span("build.segments") as seg_span:
                    segments = find_single_segments(work)
                    if segments:
                        aggressive = condense_segments(
                            work, segments, fast=flat
                        )
                        if aggressive.removed_edges and work.num_nodes > 0:
                            aggressive_used = True
                            level_index.absorb(
                                aggressive.index, set(work.nodes()), steal=flat
                            )
                            removed_edges += len(aggressive.removed_edges)
                            level_provenance.update(aggressive.provenance)
                    if seg_span.enabled:
                        seg_span.set(
                            segments=len(segments),
                            materialized=aggressive_used,
                        )

            if level_span.enabled:
                level_span.set(
                    removed_edges=removed_edges,
                    rounds=rounds,
                    clusters=clusters,
                    aggressive_used=aggressive_used,
                    label_paths=level_index.path_count(),
                    nodes_after=work.num_nodes,
                )

        if removed_edges == 0:
            if keep_snapshots:
                outcome.snapshots.pop()  # the level never materialized
            break  # nothing condensable remains; the loop is done

        outcome.levels.append(level_index)
        outcome.level_provenance.append(level_provenance)
        outcome.level_stats.append(
            LevelStats(
                level=level_offset + len(outcome.levels) - 1,
                nodes_before=nodes_before,
                edges_before=edges_before,
                removed_edges=removed_edges,
                label_paths=level_index.path_count(),
                aggressive_used=aggressive_used,
                rounds=rounds,
            )
        )
        if work.num_nodes == 0 or removed_edges < required_removals:
            break  # Algorithm 2's do-while condition fails

    outcome.final_graph = work
    return outcome


def required_edge_removals(graph: MultiCostGraph, params: BackboneParams) -> int:
    """``p * |G_0.E|`` — the per-level removal quota (Definition 4.8)."""
    return max(1, int(params.p * graph.num_edge_entries))


_BUILD_ENGINES = ("python", "flat", "batch")


def build_backbone_index(
    graph: MultiCostGraph,
    params: BackboneParams | None = None,
    *,
    tracer: Tracer | None = None,
    engine: str = "python",
    build_workers: int = 1,
) -> BackboneIndex:
    """Build the backbone index of a multi-cost road network.

    Parameters
    ----------
    graph:
        The original network G_0.  It is never modified; the builder
        works on a copy.
    params:
        Construction parameters; defaults follow the paper
        (``BackboneParams()``).
    tracer:
        Observability hook; defaults to the process-wide tracer.  When
        enabled, construction emits a ``build.index`` span tree (one
        ``build.level`` child per level, plus landmark construction).
    engine:
        Construction pipeline.  ``"python"`` (default) is the scalar
        reference; ``"flat"`` and ``"batch"`` run label searches on the
        CSR one-to-all kernel and enable the one-pass discovery /
        local-scan / steal-merge fast paths.  All engines produce an
        index serving identical answers; ``"flat"``/``"batch"`` differ
        only in internal kernel tier (labels themselves are built on
        the flat tier either way, keeping construction bit-identical).
    build_workers:
        Number of label-construction processes.  With ``N > 1``
        independent clusters' labels build in parallel on a forked
        worker pool; results merge in cluster order, so the index is
        identical to the single-process build.
    """
    if params is None:
        params = BackboneParams()
    if graph.num_nodes == 0:
        raise BuildError("cannot index an empty graph")
    if graph.directed:
        raise BuildError(
            "build_backbone_index expects an undirected network; model "
            "directed roads as undirected edges per the paper's Section 3"
        )
    if engine not in _BUILD_ENGINES:
        raise BuildError(
            f"unknown build engine {engine!r}; expected one of "
            f"{', '.join(_BUILD_ENGINES)}"
        )
    if build_workers < 1:
        raise BuildError(f"build_workers must be >= 1, got {build_workers}")

    started = time.perf_counter()
    tracer = resolve_tracer(tracer)
    label_pool = None
    if build_workers > 1:
        from repro.mp.build_pool import BuildLabelPool

        label_pool = BuildLabelPool(build_workers, engine=engine)
    try:
        with tracer.span(
            "build.index", nodes=graph.num_nodes, edges=graph.num_edges
        ) as build_span:
            work = graph.copy()
            outcome = summarize_levels(
                work, params, required_edge_removals(graph, params),
                tracer=tracer, engine=engine, label_pool=label_pool,
            )
            top_graph = outcome.final_graph
            assert top_graph is not None
            if top_graph.num_nodes == 0:
                raise BuildError(
                    "summarization emptied the graph; this indicates an "
                    "internal rollback failure"
                )

            provenance: dict[ShortcutKey, tuple[int, ...]] = {}
            for per_level in outcome.level_provenance:
                provenance.update(per_level)
            landmarks = LandmarkIndex(
                top_graph,
                min(params.landmark_count, top_graph.num_nodes),
                tracer=tracer,
            )
            stats = BuildStats(levels=outcome.level_stats)
            stats.elapsed_seconds = time.perf_counter() - started
            if build_span.enabled:
                build_span.set(
                    levels=len(outcome.levels),
                    top_graph_nodes=top_graph.num_nodes,
                    label_paths=sum(s.label_paths for s in outcome.level_stats),
                )
    finally:
        if label_pool is not None:
            label_pool.close()

    return BackboneIndex(
        original_graph=graph,
        params=params,
        levels=outcome.levels,
        top_graph=top_graph,
        landmarks=landmarks,
        provenance=provenance,
        build_stats=stats,
    )
