"""Dense-cluster discovery — Algorithm 1 of the paper.

Clusters are grown greedily from seed nodes in descending
cluster-coefficient order: the highest-coefficient unvisited node seeds
a cluster, which expands through a max-priority queue (again by cluster
coefficient) until the queue drains or the cluster hits ``m_max``.
Nodes whose two-hop cardinality falls below the condensing threshold
are *noise* and are never condensed, preserving the topology of sparse
components (Section 4.2.2).  Finally, clusters smaller than ``m_min``
merge into the adjacent cluster sharing the most cut edges.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.core.coefficients import (
    all_cluster_coefficients,
    all_two_hop_cardinalities,
)
from repro.core.params import BackboneParams
from repro.core.threshold import condensing_threshold
from repro.graph.mcrn import MultiCostGraph


@dataclass
class Clustering:
    """The outcome of one clustering pass over a level graph."""

    clusters: list[set[int]] = field(default_factory=list)
    noise: set[int] = field(default_factory=set)
    noise_val: int = 0

    @property
    def clustered_nodes(self) -> set[int]:
        """Union of all cluster node sets."""
        result: set[int] = set()
        for cluster in self.clusters:
            result |= cluster
        return result

    def membership(self) -> dict[int, int]:
        """Map node -> cluster index (noise nodes absent)."""
        owner: dict[int, int] = {}
        for index, cluster in enumerate(self.clusters):
            for node in cluster:
                owner[node] = index
        return owner


def find_dense_clusters(
    graph: MultiCostGraph,
    params: BackboneParams,
    *,
    coefficients: dict[int, float] | None = None,
    cardinalities: dict[int, int] | None = None,
) -> Clustering:
    """Run Algorithm 1 on a level graph.

    ``coefficients`` and ``cardinalities`` may be supplied to reuse
    previously computed tables (the flat construction pipeline computes
    both in one pass via
    :func:`repro.core.coefficients.all_coefficient_stats`).
    """
    if graph.num_nodes == 0:
        return Clustering()
    if coefficients is None:
        coefficients = all_cluster_coefficients(graph)
    if cardinalities is None:
        cardinalities = all_two_hop_cardinalities(graph)
    noise_val = condensing_threshold(cardinalities.values(), params.p_ind)

    visited: set[int] = set()
    noise: set[int] = set()
    clusters: list[set[int]] = []
    tie_breaker = itertools.count()

    # Outer loop: nodes in descending cluster-coefficient order.
    for seed in sorted(graph.nodes(), key=coefficients.__getitem__, reverse=True):
        if seed in visited:
            continue
        if cardinalities[seed] < noise_val:
            noise.add(seed)
            visited.add(seed)
            continue
        cluster: set[int] = set()
        # Max-priority queue on cluster coefficient (heapq is a
        # min-heap, hence the negation).
        queue: list[tuple[float, int, int]] = [
            (-coefficients[seed], next(tie_breaker), seed)
        ]
        while queue:
            _, _, node = heapq.heappop(queue)
            if node in visited:
                if node in noise:
                    # A noise node pulled into a growing cluster joins it
                    # (Algorithm 1, lines 25-27).
                    noise.discard(node)
                    cluster.add(node)
                continue
            visited.add(node)
            cluster.add(node)
            for neighbor in graph.neighbors(node):
                if neighbor in visited:
                    continue
                if len(cluster) > params.m_max:
                    break
                if cardinalities[neighbor] >= noise_val:
                    heapq.heappush(
                        queue,
                        (-coefficients[neighbor], next(tie_breaker), neighbor),
                    )
        if cluster:
            clusters.append(cluster)

    clustering = Clustering(clusters=clusters, noise=noise, noise_val=noise_val)
    _merge_small_clusters(graph, clustering, params.m_min)
    return clustering


def _merge_small_clusters(
    graph: MultiCostGraph, clustering: Clustering, m_min: int
) -> None:
    """Merge clusters below ``m_min`` into their best-connected neighbor.

    "Best-connected" counts cut edges between the small cluster and each
    candidate cluster; the paper leaves the policy unspecified
    (``C.mergeSmallCluster``), and this choice keeps merged clusters
    spatially coherent.  A small cluster with no adjacent cluster stays
    as it is.
    """
    if m_min <= 1 or len(clustering.clusters) <= 1:
        return
    owner = clustering.membership()
    # Iterate smallest-first so chains of tiny clusters coalesce.
    order = sorted(
        range(len(clustering.clusters)),
        key=lambda index: len(clustering.clusters[index]),
    )
    merged_into: dict[int, int] = {}

    def resolve(index: int) -> int:
        while index in merged_into:
            index = merged_into[index]
        return index

    for index in order:
        index = resolve(index)
        cluster = clustering.clusters[index]
        if len(cluster) >= m_min:
            continue
        cut_edges: dict[int, int] = {}
        for node in cluster:
            for neighbor in graph.neighbors(node):
                other = owner.get(neighbor)
                if other is None:
                    continue
                other = resolve(other)
                if other != index:
                    cut_edges[other] = cut_edges.get(other, 0) + 1
        if not cut_edges:
            continue
        best = max(cut_edges, key=lambda idx: (cut_edges[idx], -idx))
        clustering.clusters[best] |= cluster
        for node in cluster:
            owner[node] = best
        cluster.clear()
        merged_into[index] = best

    clustering.clusters = [c for c in clustering.clusters if c]
