"""Evaluation: quality metrics, workloads, runners, and reporting."""

from repro.eval.analysis import query_stretch, stretch_vs_height
from repro.eval.ascii_map import path_overlap, render_network
from repro.eval.hypervolume import (
    hypervolume,
    hypervolume_ratio,
    quality_ratio,
    reference_point,
)
from repro.eval.metrics import cosine_similarity, goodness, rac, set_reduction
from repro.eval.queries import Query, hop_stratified_queries, random_queries
from repro.eval.reporting import (
    fmt_bytes,
    fmt_seconds,
    format_series,
    format_table,
)
from repro.eval.runner import (
    QueryRecord,
    SuiteSummary,
    run_suite,
    time_call,
)

__all__ = [
    "Query",
    "QueryRecord",
    "SuiteSummary",
    "cosine_similarity",
    "fmt_bytes",
    "fmt_seconds",
    "format_series",
    "format_table",
    "goodness",
    "hypervolume",
    "hypervolume_ratio",
    "hop_stratified_queries",
    "path_overlap",
    "quality_ratio",
    "query_stretch",
    "rac",
    "reference_point",
    "random_queries",
    "render_network",
    "run_suite",
    "set_reduction",
    "stretch_vs_height",
    "time_call",
]
