"""Experiment harness: run query suites and aggregate their metrics.

The benchmarks (one per table/figure of the paper) share this runner:
it executes a workload against the exact BBS method and/or a backbone
index, collects per-query records, and aggregates the quantities the
paper reports — RAC per dimension, goodness, result-set sizes, query
times, speed-ups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean

from repro.core.index import BackboneIndex
from repro.errors import QueryError
from repro.eval.metrics import goodness, rac
from repro.eval.queries import Query
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.search.bbs import skyline_paths


@dataclass
class QueryRecord:
    """Everything measured for one query."""

    query: Query
    exact_paths: list[Path] | None = None
    approx_paths: list[Path] | None = None
    exact_seconds: float = 0.0
    approx_seconds: float = 0.0
    exact_timed_out: bool = False

    @property
    def comparable(self) -> bool:
        """True when both sides produced results to compare."""
        return bool(self.exact_paths) and bool(self.approx_paths)


@dataclass
class SuiteSummary:
    """Aggregates over a query suite (the numbers the paper tabulates)."""

    records: list[QueryRecord] = field(default_factory=list)

    @property
    def compared(self) -> list[QueryRecord]:
        return [r for r in self.records if r.comparable]

    def mean_rac(self) -> tuple[float, ...]:
        """Per-dimension RAC averaged over comparable queries."""
        rows = [rac(r.approx_paths, r.exact_paths) for r in self.compared]
        if not rows:
            raise QueryError("no comparable queries to aggregate")
        dim = len(rows[0])
        return tuple(mean(row[i] for row in rows) for i in range(dim))

    def mean_goodness(self) -> float:
        """Goodness averaged over comparable queries."""
        rows = [goodness(r.approx_paths, r.exact_paths) for r in self.compared]
        if not rows:
            raise QueryError("no comparable queries to aggregate")
        return mean(rows)

    def mean_hypervolume_ratio(self) -> float:
        """Hypervolume coverage ratio averaged over comparable queries.

        A stricter, direction-sensitive quality score than goodness:
        how much of the exact frontier's dominated cost space the
        approximate answers still cover (1.0 = full coverage).
        """
        from repro.eval.hypervolume import hypervolume_ratio

        rows = [
            hypervolume_ratio(r.approx_paths, r.exact_paths)
            for r in self.compared
        ]
        if not rows:
            raise QueryError("no comparable queries to aggregate")
        return mean(rows)

    def mean_exact_seconds(self) -> float:
        rows = [r.exact_seconds for r in self.records if r.exact_paths is not None]
        return mean(rows) if rows else 0.0

    def mean_approx_seconds(self) -> float:
        rows = [r.approx_seconds for r in self.records if r.approx_paths is not None]
        return mean(rows) if rows else 0.0

    def mean_exact_size(self) -> float:
        rows = [len(r.exact_paths) for r in self.records if r.exact_paths]
        return mean(rows) if rows else 0.0

    def mean_approx_size(self) -> float:
        rows = [len(r.approx_paths) for r in self.records if r.approx_paths]
        return mean(rows) if rows else 0.0

    def speedup(self) -> float:
        """Mean exact time over mean approximate time (Table 3's ratio)."""
        approx = self.mean_approx_seconds()
        if approx == 0.0:
            return float("inf")
        return self.mean_exact_seconds() / approx


def run_suite(
    graph: MultiCostGraph,
    queries: list[Query],
    *,
    index: BackboneIndex | None = None,
    run_exact: bool = True,
    exact_time_budget: float | None = None,
) -> SuiteSummary:
    """Execute a workload, optionally against both methods.

    Queries whose exact search times out are kept in the records (the
    timing is real) but excluded from quality aggregation — matching
    the paper's practice of only comparing queries BBS can finish.
    """
    summary = SuiteSummary()
    for query in queries:
        record = QueryRecord(query=query)
        if run_exact:
            started = time.perf_counter()
            result = skyline_paths(
                graph,
                query.source,
                query.target,
                time_budget=exact_time_budget,
            )
            record.exact_seconds = time.perf_counter() - started
            record.exact_timed_out = result.stats.timed_out
            record.exact_paths = None if result.stats.timed_out else result.paths
        if index is not None:
            started = time.perf_counter()
            record.approx_paths = index.query(query.source, query.target)
            record.approx_seconds = time.perf_counter() - started
        summary.records.append(record)
    return summary


def time_call(fn, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` and return (result, elapsed_seconds)."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started
