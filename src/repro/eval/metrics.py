"""Approximation-quality measurements (Section 6.1).

Two measures compare an approximate skyline set P' to the exact set P:

* **RAC** — ratio of average cost per dimension:
  ``RAC_i = mean(cost_i over P') / mean(cost_i over P)``.  Closer to 1
  is better; the paper's methods land around 1.4-1.9.
* **goodness** — for every exact path, the best cosine similarity of
  its cost vector to any approximate path's cost vector, averaged over
  the exact set.  Closer to 1 is better; the paper reports ~0.85.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import QueryError
from repro.paths.path import Path


def rac(
    approximate: Sequence[Path], exact: Sequence[Path]
) -> tuple[float, ...]:
    """Ratio of average cost on each dimension (RAC_i).

    Raises :class:`QueryError` when either set is empty — an empty
    comparison has no defined ratio and silently returning one would
    poison averages.
    """
    if not approximate or not exact:
        raise QueryError("RAC needs non-empty approximate and exact sets")
    dim = approximate[0].dim
    approx_mean = [
        sum(path.cost[i] for path in approximate) / len(approximate)
        for i in range(dim)
    ]
    exact_mean = [
        sum(path.cost[i] for path in exact) / len(exact) for i in range(dim)
    ]
    return tuple(
        a / e if e > 0 else math.inf for a, e in zip(approx_mean, exact_mean)
    )


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity of two cost vectors (0 when either is zero)."""
    dot = sum(x * y for x, y in zip(a, b, strict=True))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def goodness(approximate: Sequence[Path], exact: Sequence[Path]) -> float:
    """The paper's goodness score of an approximate set.

    ``goodness(P') = mean over p in P of max over p' in P' of
    cos(cost(p), cost(p'))`` — how well the approximate set covers the
    directions of the exact Pareto front.
    """
    if not approximate or not exact:
        raise QueryError("goodness needs non-empty approximate and exact sets")
    total = 0.0
    for exact_path in exact:
        total += max(
            cosine_similarity(exact_path.cost, approx.cost)
            for approx in approximate
        )
    return total / len(exact)


def set_reduction(approximate: Sequence[Path], exact: Sequence[Path]) -> float:
    """|P| / |P'| — how much smaller the approximate set is (Fig. 9)."""
    if not approximate:
        raise QueryError("set_reduction needs a non-empty approximate set")
    return len(exact) / len(approximate)
