"""Empirical analysis of the approximation bound (paper Section 5).

The paper bounds an approximate solution's weight by ``O((F_val)^L)``,
where L is the index height: every level climbed can multiply the
detour factor.  The bound is loose in practice, but its *shape* — the
stretch grows with the index height — is measurable.  This module
provides the instrumentation:

* :func:`query_stretch` — the per-dimension worst ratio between an
  approximate answer's best costs and the exact optima for one query;
* :func:`stretch_vs_height` — builds indexes of increasing height (by
  shrinking ``p``) and reports the mean stretch per height, the
  empirical analogue of the bound.
"""

from __future__ import annotations

from dataclasses import replace
from statistics import mean

from repro.core.builder import build_backbone_index
from repro.core.params import BackboneParams
from repro.errors import QueryError
from repro.eval.queries import Query
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.search.dijkstra import shortest_costs


def query_stretch(
    graph: MultiCostGraph,
    query: Query,
    approximate: list[Path],
) -> float:
    """Worst per-dimension stretch of one approximate answer.

    For each dimension, the best approximate cost is divided by the
    exact single-dimension optimum (from Dijkstra); the maximum over
    dimensions is the query's stretch.  A stretch of 1 means the
    approximation contains every dimension's true optimum.
    """
    if not approximate:
        raise QueryError("cannot measure the stretch of an empty answer")
    stretch = 1.0
    for dim_index in range(graph.dim):
        optimum = shortest_costs(graph, query.source, dim_index).get(query.target)
        if optimum is None or optimum <= 0:
            continue
        best = min(path.cost[dim_index] for path in approximate)
        stretch = max(stretch, best / optimum)
    return stretch


def stretch_vs_height(
    graph: MultiCostGraph,
    base_params: BackboneParams,
    queries: list[Query],
    *,
    p_values: tuple[float, ...] = (0.3, 0.15, 0.08, 0.04),
) -> dict[int, float]:
    """Mean query stretch per index height L.

    Smaller ``p`` values yield taller indexes (more levels, more
    summarization): the returned map ``L -> mean stretch`` traces the
    empirical growth that the paper's O((F_val)^L) bound caps.  Heights
    reached by several ``p`` values keep the last measurement.
    """
    results: dict[int, list[float]] = {}
    for p in p_values:
        index = build_backbone_index(graph, replace(base_params, p=p))
        stretches = []
        for query in queries:
            paths = index.query(query.source, query.target)
            if paths:
                stretches.append(query_stretch(graph, query, paths))
        if stretches:
            results.setdefault(index.height, []).extend(stretches)
    return {height: mean(values) for height, values in sorted(results.items())}
