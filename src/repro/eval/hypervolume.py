"""Hypervolume indicator for skyline path sets.

A standard Pareto-front quality measure complementing the paper's RAC
and goodness: the volume of cost space dominated by a path set, up to a
reference point.  For minimization, a set with larger hypervolume
covers the trade-off space better.  The *hypervolume ratio* of an
approximate set against the exact set quantifies how much of the true
frontier's coverage survives the approximation — a stricter, direction-
sensitive alternative to goodness.

The implementation uses the classic dimension-sweep recursion (exact,
exponential in d, fine for the d <= 5 and |P| <= a few hundred regime
of skyline path queries).
"""

from __future__ import annotations

import math

from collections.abc import Sequence

from repro.errors import QueryError
from repro.paths.dominance import CostVector, skyline_of
from repro.paths.path import Path


def hypervolume(
    costs: Sequence[Sequence[float]], reference: Sequence[float]
) -> float:
    """Hypervolume dominated by ``costs`` up to ``reference``.

    Every cost must be component-wise <= the reference point (points
    beyond it contribute nothing and are clipped away).  Returns 0 for
    an empty set.
    """
    reference = tuple(float(r) for r in reference)
    cleaned = []
    for cost in costs:
        if len(cost) != len(reference):
            raise QueryError(
                f"cost {tuple(cost)} does not match reference dimension "
                f"{len(reference)}"
            )
        if all(c <= r for c, r in zip(cost, reference)):
            cleaned.append(tuple(float(c) for c in cost))
    frontier = skyline_of(cleaned)
    if not frontier:
        return 0.0
    value = _sweep(frontier, reference)
    # The dominated region is contained in the box spanned by the
    # per-dimension minima and the reference; rounding inside the
    # sweep's slab products can push the sum a few ulps past that box
    # (breaking value <= volume(box) and ratios <= 1), so clamp to it.
    bound = 1.0
    for d in range(len(reference)):
        bound *= reference[d] - min(cost[d] for cost in frontier)
    return max(0.0, min(value, bound))


def _sweep(frontier: list[CostVector], reference: tuple[float, ...]) -> float:
    """Dimension-sweep recursion over the last dimension."""
    if not frontier:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(cost[0] for cost in frontier)
    # sweep the last dimension from best (smallest) to worst
    ordered = sorted(frontier, key=lambda cost: cost[-1])
    # fsum keeps each level correctly rounded: naive accumulation can
    # push the total past the enclosing box (e.g. 3595.2 + 4.8 > 3600),
    # breaking the value <= box-volume invariant and ratios <= 1.
    slabs: list[float] = []
    previous_level = None
    active: list[CostVector] = []
    for index, cost in enumerate(ordered):
        level = cost[-1]
        if previous_level is not None and level > previous_level:
            slab = _sweep(
                skyline_of([c[:-1] for c in active]), reference[:-1]
            )
            slabs.append(slab * (level - previous_level))
        active.append(cost)
        previous_level = level if previous_level is None else max(
            previous_level, level
        )
    slab = _sweep(skyline_of([c[:-1] for c in active]), reference[:-1])
    slabs.append(slab * (reference[-1] - previous_level))
    return math.fsum(slabs)


def reference_point(
    *path_sets: Sequence[Path], margin: float = 1.05
) -> CostVector:
    """A shared reference point: the per-dimension maximum over all
    sets, inflated by ``margin`` so every point contributes volume."""
    costs = [path.cost for paths in path_sets for path in paths]
    if not costs:
        raise QueryError("cannot build a reference point from empty sets")
    dim = len(costs[0])
    return tuple(
        margin * max(cost[i] for cost in costs) for i in range(dim)
    )


def hypervolume_ratio(
    approximate: Sequence[Path], exact: Sequence[Path]
) -> float:
    """HV(approximate) / HV(exact) under a shared reference point.

    1.0 means the approximation covers the trade-off space as well as
    the exact frontier; values are capped below by 0.  (The ratio can
    marginally exceed 1 only through float noise — approximate paths
    are real paths, so their frontier cannot dominate the exact one.)
    """
    if not approximate or not exact:
        raise QueryError(
            "hypervolume_ratio needs non-empty approximate and exact sets"
        )
    reference = reference_point(approximate, exact)
    exact_volume = hypervolume([p.cost for p in exact], reference)
    if exact_volume <= 0:
        return 1.0
    approx_volume = hypervolume([p.cost for p in approximate], reference)
    return approx_volume / exact_volume


def quality_ratio(
    approximate: Sequence[Path], exact: Sequence[Path]
) -> float:
    """Degenerate-safe hypervolume retention for *online* scoring.

    :func:`hypervolume_ratio` raises on empty inputs because an offline
    evaluation comparing empty sets is a bug worth surfacing.  The
    serving layer's per-query quality checks cannot afford that: every
    degenerate shape must map to a defined retention in [0, 1]:

    * both sets empty — the approximation reproduced the (empty) exact
      answer exactly: 1.0;
    * approximate empty, exact not — total coverage loss: 0.0;
    * exact empty, approximate not — nothing to fall short of: 1.0
      (dominance consistency is the QA tripwire's job, not this
      ratio's);
    * zero-volume reference box (single point, or every point on the
      box boundary) — the box cannot discriminate: 1.0.

    The result is clamped to [0, 1]: approximate paths are real paths,
    so any excess over 1 is float noise, and online consumers compare
    the value against SLO targets where noise above 1 would mask a
    miss of a ``>= 1.0`` target.
    """
    if not approximate and not exact:
        return 1.0
    if not approximate:
        return 0.0
    if not exact:
        return 1.0
    reference = reference_point(approximate, exact)
    exact_volume = hypervolume([p.cost for p in exact], reference)
    if exact_volume <= 0:
        return 1.0
    approx_volume = hypervolume([p.cost for p in approximate], reference)
    return max(0.0, min(1.0, approx_volume / exact_volume))
