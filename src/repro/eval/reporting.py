"""Plain-text table and series formatting for benchmark output.

Every benchmark prints the same rows/series its paper artifact shows;
these helpers keep that output aligned and copy-paste friendly.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))
            else:
                widths.append(len(value))

    def line(values: Sequence[str]) -> str:
        padded = [
            value.ljust(widths[index]) for index, value in enumerate(values)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(list(headers)))
    out.append(separator)
    for row in cells:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], *, unit: str = ""
) -> str:
    """Render one figure series as ``name: x=y`` pairs."""
    pairs = ", ".join(f"{x}={_fmt(y)}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def fmt_seconds(seconds: float) -> str:
    """Human-scaled duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60:.1f}min"


def fmt_bytes(count: int | float) -> str:
    """Human-scaled byte count."""
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GB"
