"""Query-workload generation.

The paper evaluates with random (source, target) pairs, and for the
scalability study (Section 6.2.4) it *stratifies* queries by path hop —
the average length of the per-dimension shortest paths — into buckets
(< 50 hops, 50-100, > 100) so different graphs see comparable work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.search.dijkstra import path_hops


@dataclass(frozen=True)
class Query:
    """One skyline path query."""

    source: int
    target: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.source, self.target)


def random_queries(
    graph: MultiCostGraph,
    count: int,
    *,
    seed: int | None = None,
    min_hops: int = 1,
) -> list[Query]:
    """Uniformly random connected query pairs.

    ``min_hops`` filters out degenerate pairs by BFS hop distance; pairs
    in different components are rejected and redrawn.
    """
    nodes = sorted(graph.nodes())
    if len(nodes) < 2:
        raise QueryError("need at least two nodes to generate queries")
    rng = np.random.default_rng(seed)
    queries: list[Query] = []
    attempts = 0
    max_attempts = 200 * count + 1000
    while len(queries) < count:
        attempts += 1
        if attempts > max_attempts:
            raise QueryError(
                f"could not find {count} connected query pairs with "
                f"min_hops={min_hops} (graph too small or disconnected)"
            )
        source, target = (
            nodes[int(rng.integers(len(nodes)))],
            nodes[int(rng.integers(len(nodes)))],
        )
        if source == target:
            continue
        hops = _bfs_hops(graph, source, target)
        if hops is None or hops < min_hops:
            continue
        queries.append(Query(source, target))
    return queries


def hop_stratified_queries(
    graph: MultiCostGraph,
    buckets: list[tuple[int, float, float]],
    *,
    seed: int | None = None,
    max_attempts_per_bucket: int = 4000,
) -> list[Query]:
    """Queries stratified by the paper's path-hop statistic.

    ``buckets`` is a list of ``(count, low, high)`` triples: draw
    ``count`` queries whose path hop lies in ``[low, high)``.  Use
    ``float('inf')`` for an open upper end.  Mirrors Section 6.2.4's
    "two queries < 50 hops, three 50-100, five > 100" recipe.
    """
    nodes = sorted(graph.nodes())
    if len(nodes) < 2:
        raise QueryError("need at least two nodes to generate queries")
    rng = np.random.default_rng(seed)
    queries: list[Query] = []
    for count, low, high in buckets:
        found = 0
        attempts = 0
        while found < count:
            attempts += 1
            if attempts > max_attempts_per_bucket:
                raise QueryError(
                    f"could not fill hop bucket [{low}, {high}) with "
                    f"{count} queries after {attempts - 1} attempts"
                )
            source, target = (
                nodes[int(rng.integers(len(nodes)))],
                nodes[int(rng.integers(len(nodes)))],
            )
            if source == target:
                continue
            # Cheap BFS pre-filter before the exact path-hop statistic.
            rough = _bfs_hops(graph, source, target)
            if rough is None or rough < low / 2 or rough > (
                high * 2 if high != float("inf") else float("inf")
            ):
                continue
            hops = path_hops(graph, source, target)
            if low <= hops < high:
                queries.append(Query(source, target))
                found += 1
    return queries


def _bfs_hops(graph: MultiCostGraph, source: int, target: int) -> int | None:
    """Unweighted hop distance, or None when disconnected."""
    if source == target:
        return 0
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                if neighbor == target:
                    return dist[neighbor]
                queue.append(neighbor)
    return None
