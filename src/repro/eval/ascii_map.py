"""ASCII rendering of road networks and paths (Figure 16-style output).

The paper's case study visualizes exact and approximate skyline path
sets on the New York network.  In a terminal-only environment the same
comparison is rendered as character maps: network nodes as dots, each
path collection overdrawn with its own marker.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path


def render_network(
    graph: MultiCostGraph,
    overlays: Sequence[tuple[str, Iterable[Path]]] = (),
    *,
    width: int = 72,
    height: int = 24,
) -> str:
    """Render the network and path overlays as an ASCII map.

    Parameters
    ----------
    graph:
        A network whose nodes carry coordinates.
    overlays:
        ``(marker, paths)`` pairs drawn in order; later overlays win
        contested cells.  Markers must be single characters.
    width, height:
        Canvas size in characters.
    """
    if width < 2 or height < 2:
        raise QueryError("the canvas must be at least 2x2 characters")
    coords = {
        node: graph.coord(node)
        for node in graph.nodes()
        if graph.coord(node) is not None
    }
    if not coords:
        raise QueryError("cannot render a network without coordinates")
    xs = [c[0] for c in coords.values()]
    ys = [c[1] for c in coords.values()]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)

    def cell(node: int) -> tuple[int, int]:
        x, y = coords[node]
        col = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
        row = int((y - y0) / (y1 - y0 + 1e-12) * (height - 1))
        return row, col

    canvas = [[" "] * width for _ in range(height)]
    for node in coords:
        row, col = cell(node)
        canvas[row][col] = "."
    for marker, paths in overlays:
        if len(marker) != 1:
            raise QueryError(f"overlay marker must be one character, got {marker!r}")
        for path in paths:
            for node in path.nodes:
                if node in coords:
                    row, col = cell(node)
                    canvas[row][col] = marker
    return "\n".join("".join(row) for row in canvas)


def path_overlap(paths: Sequence[Path], *, sample_cap: int = 40) -> float:
    """Mean pairwise Jaccard overlap of the paths' node sets.

    The paper's Figure 16 observation in one number: exact skyline
    bundles score near 1 (paths share almost all nodes); genuinely
    diverse answers score lower.  Single-path collections score 1.
    """
    sets = [set(path.nodes) for path in paths[:sample_cap]]
    if len(sets) < 2:
        return 1.0
    total, pairs = 0.0, 0
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            total += len(sets[i] & sets[j]) / len(sets[i] | sets[j])
            pairs += 1
    return total / pairs
