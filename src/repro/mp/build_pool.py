"""Cluster-parallel label construction workers.

Index construction spends a large share of its time in
:func:`repro.core.labels.run_label_task` — one independent bundle of
one-to-all searches per condensed cluster.  Tasks are pure in their
arguments (the costed removed edges are captured before the level
graph mutates) and clusters are node-disjoint, so a condensing round
can hand its whole task list to a pool of forked workers and merge the
results **in task submission order** — which reproduces the inline
serial construction path for path, label for label.

The pool is deliberately simpler than the serving-side
:mod:`repro.mp.worker` machinery: tasks are small and self-contained,
so plain ``multiprocessing.Pool`` pickling beats shared-memory
plumbing here.  Fork start is preferred (workers inherit nothing they
need beyond the code), falling back to the platform default where fork
is unavailable.
"""

from __future__ import annotations

import multiprocessing

from repro.core.labels import LabelTask, run_label_task
from repro.errors import BuildError
from repro.paths.path import Path

# Engine the forked workers run tasks with; set once per pool via the
# initializer so task payloads stay lean.
_WORKER_ENGINE = "python"

Row = tuple[int, int, Path]


def _init_worker(engine: str) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _run_task(task: LabelTask) -> list[Row]:
    return run_label_task(task, engine=_WORKER_ENGINE)


class BuildLabelPool:
    """A process pool executing :class:`LabelTask` batches.

    ``run`` returns one row list per task, ordered like the input —
    deterministic merge by cluster id regardless of which worker
    finished first.  Use as a context manager (or call :meth:`close`)
    so worker processes never outlive the build.
    """

    def __init__(self, workers: int, *, engine: str = "python") -> None:
        if workers < 2:
            raise BuildError(
                f"a build pool needs at least 2 workers, got {workers}"
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            ctx = multiprocessing.get_context()
        self.workers = workers
        self.engine = engine
        self._pool = ctx.Pool(
            workers, initializer=_init_worker, initargs=(engine,)
        )

    def run(self, tasks: list[LabelTask]) -> list[list[Row]]:
        """Execute tasks on the pool; results in submission order."""
        if not tasks:
            return []
        if len(tasks) == 1:
            # IPC for a lone task costs more than running it here.
            return [run_label_task(tasks[0], engine=self.engine)]
        return self._pool.map(_run_task, tasks, chunksize=1)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "BuildLabelPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
