"""Batch-throughput measurement for multi-process serving.

Used by ``repro bench --mp-workers`` and
``benchmarks/bench_mp_throughput.py`` so the CLI and the committed
benchmark series measure exactly the same thing: wall-clock batch
throughput through :class:`~repro.mp.dispatcher.MPBatchServer` at a
given cohort size, plus an answer signature for cross-variant equality
checks.

Throughput numbers are only meaningful relative to the machine they
ran on — in particular, a single-core container serializes the cohort
and reports the fork/IPC overhead rather than any parallel speedup.
``cpu_count`` is therefore part of every measurement document.
"""

from __future__ import annotations

import os
import time

from repro.service.batch import execute_batch
from repro.service.engine import SkylineQueryEngine


def answer_signature(responses) -> list:
    """A comparable digest of a batch's answers.

    Per query: the (source, target) pair plus the multiset of
    (cost vector, node sequence) answer keys — the same identity the
    qa harness enforces, so equal signatures mean bit-identical
    answer sets.
    """
    digest = []
    for response in responses:
        if response is None:
            digest.append(None)
            continue
        digest.append((
            response.source,
            response.target,
            sorted(
                (tuple(path.cost), tuple(path.nodes))
                for path in response.paths
            ),
        ))
    return digest


def measure_single_process(
    graph,
    pairs,
    *,
    index=None,
    params=None,
    rounds: int = 3,
    mode: str = "auto",
    time_budget: float | None = None,
) -> dict:
    """Baseline: the same batch through one in-process flat engine."""
    engine = SkylineQueryEngine(
        graph, index=index, params=params, cache_size=0, engine="flat"
    )
    engine.warm()
    seconds = []
    signature = None
    for _ in range(rounds):
        started = time.perf_counter()
        outcome = execute_batch(
            engine, pairs, max_workers=1, mode=mode,
            time_budget=time_budget, use_cache=False,
        )
        seconds.append(time.perf_counter() - started)
        signature = answer_signature(outcome.responses)
    best = min(seconds)
    return {
        "variant": "single",
        "workers": 1,
        "queries": len(pairs),
        "rounds": rounds,
        "best_seconds": best,
        "mean_seconds": sum(seconds) / len(seconds),
        "qps": len(pairs) / best if best > 0 else 0.0,
        "signature": signature,
        "cpu_count": os.cpu_count(),
    }


def measure_mp(
    graph,
    pairs,
    *,
    index=None,
    params=None,
    workers: int = 2,
    rounds: int = 3,
    mode: str = "auto",
    time_budget: float | None = None,
) -> dict:
    """The same batch through an mp cohort of the given size.

    The first (untimed) submit absorbs cohort warm-up; the timed
    rounds then measure steady-state dispatch throughput.  Worker
    errors raise — a benchmark over a failing cohort measures nothing.
    """
    from repro.mp.dispatcher import MPBatchServer

    # cache_size=0 matches the uncached single-process baseline: every
    # round measures real searches, not worker LRU hits.
    with MPBatchServer(
        graph, index=index, params=params, workers=workers, cache_size=0
    ) as server:
        warmup = server.submit(pairs, mode=mode, time_budget=time_budget,
                               fail_fast=True)
        seconds = []
        signature = answer_signature(warmup.responses)
        for _ in range(rounds):
            started = time.perf_counter()
            outcome = server.submit(
                pairs, mode=mode, time_budget=time_budget, fail_fast=True
            )
            seconds.append(time.perf_counter() - started)
            signature = answer_signature(outcome.responses)
        segment_bytes = server.metrics_snapshot()["mp"]["segment_bytes"]
    best = min(seconds)
    return {
        "variant": "mp",
        "workers": workers,
        "queries": len(pairs),
        "rounds": rounds,
        "best_seconds": best,
        "mean_seconds": sum(seconds) / len(seconds),
        "qps": len(pairs) / best if best > 0 else 0.0,
        "signature": signature,
        "segment_bytes": segment_bytes,
        "cpu_count": os.cpu_count(),
    }
