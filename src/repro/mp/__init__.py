"""Multi-process serving over zero-copy shared CSR snapshots.

One process cannot push the flat kernels past the GIL; this package
fans serving out over a pool of worker processes that all read the
*same* generation-stamped :class:`~repro.accel.csr.CSRSnapshot` —
published once into ``multiprocessing.shared_memory`` (or mmap'd from
the ``csrraw`` section of an RBIX store file) and attached zero-copy by
every worker:

* :mod:`repro.mp.shm` — publishing snapshots into named shared-memory
  segments and attaching back as read-only array views.
* :mod:`repro.mp.worker` — the worker process: attach, build a local
  :class:`~repro.service.engine.SkylineQueryEngine` around the shared
  buffers, serve query groups, ship metrics dumps.
* :mod:`repro.mp.dispatcher` — :class:`MPBatchServer`: source-grouped
  sharding, bounded-inflight admission control with backpressure,
  per-worker metrics rolled up into the parent registry, and the
  generation-swap protocol (maintenance publishes a new shared
  snapshot; batches route to the new cohort at batch boundaries; old
  segments are refcounted and unlinked once drained).
* :mod:`repro.mp.build_pool` — :class:`BuildLabelPool`: a forked
  worker pool that fans independent clusters' label construction out
  during index builds (``build_backbone_index(build_workers=N)``),
  merging results in cluster order so the built index is identical to
  a single-process build.

See ``docs/multiprocess.md`` for the architecture and tuning notes.
"""

from repro.mp.build_pool import BuildLabelPool
from repro.mp.dispatcher import (
    MPBatchResult,
    MPBatchServer,
    MPQueryError,
    MPServingError,
)
from repro.mp.shm import SharedCSR, map_store_csr

__all__ = [
    "BuildLabelPool",
    "MPBatchResult",
    "MPBatchServer",
    "MPQueryError",
    "MPServingError",
    "SharedCSR",
    "map_store_csr",
]
