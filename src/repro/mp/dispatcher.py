"""The multi-process batch dispatcher.

:class:`MPBatchServer` owns a warmed parent engine and a *cohort* of
forked worker processes that all serve from the same published
:class:`~repro.mp.shm.SharedCSR` snapshot.  A batch submitted to the
server is deduplicated, source-grouped (one shared grow-S per source,
exactly like :func:`repro.service.batch.execute_batch`), sharded over
the cohort least-loaded-first, and reassembled positionally.

Three protocols keep it honest:

**Admission control.**  At most ``max_inflight`` tasks are outstanding
across the cohort; when the window is full the dispatcher stops
sending and drains results instead, so a slow cohort backpressures the
submitter rather than growing unbounded queues.

**Generation swap.**  When the server wraps a
:class:`~repro.core.maintenance.MaintainableIndex`, structural updates
mark a pending generation.  At the next batch boundary the dispatcher
re-warms the parent engine, publishes a fresh shared segment, forks a
new cohort against it, and retires the old one — workers therefore
never observe a half-updated snapshot (no torn reads), and every
response is stamped with the generation it was computed against.  Old
segments are unlinked only once their cohort has fully drained.

**Metrics rollup.**  Every worker keeps a private
:class:`~repro.service.metrics.MetricsRegistry`; on flush, stop, and
cohort retirement the dispatcher merges their
:meth:`~repro.service.metrics.MetricsRegistry.dump_state` documents
into the parent registry, so one scrape shows cohort-wide counters and
traffic-weighted latency percentiles.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

from repro.errors import QueryError
from repro.mp.shm import MPServingError, SharedCSR
from repro.mp.worker import (
    MSG_ERROR,
    MSG_FLUSH,
    MSG_METRICS,
    MSG_RESULT,
    MSG_STOP,
    MSG_TASK,
    WorkerConfig,
    worker_main,
)
from repro.obs.context import TraceContext, dump_process_spans, merge_dump_into
from repro.obs.events import EventLog, resolve_event_log
from repro.obs.tracer import Tracer, resolve_tracer
from repro.service.batch import _normalize
from repro.service.engine import QueryResponse, SkylineQueryEngine
from repro.service.metrics import MetricsRegistry

QueryPair = tuple[int, int]

# How long one result-queue poll waits before re-checking worker
# liveness.  Short enough that a worker crash surfaces promptly, long
# enough not to spin.
_POLL_SECONDS = 0.25

# A retiring worker gets this long to ship final metrics and exit
# before the dispatcher gives up on it.
_RETIRE_SECONDS = 10.0


class MPQueryError(MPServingError):
    """One dispatched task failed inside a worker."""

    def __init__(
        self, message: str, *, worker_id: int, source: int, targets: list[int]
    ) -> None:
        super().__init__(
            f"worker {worker_id} failed source={source} "
            f"targets={targets}: {message}"
        )
        self.worker_id = worker_id
        self.source = source
        self.targets = targets
        self.detail = message


@dataclass
class MPBatchResult:
    """Ordered responses plus dispatch accounting.

    ``responses`` aligns positionally with the submitted queries;
    positions whose task failed hold ``None`` and the failure appears
    in ``errors`` (empty on a clean batch).
    """

    responses: list[QueryResponse | None] = field(default_factory=list)
    errors: list[MPQueryError] = field(default_factory=list)
    unique_queries: int = 0
    duplicates_folded: int = 0
    source_groups: int = 0
    tasks: int = 0
    workers: int = 0
    generation: int = 0
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.responses) / self.elapsed_seconds


def _prefault(snapshot) -> None:
    """Materialize a snapshot's python-list mirrors in the parent.

    The flat kernels read these mirrors, so building them *before* the
    fork puts them in pages every worker inherits copy-on-write —
    otherwise each worker would rebuild its own copy on first query and
    the zero-copy story would only cover the numpy arrays.
    """
    snapshot.adjacency_lists()
    snapshot.weight_lists()
    snapshot.cost_tuples()
    if snapshot.directed:
        snapshot.adjacency_lists(reverse=True)
        snapshot.weight_lists(reverse=True)


class _Cohort:
    """One generation's worker processes plus their shared segment."""

    def __init__(
        self,
        generation: int,
        shared: SharedCSR,
        context,
        result_queue,
        engine: SkylineQueryEngine,
        config: WorkerConfig,
        workers: int,
    ) -> None:
        self.generation = generation
        self.shared = shared
        self.task_queues = []
        self.processes = []
        self.alive = set(range(workers))
        for worker_id in range(workers):
            task_queue = context.Queue()
            process = context.Process(
                target=worker_main,
                args=(
                    worker_id,
                    generation,
                    task_queue,
                    result_queue,
                    engine.graph,
                    engine.index,
                    engine._original_landmarks,
                    shared,
                    config,
                ),
                daemon=True,
                name=f"repro-mp-g{generation}-w{worker_id}",
            )
            process.start()
            self.task_queues.append(task_queue)
            self.processes.append(process)

    def check_liveness(self) -> set[int]:
        """Drop (and return) workers that died since the last check."""
        died = {
            worker_id
            for worker_id in self.alive
            if not self.processes[worker_id].is_alive()
        }
        self.alive -= died
        return died


class MPBatchServer:
    """A pool of worker processes serving batches over one shared CSR.

    Parameters
    ----------
    graph / index / maintainer / params:
        The serving context, exactly as :class:`SkylineQueryEngine`
        takes it.  With a ``maintainer`` the server also follows its
        update stream and swaps worker cohorts at batch boundaries.
    workers:
        Cohort size.  One worker degenerates to single-process serving
        through the same code path (useful as a baseline).
    max_inflight:
        Admission window: the most tasks outstanding across the cohort
        at once.  Defaults to ``4 * workers``.
    cache_size / exact_node_threshold / default_time_budget:
        Forwarded to every worker engine (and the parent engine).
    corridor_radius / quality_target:
        Corridor-tier knobs (see :class:`SkylineQueryEngine`),
        forwarded to every worker engine so ``mode="corridor"`` and
        planner escalation behave identically in- and out-of-process.
    search_engine:
        Search-kernel tier every worker serves with over the shared
        snapshot: ``"flat"`` (default) or ``"batch"`` (bucket-mode
        vectorized kernel; answer-set-equal, counters differ).  Also
        applied to the parent planning engine so in-process fallbacks
        answer identically.
    metrics:
        The parent registry worker metrics roll up into; created on
        demand.
    """

    def __init__(
        self,
        graph=None,
        *,
        index=None,
        maintainer=None,
        params=None,
        workers: int = 2,
        max_inflight: int | None = None,
        cache_size: int = 1024,
        exact_node_threshold: int = 400,
        default_time_budget: float | None = None,
        corridor_radius: int = 2,
        quality_target: float | None = None,
        search_engine: str = "flat",
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        if workers < 1:
            raise QueryError("workers must be at least 1")
        if search_engine not in ("flat", "batch"):
            raise QueryError(
                f"unknown search engine {search_engine!r} "
                "(mp workers serve 'flat' or 'batch')"
            )
        if max_inflight is not None and max_inflight < 1:
            raise QueryError("max_inflight must be at least 1")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX
            raise MPServingError(
                "multi-process serving needs the fork start method "
                "(POSIX only)"
            ) from error
        self._workers = workers
        self._max_inflight = max_inflight or 4 * workers
        self._config = WorkerConfig(
            cache_size=cache_size,
            exact_node_threshold=exact_node_threshold,
            default_time_budget=default_time_budget,
            corridor_radius=corridor_radius,
            quality_target=quality_target,
            search_engine=search_engine,
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._engine = SkylineQueryEngine(
            graph,
            index=index,
            maintainer=maintainer,
            params=params,
            cache_size=0,  # the parent engine only plans; workers serve
            exact_node_threshold=exact_node_threshold,
            default_time_budget=default_time_budget,
            corridor_radius=corridor_radius,
            quality_target=quality_target,
            engine=search_engine,
        )
        self._maintainer = maintainer
        self._pending_generation = self._engine.generation
        if maintainer is not None:
            maintainer.subscribe(self._note_generation)
        self._result_queue = self._context.Queue()
        self._cohort: _Cohort | None = None
        self._dispatch_lock = threading.Lock()
        self._stopped = False
        # Observability: tracer/events default to the process-wide
        # singletons (disabled no-ops unless the caller installed
        # enabled ones); worker span dumps fold in keyed by
        # (pid, epoch_wall); _inflight is a lock-free gauge for
        # runtime_status.
        self._tracer = tracer
        self._events = events
        self._trace_dumps: dict = {}
        self._inflight = 0
        self._admission_stalls = 0
        self._live = None
        # The last cohort's worker table survives retirement (alive
        # stamped False) so a post-run status document still says which
        # pids served.
        self._last_worker_processes: list[dict] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def engine(self) -> SkylineQueryEngine:
        """The parent engine (planning, verification baselines)."""
        return self._engine

    @property
    def generation(self) -> int:
        """The generation the current cohort serves."""
        cohort = self._cohort
        return cohort.generation if cohort else self._engine.generation

    @property
    def workers(self) -> int:
        return self._workers

    def start(self) -> "MPBatchServer":
        """Warm the parent, publish the snapshot, fork the cohort."""
        with self._dispatch_lock:
            if self._cohort is None and not self._stopped:
                self._spawn_cohort()
        return self

    def __enter__(self) -> "MPBatchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        """Retire the cohort and release the shared segment."""
        with self._dispatch_lock:
            self._stopped = True
            if self._cohort is not None:
                self._retire_cohort(self._cohort)
                self._cohort = None

    def _note_generation(self, generation: int) -> None:
        # Maintainer callback: just record it.  The actual swap happens
        # at the next batch boundary under the dispatch lock, so a
        # structural update never races an in-flight batch.
        self._pending_generation = generation

    def _spawn_cohort(self) -> None:
        started = time.perf_counter()
        self._engine.warm()
        snapshot = self._engine._original_snapshot()
        shared = SharedCSR.publish(snapshot)
        # Pre-fault the shared snapshot's list mirrors and the index's
        # G_L snapshot in the parent so every forked worker inherits
        # them copy-on-write instead of rebuilding per process.
        _prefault(shared.snapshot())
        _prefault(self._engine.ensure_index().csr_top())
        # Whether workers trace is decided here, per cohort: forked
        # workers cannot be handed a live tracer object, only the flag.
        config = replace(
            self._config, trace=resolve_tracer(self._tracer).enabled
        )
        self._cohort = _Cohort(
            self._engine.generation,
            shared,
            self._context,
            self._result_queue,
            self._engine,
            config,
            self._workers,
        )
        elapsed = time.perf_counter() - started
        self.metrics.increment("mp.cohorts")
        self.metrics.observe("mp.cohort_spawn_seconds", elapsed)
        events = resolve_event_log(self._events)
        events.emit(
            "mp.cohort.spawn",
            generation=self._cohort.generation,
            workers=self._workers,
            segment_bytes=shared.nbytes,
            elapsed_seconds=elapsed,
        )
        for worker_id, process in enumerate(self._cohort.processes):
            events.emit(
                "mp.worker.spawn",
                worker=worker_id,
                pid=process.pid,
                generation=self._cohort.generation,
            )

    def _retire_cohort(self, cohort: _Cohort) -> None:
        """Drain, stop, and merge one cohort; unlink its segment."""
        events = resolve_event_log(self._events)
        for worker_id in cohort.alive:
            cohort.task_queues[worker_id].put((MSG_STOP,))
        awaiting = set(cohort.alive)
        deadline = time.monotonic() + _RETIRE_SECONDS
        while awaiting and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                awaiting -= cohort.check_liveness()
                continue
            if message[0] == MSG_METRICS:
                self.metrics.merge_state(message[3])
                awaiting.discard(message[1])
            # Stray result/error messages from an interrupted batch are
            # dropped here (their batch has already been reported) —
            # but any span dump they carry is still worth folding in.
            self._merge_message_spans(message)
        for worker_id, process in enumerate(cohort.processes):
            process.join(timeout=_POLL_SECONDS)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=_POLL_SECONDS)
                events.emit(
                    "mp.worker.death",
                    worker=worker_id,
                    pid=process.pid,
                    generation=cohort.generation,
                    reason="terminated at retirement",
                )
            else:
                events.emit(
                    "mp.worker.exit",
                    worker=worker_id,
                    pid=process.pid,
                    exitcode=process.exitcode,
                    generation=cohort.generation,
                )
        # The cohort has drained: this process drops its mapping and the
        # segment name is unlinked, so the kernel frees the pages as the
        # last worker mapping disappears.
        cohort.shared.close()
        cohort.shared.unlink()
        self._last_worker_processes = [
            {
                "worker": worker_id,
                "pid": process.pid,
                "alive": process.is_alive(),
                "generation": cohort.generation,
            }
            for worker_id, process in enumerate(cohort.processes)
        ]
        self.metrics.increment("mp.cohorts_retired")
        events.emit(
            "mp.cohort.retire",
            generation=cohort.generation,
            workers=len(cohort.processes),
            metrics_unmerged=len(awaiting),
        )

    def _merge_message_spans(self, message) -> None:
        """Fold the span dump riding on a worker reply, if any."""
        if len(message) > 4 and isinstance(message[4], dict):
            merge_dump_into(self._trace_dumps, message[4])

    def _maybe_swap(self) -> None:
        cohort = self._cohort
        if cohort is None:
            if self._stopped:
                raise MPServingError("server is stopped")
            self._spawn_cohort()
            return
        if self._pending_generation > cohort.generation:
            # Batch boundary: publish the post-maintenance snapshot and
            # recycle the cohort onto it.
            events = resolve_event_log(self._events)
            from_generation = cohort.generation
            events.emit(
                "mp.generation_swap.begin",
                from_generation=from_generation,
                to_generation=self._pending_generation,
            )
            started = time.perf_counter()
            self._retire_cohort(cohort)
            self._cohort = None
            self._spawn_cohort()
            self.metrics.increment("mp.generation_swaps")
            events.emit(
                "mp.generation_swap.end",
                from_generation=from_generation,
                generation=self._cohort.generation,
                elapsed_seconds=time.perf_counter() - started,
            )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def submit(
        self,
        queries,
        *,
        mode: str = "auto",
        time_budget: float | None = None,
        fail_fast: bool = False,
    ) -> MPBatchResult:
        """Serve a batch across the cohort; responses in input order.

        With ``fail_fast=True`` the first worker error aborts the batch
        (pending tasks are withheld, in-flight ones drained) and raises
        :class:`MPQueryError`; otherwise failures land in
        ``result.errors`` and their positions hold ``None``.
        """
        started = time.perf_counter()
        with self._dispatch_lock:
            self._maybe_swap()
            cohort = self._cohort
            assert cohort is not None
            if not cohort.alive:
                raise MPServingError("no live workers in the cohort")

            pairs = [_normalize(query) for query in queries]
            positions: dict[QueryPair, list[int]] = {}
            for position, pair in enumerate(pairs):
                positions.setdefault(pair, []).append(position)

            # Shared-source grouping, like execute_batch: approx plans
            # merge into one grow-S per source, the rest go alone.
            by_source: dict[int, list[int]] = {}
            singles: list[QueryPair] = []
            for source, target in positions:
                plan = self._engine.plan(
                    source, target, mode, time_budget=time_budget
                )
                if plan == "approx":
                    by_source.setdefault(source, []).append(target)
                else:
                    singles.append((source, target))
            tasks: list[tuple[int, list[int]]] = [
                (source, [target]) for source, target in singles
            ]
            groups = 0
            for source, targets in by_source.items():
                tasks.append((source, targets))
                if len(targets) > 1:
                    groups += 1

            tracer = resolve_tracer(self._tracer)
            with tracer.span(
                "mp.batch",
                queries=len(pairs),
                unique=len(positions),
                tasks=len(tasks),
                generation=cohort.generation,
                workers=len(cohort.alive),
            ) as batch_span:
                answers, errors = self._dispatch(
                    cohort, tasks, mode, time_budget, fail_fast,
                    batch_span=batch_span,
                )

            result = MPBatchResult(
                responses=[answers.get(pair) for pair in pairs],
                errors=errors,
                unique_queries=len(positions),
                duplicates_folded=len(pairs) - len(positions),
                source_groups=groups,
                tasks=len(tasks),
                workers=len(cohort.alive),
                generation=cohort.generation,
                elapsed_seconds=time.perf_counter() - started,
            )
            self.metrics.increment("mp.batches")
            self.metrics.increment("mp.queries", len(pairs))
            self.metrics.increment("mp.tasks", len(tasks))
            self.metrics.increment("mp.errors", len(errors))
            self.metrics.observe("mp.batch_seconds", result.elapsed_seconds)
            live = self._live
            if live is not None:
                live.observe("mp.batch_seconds", result.elapsed_seconds)
                live.observe("mp.batch_queries", float(len(pairs)))
            if fail_fast and errors:
                raise errors[0]
            return result

    def _dispatch(
        self,
        cohort: _Cohort,
        tasks: list[tuple[int, list[int]]],
        mode: str,
        time_budget: float | None,
        fail_fast: bool,
        batch_span=None,
    ):
        """Send tasks under the admission window and collect replies."""
        tracer = resolve_tracer(self._tracer)
        events = resolve_event_log(self._events)
        pending = deque(enumerate(tasks))
        outstanding: dict[int, tuple[int, int, list[int]]] = {}
        dispatch_spans: dict[int, object] = {}
        loads = {worker_id: 0 for worker_id in cohort.alive}
        answers: dict[QueryPair, QueryResponse] = {}
        errors: list[MPQueryError] = []
        aborted = False
        stalls = 0

        def finish_span(task_id, **attrs):
            span = dispatch_spans.pop(task_id, None)
            if span is not None:
                span.set(**attrs)
                span.finish()

        def record_error(worker_id, task_id, detail):
            nonlocal aborted
            _w, source, targets = outstanding.pop(task_id)
            finish_span(task_id, status="error", detail=detail)
            errors.append(
                MPQueryError(
                    detail, worker_id=worker_id, source=source,
                    targets=list(targets),
                )
            )
            if fail_fast:
                aborted = True

        while pending or outstanding:
            # Admission: fill the window, least-loaded worker first.
            while (
                pending
                and not aborted
                and len(outstanding) < self._max_inflight
                and loads
            ):
                task_id, (source, targets) = pending.popleft()
                worker_id = min(loads, key=lambda w: (loads[w], w))
                loads[worker_id] += len(targets)
                outstanding[task_id] = (worker_id, source, targets)
                ctx = None
                if tracer.enabled:
                    # A dispatch span lives from queue-send to reply;
                    # its extent interleaves with other dispatches on
                    # this thread, hence begin/finish, not ``with``.
                    span = tracer.span(
                        "mp.dispatch",
                        task=task_id,
                        worker=worker_id,
                        source=source,
                        n_targets=len(targets),
                    ).begin(parent=batch_span)
                    dispatch_spans[task_id] = span
                    ctx = TraceContext.for_span(tracer, span)
                cohort.task_queues[worker_id].put((
                    MSG_TASK, task_id, source, targets, mode, time_budget,
                    ctx,
                ))
            self._inflight = len(outstanding)
            if (
                pending
                and not aborted
                and loads
                and len(outstanding) >= self._max_inflight
            ):
                stalls += 1  # window full with work still waiting
            if aborted and not outstanding:
                break
            if not outstanding:
                if aborted or not loads:
                    break
                continue
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for dead in cohort.check_liveness():
                    loads.pop(dead, None)
                    exitcode = cohort.processes[dead].exitcode
                    events.emit(
                        "mp.worker.death",
                        worker=dead,
                        pid=cohort.processes[dead].pid,
                        exitcode=exitcode,
                        generation=cohort.generation,
                        reason="died mid-batch",
                    )
                    for task_id in [
                        t for t, (w, _s, _ts) in outstanding.items()
                        if w == dead
                    ]:
                        record_error(
                            dead, task_id, f"worker died (exitcode {exitcode})"
                        )
                if not loads and outstanding:  # pragma: no cover
                    raise MPServingError("every worker died mid-batch")
                continue
            self._merge_message_spans(message)
            kind = message[0]
            if kind == MSG_RESULT:
                _kind, worker_id, task_id, responses = message[:4]
                entry = outstanding.pop(task_id, None)
                if entry is None:
                    continue  # stale reply from an aborted batch
                finish_span(task_id, status="ok")
                _w, source, targets = entry
                loads[worker_id] = max(0, loads[worker_id] - len(targets))
                for target, response in zip(targets, responses):
                    answers[(source, target)] = response
            elif kind == MSG_ERROR:
                _kind, worker_id, task_id, detail = message[:4]
                if task_id in outstanding:
                    _w, _source, targets = outstanding[task_id]
                    loads[worker_id] = max(
                        0, loads[worker_id] - len(targets)
                    )
                    record_error(worker_id, task_id, detail)
            elif kind == MSG_METRICS:  # stray flush reply; merge anyway
                self.metrics.merge_state(message[3])
        self._inflight = 0
        for task_id in list(dispatch_spans):
            # Sent but never answered (aborted batch / dead worker).
            finish_span(task_id, status="abandoned")
        if stalls:
            self._admission_stalls += stalls
            self.metrics.increment("mp.admission_stalls", stalls)
            events.emit(
                "mp.admission.backpressure",
                stalls=stalls,
                max_inflight=self._max_inflight,
                tasks=len(tasks),
            )
        return answers, errors

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def flush_metrics(self) -> dict:
        """Pull every live worker's registry into the parent and
        return the merged snapshot."""
        with self._dispatch_lock:
            cohort = self._cohort
            if cohort is not None and cohort.alive:
                token = f"flush-{self.metrics.counter('mp.flushes').value}"
                for worker_id in cohort.alive:
                    cohort.task_queues[worker_id].put((MSG_FLUSH, token))
                awaiting = set(cohort.alive)
                deadline = time.monotonic() + _RETIRE_SECONDS
                while awaiting and time.monotonic() < deadline:
                    try:
                        message = self._result_queue.get(
                            timeout=_POLL_SECONDS
                        )
                    except queue_module.Empty:
                        awaiting -= cohort.check_liveness()
                        continue
                    self._merge_message_spans(message)
                    if message[0] == MSG_METRICS and message[2] == token:
                        self.metrics.merge_state(message[3])
                        awaiting.discard(message[1])
                self.metrics.increment("mp.flushes")
        return self.metrics_snapshot()

    def metrics_snapshot(self) -> dict:
        """The parent registry plus dispatcher state, as one dict.

        Worker-side instruments appear after :meth:`flush_metrics`,
        cohort retirement, or :meth:`stop` has merged them.
        """
        doc = self.metrics.snapshot()
        cohort = self._cohort
        doc["mp"] = {
            "workers": self._workers,
            "live_workers": len(cohort.alive) if cohort else 0,
            "generation": self.generation,
            "max_inflight": self._max_inflight,
            "segment_bytes": cohort.shared.nbytes if cohort else 0,
        }
        return doc

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def trace_dumps(self) -> list[dict]:
        """Every span dump collected so far, dispatcher's own first.

        One entry per process: the dispatcher's local tracer (batch and
        dispatch spans), then each worker's dump folded across all the
        task replies it shipped.  Feed the list to
        :func:`repro.obs.export.merge_process_traces` (or
        ``write_merged_trace``) for the single multi-pid Chrome trace.
        """
        tracer = resolve_tracer(self._tracer)
        dumps: list[dict] = []
        if tracer.enabled:
            dumps.append(dump_process_spans(tracer, label="dispatcher"))
        dumps.extend(self._trace_dumps.values())
        return dumps

    def runtime_status(self) -> dict:
        """Live operational state, readable without the dispatch lock.

        Values are racy by design (plain attribute reads) so a status
        thread or HTTP scrape can never block or deadlock serving; the
        shape is stable for :class:`repro.obs.live.LiveStatus`
        providers and ``repro status``.
        """
        cohort = self._cohort
        current = cohort.generation if cohort else self._engine.generation
        if cohort is not None:
            worker_processes = [
                {
                    "worker": worker_id,
                    "pid": process.pid,
                    "alive": process.is_alive(),
                    "generation": cohort.generation,
                }
                for worker_id, process in enumerate(cohort.processes)
            ]
        else:
            worker_processes = list(self._last_worker_processes)
        return {
            "workers": self._workers,
            "live_workers": len(cohort.alive) if cohort else 0,
            "generation": current,
            "pending_generation": self._pending_generation,
            "generation_lag": max(0, self._pending_generation - current),
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "admission_stalls": self._admission_stalls,
            "stopped": self._stopped,
            "segment_bytes": cohort.shared.nbytes if cohort else 0,
            "worker_processes": worker_processes,
        }

    def attach_live(self, live) -> "MPBatchServer":
        """Publish this server into a :class:`LiveStatus` document.

        Registers :meth:`runtime_status` as the ``"mp"`` source and
        starts feeding per-batch rolling windows (``mp.batch_seconds``,
        ``mp.batch_queries``).
        """
        self._live = live
        live.register("mp", self.runtime_status)
        return self
