"""Publishing CSR snapshots into shared memory and attaching back.

A :class:`SharedCSR` owns (or attaches to) one named POSIX
shared-memory segment holding a snapshot's raw array pack
(:mod:`repro.accel.blob`).  The publisher pays the one copy — arrays
into the segment — and every attacher gets read-only numpy views of
the *same* physical pages: attaching is O(header), independent of the
snapshot size, which is what keeps per-worker RSS flat.

Two attach paths exist:

* ``SharedCSR.attach(name)`` — open the segment by name (spawned
  workers, other processes).  Forked workers inherit the publisher's
  mapping and skip even this step.
* :func:`map_store_csr` — mmap the ``csrraw`` section of an RBIX store
  file; every process mapping the same file shares one page-cache copy
  with no shm segment at all.

Segment lifetime is explicit: the publisher ``unlink()``s when the
generation drains (see :class:`repro.mp.dispatcher.MPBatchServer`);
attachers only ever ``close()``.
"""

from __future__ import annotations

from multiprocessing import shared_memory

from repro.accel.csr import CSRSnapshot
from repro.errors import ReproError


class MPServingError(ReproError):
    """A multi-process serving failure (dead worker, bad segment, ...)."""


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    Before Python 3.13 every ``SharedMemory`` registers with the
    resource tracker, even attach-only handles, so an attaching process
    exiting would tear the segment down underneath the publisher.
    Unregistering attach-only handles restores publisher-owns-lifetime
    semantics; the private API is wrapped defensively so a future
    stdlib that fixes this (or renames internals) degrades to a
    harmless no-op.
    """
    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


# Segments whose close() found live numpy views: parked here so the
# stdlib SharedMemory.__del__ never runs against exported buffers
# (which would raise an unraisable BufferError mid-GC).  The mappings
# are reclaimed when the process exits — same lifetime the live views
# were forcing anyway.
_parked_segments: list[shared_memory.SharedMemory] = []


class SharedCSR:
    """One CSR snapshot published in a named shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._snapshot: CSRSnapshot | None = None
        self._unlinked = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def publish(
        cls, snapshot: CSRSnapshot, *, name: str | None = None
    ) -> "SharedCSR":
        """Copy ``snapshot`` into a new shared segment (publisher side)."""
        size = snapshot.raw_nbytes()
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except OSError as error:
            raise MPServingError(
                f"cannot create {size}-byte shared segment: {error}"
            ) from error
        snapshot.write_raw_into(shm.buf)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedCSR":
        """Attach to an already published segment by name (worker side)."""
        try:
            shm = shared_memory.SharedMemory(name=name)
        except OSError as error:
            raise MPServingError(
                f"cannot attach shared segment {name!r}: {error}"
            ) from error
        _untrack(shm)
        return cls(shm, owner=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The segment name workers attach with."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """The segment size in bytes."""
        return self._shm.size

    def snapshot(self) -> CSRSnapshot:
        """The shared snapshot: read-only views into the segment.

        Built at most once per handle; repeated calls return the same
        object so memoized python-list mirrors are shared too.
        """
        if self._snapshot is None:
            self._snapshot = CSRSnapshot.from_raw_buffer(self._shm.buf)
        return self._snapshot

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (segment survives for others).

        Live numpy views keep the underlying pages mapped until they
        are garbage-collected; closing is therefore best-effort.
        """
        self._snapshot = None
        try:
            self._shm.close()
        except BufferError:
            # Arrays still alias the buffer somewhere in this process.
            # Park the handle so its __del__ never races those views;
            # the mapping goes away when the process does.
            _parked_segments.append(self._shm)

    def unlink(self) -> None:
        """Remove the segment system-wide (publisher only, once)."""
        if not self._owner:
            raise MPServingError(
                f"segment {self.name!r} was attached, not published; "
                f"only the publisher may unlink it"
            )
        if not self._unlinked:
            self._unlinked = True
            # A same-process attacher's _untrack() may have removed this
            # segment's resource-tracker entry; re-register so unlink's
            # own unregister finds it (registration is idempotent).
            try:  # pragma: no cover - depends on stdlib internals
                from multiprocessing import resource_tracker

                resource_tracker.register(self._shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
            self._shm.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "publisher" if self._owner else "attached"
        return f"SharedCSR({self.name!r}, {role}, {self.nbytes} bytes)"


def map_store_csr(path) -> CSRSnapshot | None:
    """Attach to the G_L snapshot persisted in an RBIX store, zero-copy.

    Opens the store, mmaps its ``csrraw`` section, and returns a
    snapshot whose arrays view the mapping (the mmap stays alive
    through the arrays' ``base`` chain).  Returns None when the file
    predates the raw section; callers then fall back to the decoded
    ``csr`` section or a fresh build.
    """
    from repro.store.reader import IndexStore

    return IndexStore(path).map_csr()
