"""The worker process side of multi-process serving.

A worker is forked by :class:`repro.mp.dispatcher.MPBatchServer` with
its whole serving context inherited copy-on-write: the graph, the
backbone index, the shared landmark tables, and the published
:class:`~repro.mp.shm.SharedCSR` handle.  On startup it wraps that
context in a local flat-engine :class:`SkylineQueryEngine` and installs
the *shared* CSR snapshot — read-only views into the publisher's
segment — so the flat kernels in every worker walk the same physical
arrays.

The loop then serves three message kinds off its task queue:

``("task", task_id, source, targets, mode, budget, ctx)``
    Serve one shared-source query group; ``ctx`` is the dispatcher's
    :class:`~repro.obs.context.TraceContext` (or None when tracing is
    off).  Reply ``("result", worker_id, task_id, responses, spans)``
    with stats stripped (keeps the pickle small) and, when tracing,
    the task's span dump; or ``("error", worker_id, task_id, message,
    spans)`` if the group raised.
``("flush", token)``
    Reply ``("metrics", worker_id, token, registry_state, spans)`` —
    the full :meth:`~repro.service.metrics.MetricsRegistry.dump_state`
    document the dispatcher merges into the parent registry.
``("stop",)``
    Ship a final metrics document (token ``"stop"``) and exit.

When the dispatcher forks the cohort with tracing enabled
(:attr:`WorkerConfig.trace`), each worker installs its own enabled
:class:`~repro.obs.tracer.Tracer` process-wide — the ``fork()`` hook in
:mod:`repro.obs.tracer` has already wiped any state inherited from the
parent — and wraps every task in an ``mp.worker.task`` span carrying
the dispatcher's trace id and parent span id, plus an
``mp.worker.queue_wait`` span anchored at the dispatch send instant.
Span dumps are drained into each reply, so the dispatcher can merge
every process's timeline into one Chrome trace.

Workers never raise out of the loop: any per-task exception becomes an
error reply, so the dispatcher always learns the task's fate and its
admission slot is always released.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, replace

from repro.mp.shm import SharedCSR
from repro.obs.context import TraceContext, dump_process_spans
from repro.obs.export import PARENT_SPAN_ATTR
from repro.obs.tracer import Tracer, set_tracer

# Message tags (tuples keep the queue payloads pickle-cheap).
MSG_TASK = "task"
MSG_FLUSH = "flush"
MSG_STOP = "stop"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_METRICS = "metrics"


@dataclass(frozen=True)
class WorkerConfig:
    """Engine knobs forwarded from the dispatcher to every worker."""

    cache_size: int = 1024
    exact_node_threshold: int = 400
    default_time_budget: float | None = None
    corridor_radius: int = 2
    quality_target: float | None = None
    # Search-kernel tier over the shared snapshot: "flat" (default,
    # bit-identical answers and counters) or "batch" (bucket-vectorized
    # kernel of repro.accel.batch_kernel; answer-set-equal, counters
    # differ).  Every worker of a cohort shares the tier so mp answers
    # stay identical to a single-process engine built the same way.
    search_engine: str = "flat"
    # When True each worker runs a local enabled tracer and ships span
    # dumps back with every reply (set per cohort at spawn time).
    trace: bool = False


def build_worker_engine(graph, index, landmarks, shared, generation, config):
    """A serving stack around the shared snapshot (flat or batch tier).

    Separated from :func:`worker_main` so tests can build the exact
    engine a worker would use in-process and compare answers.
    """
    from repro.service.engine import SkylineQueryEngine

    engine = SkylineQueryEngine(
        graph,
        index=index,
        cache_size=config.cache_size,
        exact_node_threshold=config.exact_node_threshold,
        default_time_budget=config.default_time_budget,
        corridor_radius=config.corridor_radius,
        quality_target=config.quality_target,
        engine=config.search_engine,
    )
    # Install the shared state instead of letting the engine rebuild
    # it: the CSR arrays are views into the published segment (the
    # zero-copy attach), and the landmark tables are the parent's,
    # inherited copy-on-write.
    engine._csr_original = shared.snapshot() if shared is not None else None
    engine._original_landmarks = landmarks
    engine._generation = generation
    return engine


def _span_dump(tracer: Tracer | None, worker_id: int) -> dict | None:
    """Drain this worker's finished spans for shipping (None when off)."""
    if tracer is None or not tracer.enabled:
        return None
    return dump_process_spans(
        tracer, label=f"worker-{worker_id}", drain=True
    )


def worker_main(
    worker_id: int,
    generation: int,
    task_queue,
    result_queue,
    graph,
    index,
    landmarks,
    shared: SharedCSR | None,
    config: WorkerConfig,
) -> None:
    """Entry point of one worker process (runs until ``stop``)."""
    tracer: Tracer | None = None
    if config.trace:
        # A fresh worker-local tracer, installed process-wide so the
        # engine's own spans (serve.query_group, query phases) collect
        # into it without threading a handle through every call.
        tracer = Tracer(enabled=True)
        set_tracer(tracer)
    engine = build_worker_engine(
        graph, index, landmarks, shared, generation, config
    )
    engine.metrics.increment("mp.worker.starts")
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == MSG_TASK:
                _task_id, source, targets, mode, budget = message[1:6]
                ctx: TraceContext | None = (
                    message[6] if len(message) > 6 else None
                )
                arrived_wall = time.time()
                if tracer is not None and ctx is not None:
                    _record_queue_wait(tracer, ctx, arrived_wall, worker_id)
                task_span = (
                    tracer.span(
                        "mp.worker.task",
                        worker=worker_id,
                        task=_task_id,
                        source=source,
                        n_targets=len(targets),
                        mode=mode,
                        generation=generation,
                        **_link_attrs(ctx),
                    )
                    if tracer is not None
                    else nullcontext()
                )
                try:
                    with task_span:
                        responses = engine.query_group(
                            source, list(targets), mode=mode,
                            time_budget=budget,
                        )
                except Exception as error:  # ship, never crash the loop
                    engine.metrics.increment("mp.worker.task_errors")
                    result_queue.put((
                        MSG_ERROR,
                        worker_id,
                        _task_id,
                        f"{type(error).__name__}: {error}",
                        _span_dump(tracer, worker_id),
                    ))
                else:
                    engine.metrics.increment("mp.worker.tasks")
                    trace_id = ctx.trace_id if ctx is not None else None
                    result_queue.put((
                        MSG_RESULT,
                        worker_id,
                        _task_id,
                        [
                            replace(
                                r,
                                stats=None,
                                worker_pid=os.getpid(),
                                trace_id=trace_id,
                            )
                            for r in responses
                        ],
                        _span_dump(tracer, worker_id),
                    ))
            elif kind == MSG_FLUSH:
                result_queue.put((
                    MSG_METRICS,
                    worker_id,
                    message[1],
                    engine.metrics.dump_state(),
                    _span_dump(tracer, worker_id),
                ))
            elif kind == MSG_STOP:
                result_queue.put((
                    MSG_METRICS,
                    worker_id,
                    MSG_STOP,
                    engine.metrics.dump_state(),
                    _span_dump(tracer, worker_id),
                ))
                return
            # Unknown kinds are ignored; a newer dispatcher talking to
            # an older worker degrades to a no-op instead of a crash.
    finally:
        if shared is not None:
            shared.close()


def _link_attrs(ctx: TraceContext | None) -> dict:
    """Span attributes that tie worker spans back to the dispatcher."""
    if ctx is None:
        return {}
    attrs = {"trace_id": ctx.trace_id}
    if ctx.parent_span_id is not None:
        attrs[PARENT_SPAN_ATTR] = ctx.parent_span_id
    return attrs


def _record_queue_wait(
    tracer: Tracer, ctx: TraceContext, arrived_wall: float, worker_id: int
) -> None:
    """One span covering send-to-pickup time on the task queue.

    Anchored on the *wall clock* (the only clock the dispatcher and the
    worker share), spanning the dispatcher's send instant to this
    worker's pickup; merged traces render it in the gap between the
    dispatch span opening and the task span starting.
    """
    if ctx.sent_at_wall is None or arrived_wall < ctx.sent_at_wall:
        return  # no send stamp, or clock skew made the wait negative
    span = tracer.span(
        "mp.worker.queue_wait",
        worker=worker_id,
        wait_seconds=arrived_wall - ctx.sent_at_wall,
        **_link_attrs(ctx),
    )
    span.begin(at=tracer.at_wall(ctx.sent_at_wall))
    span.finish(at=tracer.at_wall(arrived_wall))
