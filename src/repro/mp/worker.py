"""The worker process side of multi-process serving.

A worker is forked by :class:`repro.mp.dispatcher.MPBatchServer` with
its whole serving context inherited copy-on-write: the graph, the
backbone index, the shared landmark tables, and the published
:class:`~repro.mp.shm.SharedCSR` handle.  On startup it wraps that
context in a local flat-engine :class:`SkylineQueryEngine` and installs
the *shared* CSR snapshot — read-only views into the publisher's
segment — so the flat kernels in every worker walk the same physical
arrays.

The loop then serves three message kinds off its task queue:

``("task", task_id, source, targets, mode, budget)``
    Serve one shared-source query group; reply ``("result", worker_id,
    task_id, responses)`` with stats stripped (keeps the pickle small),
    or ``("error", worker_id, task_id, message)`` if the group raised.
``("flush", token)``
    Reply ``("metrics", worker_id, token, registry_state)`` — the full
    :meth:`~repro.service.metrics.MetricsRegistry.dump_state` document
    the dispatcher merges into the parent registry.
``("stop",)``
    Ship a final metrics document (token ``"stop"``) and exit.

Workers never raise out of the loop: any per-task exception becomes an
error reply, so the dispatcher always learns the task's fate and its
admission slot is always released.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mp.shm import SharedCSR

# Message tags (tuples keep the queue payloads pickle-cheap).
MSG_TASK = "task"
MSG_FLUSH = "flush"
MSG_STOP = "stop"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_METRICS = "metrics"


@dataclass(frozen=True)
class WorkerConfig:
    """Engine knobs forwarded from the dispatcher to every worker."""

    cache_size: int = 1024
    exact_node_threshold: int = 400
    default_time_budget: float | None = None


def build_worker_engine(graph, index, landmarks, shared, generation, config):
    """A flat-engine serving stack around the shared snapshot.

    Separated from :func:`worker_main` so tests can build the exact
    engine a worker would use in-process and compare answers.
    """
    from repro.service.engine import SkylineQueryEngine

    engine = SkylineQueryEngine(
        graph,
        index=index,
        cache_size=config.cache_size,
        exact_node_threshold=config.exact_node_threshold,
        default_time_budget=config.default_time_budget,
        engine="flat",
    )
    # Install the shared state instead of letting the engine rebuild
    # it: the CSR arrays are views into the published segment (the
    # zero-copy attach), and the landmark tables are the parent's,
    # inherited copy-on-write.
    engine._csr_original = shared.snapshot() if shared is not None else None
    engine._original_landmarks = landmarks
    engine._generation = generation
    return engine


def worker_main(
    worker_id: int,
    generation: int,
    task_queue,
    result_queue,
    graph,
    index,
    landmarks,
    shared: SharedCSR | None,
    config: WorkerConfig,
) -> None:
    """Entry point of one worker process (runs until ``stop``)."""
    engine = build_worker_engine(
        graph, index, landmarks, shared, generation, config
    )
    engine.metrics.increment("mp.worker.starts")
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == MSG_TASK:
                _task_id, source, targets, mode, budget = message[1:]
                try:
                    responses = engine.query_group(
                        source, list(targets), mode=mode, time_budget=budget
                    )
                except Exception as error:  # ship, never crash the loop
                    engine.metrics.increment("mp.worker.task_errors")
                    result_queue.put((
                        MSG_ERROR,
                        worker_id,
                        _task_id,
                        f"{type(error).__name__}: {error}",
                    ))
                else:
                    engine.metrics.increment("mp.worker.tasks")
                    result_queue.put((
                        MSG_RESULT,
                        worker_id,
                        _task_id,
                        [replace(r, stats=None) for r in responses],
                    ))
            elif kind == MSG_FLUSH:
                result_queue.put((
                    MSG_METRICS,
                    worker_id,
                    message[1],
                    engine.metrics.dump_state(),
                ))
            elif kind == MSG_STOP:
                result_queue.put((
                    MSG_METRICS,
                    worker_id,
                    MSG_STOP,
                    engine.metrics.dump_state(),
                ))
                return
            # Unknown kinds are ignored; a newer dispatcher talking to
            # an older worker degrades to a no-op instead of a crash.
    finally:
        if shared is not None:
            shared.close()
