"""Named synthetic stand-ins for the paper's nine road networks.

The paper's data (DIMACS challenge-9 [1] and the Li spatial datasets
[5], Table 1) is not available offline, so each network is replaced by
a deterministic synthetic road network whose |E|/|V| ratio matches the
real one and whose node count is scaled down for a pure-Python budget
(see DESIGN.md Section 7).  Scaling is uniform across all compared
methods, preserving the relative shapes the paper's tables report.

``load("C9_NY")`` returns the stand-in; ``load_subgraph("C9_NY", 500)``
mirrors the paper's BFS-extraction of bounded subgraphs (their
C9_NY_5K / _10K / _15K).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import GraphError
from repro.graph.costs import CostDistribution, assign_costs
from repro.graph.generators import road_network
from repro.graph.mcrn import MultiCostGraph
from repro.graph.traversal import bfs_subgraph


@dataclass(frozen=True)
class DatasetSpec:
    """One catalog entry and its real-network provenance."""

    name: str
    description: str
    paper_nodes: int
    paper_edges: int
    scaled_nodes: int
    edge_ratio: float
    chain_fraction: float
    spur_fraction: float
    seed: int

    @property
    def scale_factor(self) -> float:
        """How much smaller the stand-in is than the real network."""
        return self.paper_nodes / self.scaled_nodes


_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("C9_NY", "New York", 254_346, 365_050, 2500, 1.44, 0.10, 0.04, 901),
        DatasetSpec("C9_BAY", "San Francisco Bay Area", 321_270, 397_415, 3200, 1.24, 0.12, 0.04, 902),
        DatasetSpec("C9_COL", "Colorado", 435_666, 521_200, 4400, 1.20, 0.12, 0.05, 903),
        DatasetSpec("C9_FLA", "Florida", 1_070_376, 1_343_951, 5400, 1.26, 0.12, 0.04, 904),
        DatasetSpec("C9_E", "East USA", 3_598_623, 4_354_029, 7200, 1.21, 0.12, 0.05, 905),
        DatasetSpec("C9_CTR", "Center USA", 14_081_816, 16_933_413, 11000, 1.20, 0.10, 0.05, 906),
        DatasetSpec("L_CAL", "California (Li)", 21_048, 21_693, 1050, 1.05, 0.20, 0.06, 907),
        DatasetSpec("L_SF", "San Francisco (Li)", 174_956, 221_802, 3000, 1.27, 0.12, 0.04, 908),
        DatasetSpec("L_NA", "USA (Li)", 175_813, 179_102, 1800, 1.03, 0.22, 0.06, 909),
    )
}


def list_datasets() -> list[str]:
    """Names of all catalog networks, Table-1 order."""
    return list(_SPECS)


def dataset_info(name: str) -> DatasetSpec:
    """The catalog entry for one network name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(_SPECS)}"
        ) from None


@lru_cache(maxsize=16)
def _load_cached(name: str, scale: float, dim: int) -> MultiCostGraph:
    spec = dataset_info(name)
    return road_network(
        max(16, int(spec.scaled_nodes * scale)),
        dim=dim,
        edge_ratio=spec.edge_ratio,
        chain_fraction=spec.chain_fraction,
        spur_fraction=spec.spur_fraction,
        seed=spec.seed,
    )


def load(name: str, *, scale: float = 1.0, dim: int = 3) -> MultiCostGraph:
    """Load a catalog network (cached; treat the result as read-only).

    ``scale`` multiplies the stand-in's node budget; ``dim`` is the cost
    dimensionality (first cost is the spatial length, the rest sampled
    uniformly from [1, 100] per the paper's default).
    """
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    return _load_cached(name, scale, dim)


def load_subgraph(
    name: str,
    n_nodes: int,
    *,
    scale: float = 1.0,
    dim: int = 3,
    seed: int = 0,
) -> MultiCostGraph:
    """BFS-extract a bounded subgraph, the paper's C9_NY_5K recipe.

    ``seed`` selects the BFS start node deterministically.
    """
    base = load(name, scale=scale, dim=dim)
    if n_nodes > base.num_nodes:
        raise GraphError(
            f"requested {n_nodes} nodes but {name} (scaled) has only "
            f"{base.num_nodes}"
        )
    nodes = sorted(base.nodes())
    # spread consecutive seeds across the network rather than picking
    # adjacent start nodes (whose BFS balls would largely coincide)
    start = nodes[(seed * 7919) % len(nodes)]
    return bfs_subgraph(base, start, n_nodes)


def load_with_distribution(
    name: str,
    n_nodes: int,
    distribution: CostDistribution,
    *,
    dim: int = 3,
    seed: int = 0,
) -> MultiCostGraph:
    """A bounded subgraph with CORR/ANTI/INDE costs (Section 6.3)."""
    topology = load_subgraph(name, n_nodes, dim=1, seed=seed)
    return assign_costs(
        topology, dim, distribution=distribution, seed=dataset_info(name).seed + 17
    )
