"""Synthetic stand-ins for the paper's nine road networks (Table 1)."""

from repro.datasets.catalog import (
    DatasetSpec,
    dataset_info,
    list_datasets,
    load,
    load_subgraph,
    load_with_distribution,
)

__all__ = [
    "DatasetSpec",
    "dataset_info",
    "list_datasets",
    "load",
    "load_subgraph",
    "load_with_distribution",
]
