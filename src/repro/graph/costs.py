"""Synthetic edge-cost generation for multi-cost road networks.

The paper's networks come with one real cost (spatial length); the
remaining dimensions are synthesized.  Section 6's default follows
[12, 29]: extra costs sampled uniformly from [1, 100].  Section 6.3
additionally studies costs *correlated* (CORR), *anti-correlated*
(ANTI), and *independent* (INDE) with respect to the first dimension.

All generators rewrite the cost vectors of an existing single- or
multi-dimensional graph in place of a new graph object (the original is
left untouched).
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.errors import GraphError
from repro.graph.mcrn import MultiCostGraph


class CostDistribution(enum.Enum):
    """How extra cost dimensions relate to the base (distance) cost."""

    UNIFORM = "uniform"
    CORRELATED = "corr"
    ANTI_CORRELATED = "anti"
    INDEPENDENT = "inde"


def euclidean_base_cost(graph: MultiCostGraph, u: int, v: int) -> float:
    """Euclidean distance between the endpoints' coordinates."""
    cu, cv = graph.coord(u), graph.coord(v)
    if cu is None or cv is None:
        raise GraphError(
            f"cannot compute a distance cost: node {u if cu is None else v} "
            "has no coordinate"
        )
    return math.dist(cu, cv)


def _correlated(base: np.ndarray, rng: np.random.Generator, low: float, high: float) -> np.ndarray:
    """Costs positively correlated with ``base``, rescaled into [low, high]."""
    span = base.max() - base.min()
    normalized = (base - base.min()) / span if span > 0 else np.zeros_like(base)
    noisy = np.clip(normalized + rng.normal(0.0, 0.08, size=base.shape), 0.0, 1.0)
    return low + noisy * (high - low)


def _anti_correlated_block(
    base: np.ndarray,
    n_extras: int,
    rng: np.random.Generator,
    low: float,
    high: float,
) -> list[np.ndarray]:
    """Extra dimensions jointly anti-correlated with ``base`` and with
    each other.

    Following the classic anti-correlated skyline benchmark, each edge's
    costs sit near a constant-sum simplex: a budget inversely related to
    the base cost is split among the extra dimensions by random
    proportions.  Every pair of dimensions then trades off against the
    others, which maximizes skyline width — the regime where the paper's
    Figure 14 shows BBS degrading the most.
    """
    span = base.max() - base.min()
    normalized = (base - base.min()) / span if span > 0 else np.zeros_like(base)
    budget = np.clip(
        (1.0 - normalized) * n_extras
        + rng.normal(0.0, 0.05 * n_extras, size=base.shape),
        0.05,
        float(n_extras),
    )
    shares = rng.dirichlet(np.ones(n_extras), size=len(base))
    extras = []
    for i in range(n_extras):
        fraction = np.clip(budget * shares[:, i], 0.0, 1.0)
        extras.append(low + fraction * (high - low))
    return extras


def assign_costs(
    graph: MultiCostGraph,
    dim: int,
    *,
    distribution: CostDistribution = CostDistribution.UNIFORM,
    low: float = 1.0,
    high: float = 100.0,
    seed: int | None = None,
) -> MultiCostGraph:
    """Return a new graph with ``dim`` cost dimensions per edge.

    Dimension 0 is the Euclidean edge length (requires coordinates).
    Dimensions 1..dim-1 are synthesized per ``distribution``:

    * UNIFORM — i.i.d. uniform in [low, high] (the paper's default).
    * CORRELATED — rises with the edge length, plus noise.
    * ANTI_CORRELATED — falls with the edge length, plus noise.
    * INDEPENDENT — alias of UNIFORM, kept for Section 6.3 vocabulary.
    """
    if dim < 1:
        raise GraphError(f"cost dimensionality must be >= 1, got {dim}")
    rng = np.random.default_rng(seed)
    pairs = list(graph.edge_pairs())
    base = np.array(
        [euclidean_base_cost(graph, u, v) for u, v in pairs], dtype=float
    )
    # A zero-length edge would let skyline searches loop; keep costs positive.
    base = np.maximum(base, 1e-9)

    extras: list[np.ndarray]
    if distribution is CostDistribution.ANTI_CORRELATED and dim > 1:
        extras = _anti_correlated_block(base, dim - 1, rng, low, high)
    else:
        extras = []
        for _ in range(dim - 1):
            if distribution in (
                CostDistribution.UNIFORM,
                CostDistribution.INDEPENDENT,
            ):
                extras.append(rng.uniform(low, high, size=len(pairs)))
            elif distribution is CostDistribution.CORRELATED:
                extras.append(_correlated(base, rng, low, high))
            else:  # pragma: no cover - exhaustive over the enum
                raise GraphError(f"unknown cost distribution {distribution!r}")

    result = MultiCostGraph(dim, directed=graph.directed)
    for node in graph.nodes():
        result.add_node(node, graph.coord(node))
    for index, (u, v) in enumerate(pairs):
        cost = (float(base[index]),) + tuple(
            max(float(extra[index]), 1e-9) for extra in extras
        )
        result.add_edge(u, v, cost)
    return result
