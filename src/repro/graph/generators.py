"""Synthetic road-network topology generators.

The paper evaluates on nine real road networks (DIMACS challenge-9 and
the Li spatial datasets).  Those files are not available offline, so
this module builds the closest synthetic equivalents: planar graphs
with road-like degree distributions (most degrees 2-4), dead-end spurs
(degree-1 edges), and long degree-2 polyline chains (the paper's
"single segments").  These are exactly the structural features the
backbone index's condensing machinery keys on, so the synthetic
networks exercise the same code paths as the real data.

Generators return a dim-1 graph whose single cost is the Euclidean edge
length; :func:`repro.graph.costs.assign_costs` adds the remaining
dimensions.  :func:`road_network` is the one-call high-level entry.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graph.costs import CostDistribution, assign_costs
from repro.graph.mcrn import MultiCostGraph
from repro.graph.traversal import largest_component_subgraph


def _euclidean_edge(graph: MultiCostGraph, u: int, v: int) -> None:
    cu, cv = graph.coord(u), graph.coord(v)
    assert cu is not None and cv is not None
    graph.add_edge(u, v, (max(math.dist(cu, cv), 1e-9),))


def grid_network(
    rows: int,
    cols: int,
    *,
    jitter: float = 0.25,
    removal_prob: float = 0.12,
    diagonal_prob: float = 0.05,
    seed: int | None = None,
) -> MultiCostGraph:
    """A jittered grid street network.

    Grid intersections get coordinates perturbed by ``jitter``; a random
    ``removal_prob`` fraction of grid edges is dropped (dead blocks) and
    ``diagonal_prob`` of cells gain a diagonal shortcut.  The largest
    connected component is returned.
    """
    if rows < 2 or cols < 2:
        raise GraphError("grid needs at least 2x2 intersections")
    rng = np.random.default_rng(seed)
    graph = MultiCostGraph(1)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_node(
                node,
                (
                    c + float(rng.uniform(-jitter, jitter)),
                    r + float(rng.uniform(-jitter, jitter)),
                ),
            )
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols and rng.random() >= removal_prob:
                _euclidean_edge(graph, node, node + 1)
            if r + 1 < rows and rng.random() >= removal_prob:
                _euclidean_edge(graph, node, node + cols)
            if (
                c + 1 < cols
                and r + 1 < rows
                and rng.random() < diagonal_prob
            ):
                _euclidean_edge(graph, node, node + cols + 1)
    return largest_component_subgraph(graph)


def delaunay_network(
    n_nodes: int,
    *,
    edge_ratio: float = 1.35,
    seed: int | None = None,
) -> MultiCostGraph:
    """A planar network from a pruned Delaunay triangulation.

    ``n_nodes`` random points are triangulated; the Euclidean minimum
    spanning tree is kept for connectivity and the shortest remaining
    Delaunay edges are added until ``|E| / |V|`` reaches ``edge_ratio``.
    Real road networks sit around 1.0-1.45 (Table 1), which this matches.
    """
    if n_nodes < 4:
        raise GraphError("delaunay network needs at least 4 nodes")
    from scipy.spatial import Delaunay  # local import: scipy is heavyweight

    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, math.sqrt(n_nodes), size=(n_nodes, 2))
    triangulation = Delaunay(points)
    candidate_edges: set[tuple[int, int]] = set()
    for simplex in triangulation.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            candidate_edges.add((min(a, b), max(a, b)))

    lengths = {
        (u, v): math.dist(points[u], points[v]) for u, v in candidate_edges
    }
    ordered = sorted(candidate_edges, key=lengths.__getitem__)

    # Kruskal MST over the Delaunay edges guarantees connectivity.
    parent = list(range(n_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    mst: set[tuple[int, int]] = set()
    for u, v in ordered:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            mst.add((u, v))

    target_edges = int(edge_ratio * n_nodes)
    chosen = set(mst)
    for edge in ordered:
        if len(chosen) >= target_edges:
            break
        chosen.add(edge)

    graph = MultiCostGraph(1)
    for node in range(n_nodes):
        graph.add_node(node, (float(points[node][0]), float(points[node][1])))
    for u, v in chosen:
        _euclidean_edge(graph, u, v)
    return largest_component_subgraph(graph)


def attach_spurs(
    graph: MultiCostGraph,
    *,
    fraction: float = 0.05,
    max_length: int = 3,
    seed: int | None = None,
) -> MultiCostGraph:
    """Attach dead-end chains (degree-1 spurs) to random nodes.

    Roughly ``fraction * |V|`` spurs of 1..``max_length`` nodes are
    grown outward from existing nodes, reproducing the cul-de-sacs and
    secluded roads whose degree-1 edges the summarization strips first.
    Returns a modified copy.
    """
    rng = np.random.default_rng(seed)
    result = graph.copy()
    anchors = list(result.nodes())
    if not anchors:
        return result
    next_id = max(anchors) + 1
    spur_count = max(1, int(fraction * len(anchors))) if fraction > 0 else 0
    for anchor in rng.choice(anchors, size=spur_count, replace=False):
        tail = int(anchor)
        coord = result.coord(tail) or (0.0, 0.0)
        for _ in range(int(rng.integers(1, max_length + 1))):
            coord = (
                coord[0] + float(rng.uniform(-0.6, 0.6)),
                coord[1] + float(rng.uniform(-0.6, 0.6)),
            )
            result.add_node(next_id, coord)
            _euclidean_edge(result, tail, next_id)
            tail = next_id
            next_id += 1
    return result


def subdivide_edges(
    graph: MultiCostGraph,
    *,
    fraction: float = 0.15,
    max_points: int = 3,
    seed: int | None = None,
) -> MultiCostGraph:
    """Replace a fraction of edges with degree-2 polyline chains.

    Road segments are polylines, so real networks are full of
    consecutive <2,2> degree-pair edges — the paper's single segments,
    the target of aggressive summarization.  Returns a modified copy.
    """
    rng = np.random.default_rng(seed)
    result = graph.copy()
    pairs = list(result.edge_pairs())
    if not pairs:
        return result
    next_id = max(result.nodes()) + 1
    count = int(fraction * len(pairs))
    picked = rng.choice(len(pairs), size=min(count, len(pairs)), replace=False)
    for index in picked:
        u, v = pairs[int(index)]
        cu, cv = result.coord(u), result.coord(v)
        if cu is None or cv is None:
            continue
        result.remove_edge(u, v)
        n_points = int(rng.integers(1, max_points + 1))
        prev = u
        for k in range(1, n_points + 1):
            t = k / (n_points + 1)
            mid = (
                cu[0] + t * (cv[0] - cu[0]) + float(rng.uniform(-0.1, 0.1)),
                cu[1] + t * (cv[1] - cu[1]) + float(rng.uniform(-0.1, 0.1)),
            )
            result.add_node(next_id, mid)
            _euclidean_edge(result, prev, next_id)
            prev = next_id
            next_id += 1
        _euclidean_edge(result, prev, v)
    return result


def road_network(
    n_nodes: int,
    *,
    dim: int = 3,
    edge_ratio: float = 1.35,
    style: str = "delaunay",
    distribution: CostDistribution = CostDistribution.UNIFORM,
    spur_fraction: float = 0.04,
    chain_fraction: float = 0.12,
    seed: int | None = None,
) -> MultiCostGraph:
    """Generate a complete synthetic multi-cost road network.

    Produces approximately ``n_nodes`` nodes: a base topology (grid or
    Delaunay), spurs, polyline chains, and ``dim`` cost dimensions with
    the requested distribution.  Deterministic for a fixed ``seed``.
    """
    if style not in ("delaunay", "grid"):
        raise GraphError(f"unknown network style {style!r}")
    # Spurs and subdivisions add nodes; shrink the base so the final
    # size lands near the request.
    growth = 1.0 + spur_fraction * 2.0 + chain_fraction * edge_ratio * 2.0
    base_n = max(4, int(n_nodes / growth))
    if style == "grid":
        side = max(2, int(math.sqrt(base_n)))
        base = grid_network(side, side, seed=seed)
    else:
        base = delaunay_network(base_n, edge_ratio=edge_ratio, seed=seed)
    with_chains = subdivide_edges(
        base, fraction=chain_fraction, seed=None if seed is None else seed + 1
    )
    with_spurs = attach_spurs(
        with_chains,
        fraction=spur_fraction,
        seed=None if seed is None else seed + 2,
    )
    return assign_costs(
        with_spurs,
        dim,
        distribution=distribution,
        seed=None if seed is None else seed + 3,
    )
