"""Reading and writing road networks in DIMACS challenge-9 format.

The paper's primary datasets ship as DIMACS ``.gr`` (arcs) and ``.co``
(coordinates) files.  This module parses and emits that format, with a
natural extension for multiple costs per arc (extra weight columns on
``a`` lines).  DIMACS files list each undirected road as two opposite
arcs; the reader collapses them onto one undirected edge, keeping the
skyline of the two cost vectors (the paper notes opposite-direction
costs "do not differ much" and models the network as undirected).
"""

from __future__ import annotations

import gzip
from pathlib import Path as FilePath
from typing import IO

from repro.errors import GraphError
from repro.graph.mcrn import MultiCostGraph


def _open_text(path: FilePath | str, mode: str) -> IO[str]:
    path = FilePath(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_dimacs_gr(
    path: FilePath | str,
    *,
    dim: int | None = None,
    directed: bool = False,
) -> MultiCostGraph:
    """Parse a DIMACS ``.gr`` file (optionally gzipped) into a graph.

    ``a u v w...`` lines carry one or more weights; ``dim`` defaults to
    the number of weights on the first arc line.  In undirected mode
    (default) the two opposite arcs of a road collapse to one edge.
    """
    graph: MultiCostGraph | None = None
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in ("c", "p"):
                continue
            if line[0] != "a":
                raise GraphError(
                    f"{path}:{line_no}: unexpected DIMACS record {line[0]!r}"
                )
            fields = line.split()
            if len(fields) < 4:
                raise GraphError(f"{path}:{line_no}: malformed arc line {line!r}")
            u, v = int(fields[1]), int(fields[2])
            costs = tuple(float(w) for w in fields[3:])
            if graph is None:
                actual_dim = dim if dim is not None else len(costs)
                graph = MultiCostGraph(actual_dim, directed=directed)
            if len(costs) != graph.dim:
                raise GraphError(
                    f"{path}:{line_no}: arc has {len(costs)} weights, "
                    f"expected {graph.dim}"
                )
            if u == v:
                continue  # DIMACS files occasionally carry self-loop noise
            graph.add_edge(u, v, costs)
    if graph is None:
        raise GraphError(f"{path}: no arcs found")
    return graph


def read_dimacs_co(graph: MultiCostGraph, path: FilePath | str) -> None:
    """Attach coordinates from a DIMACS ``.co`` file to existing nodes.

    Unknown node ids are ignored (the graph may be a subgraph of the
    file's network).
    """
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in ("c", "p"):
                continue
            if line[0] != "v":
                raise GraphError(
                    f"{path}:{line_no}: unexpected DIMACS record {line[0]!r}"
                )
            fields = line.split()
            if len(fields) != 4:
                raise GraphError(f"{path}:{line_no}: malformed node line {line!r}")
            node, x, y = int(fields[1]), float(fields[2]), float(fields[3])
            if graph.has_node(node):
                graph.set_coord(node, (x, y))


def write_dimacs_gr(
    graph: MultiCostGraph,
    path: FilePath | str,
    *,
    comment: str = "written by repro",
) -> None:
    """Write the graph as a (multi-weight) DIMACS ``.gr`` file.

    Undirected edges are emitted as two opposite arcs, the DIMACS
    convention.  Parallel edges each get their own arc pair.
    """
    with _open_text(path, "w") as handle:
        handle.write(f"c {comment}\n")
        arc_count = graph.num_edge_entries * (1 if graph.directed else 2)
        handle.write(f"p sp {graph.num_nodes} {arc_count}\n")
        for u, v, cost in graph.edges():
            weights = " ".join(f"{c:.17g}" for c in cost)
            handle.write(f"a {u} {v} {weights}\n")
            if not graph.directed:
                handle.write(f"a {v} {u} {weights}\n")


def write_dimacs_co(
    graph: MultiCostGraph,
    path: FilePath | str,
    *,
    comment: str = "written by repro",
) -> None:
    """Write node coordinates as a DIMACS ``.co`` file (nodes with coords)."""
    rows = [(node, graph.coord(node)) for node in graph.nodes()]
    rows = [(node, coord) for node, coord in rows if coord is not None]
    with _open_text(path, "w") as handle:
        handle.write(f"c {comment}\n")
        handle.write(f"p aux sp co {len(rows)}\n")
        for node, coord in rows:
            handle.write(f"v {node} {coord[0]:.17g} {coord[1]:.17g}\n")
