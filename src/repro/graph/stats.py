"""Graph statistics: degree pairs, distributions, and summary records.

Implements Definition 3.3 (degree pairs) and the dataset-statistics
reporting used by Table 1 and the index-size accounting.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass

from repro.graph.mcrn import MultiCostGraph

DegreePair = tuple[int, int]


def degree_pair(graph: MultiCostGraph, u: int, v: int) -> DegreePair:
    """The ordered degree pair of edge (u, v) — Definition 3.3.

    The smaller endpoint degree comes first.
    """
    du, dv = graph.degree(u), graph.degree(v)
    if du <= dv:
        return (du, dv)
    return (dv, du)


def is_degree_one_edge(graph: MultiCostGraph, u: int, v: int) -> bool:
    """True iff the edge has degree pair <1, x> — a degree-1 edge."""
    return degree_pair(graph, u, v)[0] == 1


def degree_distribution(graph: MultiCostGraph) -> dict[int, int]:
    """Map node degree -> number of nodes with that degree."""
    return dict(Counter(graph.degree(node) for node in graph.nodes()))


def degree_pair_distribution(graph: MultiCostGraph) -> dict[DegreePair, int]:
    """Map degree pair -> number of node pairs with that pair."""
    return dict(Counter(degree_pair(graph, u, v) for u, v in graph.edge_pairs()))


def average_degree(graph: MultiCostGraph) -> float:
    """Mean node degree; 0 for the empty graph."""
    if graph.num_nodes == 0:
        return 0.0
    return sum(graph.degree(node) for node in graph.nodes()) / graph.num_nodes


@dataclass(frozen=True)
class GraphStats:
    """A summary record for one network, Table-1 style."""

    name: str
    num_nodes: int
    num_edges: int
    num_edge_entries: int
    dim: int
    avg_degree: float
    max_degree: int
    approx_bytes: int

    def as_row(self) -> list[str]:
        """The statistics formatted as a report row."""
        return [
            self.name,
            f"{self.num_nodes:,}",
            f"{self.num_edges:,}",
            f"{self.avg_degree:.2f}",
            str(self.max_degree),
            f"{self.approx_bytes / (1024 * 1024):.2f} MB",
        ]


def estimate_graph_bytes(graph: MultiCostGraph) -> int:
    """Rough in-memory footprint of the graph's payload data.

    Counts node ids, adjacency entries, and cost floats the way a
    compact serialization would — good enough for relative index-size
    comparisons (the quantity the paper's tables report).
    """
    node_bytes = graph.num_nodes * sys.getsizeof(0)
    adjacency_bytes = 2 * graph.num_edges * sys.getsizeof(0)
    cost_bytes = graph.num_edge_entries * graph.dim * sys.getsizeof(0.0)
    coord_bytes = sum(
        2 * sys.getsizeof(0.0) for node in graph.nodes() if graph.coord(node)
    )
    return node_bytes + adjacency_bytes + cost_bytes + coord_bytes


def graph_stats(graph: MultiCostGraph, name: str = "graph") -> GraphStats:
    """Compute a :class:`GraphStats` summary for the graph."""
    degrees = [graph.degree(node) for node in graph.nodes()]
    return GraphStats(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_edge_entries=graph.num_edge_entries,
        dim=graph.dim,
        avg_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        max_degree=max(degrees, default=0),
        approx_bytes=estimate_graph_bytes(graph),
    )
