"""Utilities for directed multi-cost road networks.

Real road networks are directed: most roads are two-way with slightly
different per-direction costs (grades, turn restrictions, signal
placement), and a few are one-way.  :func:`to_directed` synthesizes
that regime from an undirected network, producing inputs for the
directed backbone extension (:class:`repro.core.directed.
DirectedBackboneIndex`) and for directed exact searches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.mcrn import MultiCostGraph


def to_directed(
    graph: MultiCostGraph,
    *,
    asymmetry: float = 0.1,
    one_way_fraction: float = 0.0,
    seed: int | None = None,
) -> MultiCostGraph:
    """Turn an undirected network into a directed one.

    Every undirected edge becomes a forward arc whose costs are scaled
    by a factor drawn uniformly from ``[1 - asymmetry, 1 + asymmetry]``
    per dimension, plus (unless selected as one-way) an independently
    perturbed reverse arc.  With the defaults this matches the paper's
    stated regime: "the costs of the two opposite directed roads do not
    differ much".

    Parameters
    ----------
    asymmetry:
        Maximum relative per-direction cost deviation (0 = symmetric).
    one_way_fraction:
        Fraction of roads that drop their reverse arc.  Note that long
        label chains degrade gracefully but measurably as this grows;
        see :mod:`repro.core.directed`.
    """
    if graph.directed:
        raise GraphError("to_directed expects an undirected graph")
    if not 0.0 <= asymmetry < 1.0:
        raise GraphError(f"asymmetry must lie in [0, 1), got {asymmetry}")
    if not 0.0 <= one_way_fraction <= 1.0:
        raise GraphError(
            f"one_way_fraction must lie in [0, 1], got {one_way_fraction}"
        )
    rng = np.random.default_rng(seed)
    directed = MultiCostGraph(graph.dim, directed=True)
    for node in graph.nodes():
        directed.add_node(node, graph.coord(node))
    for u, v, cost in graph.edges():
        forward = tuple(
            c * float(rng.uniform(1.0 - asymmetry, 1.0 + asymmetry))
            for c in cost
        )
        directed.add_edge(u, v, forward)
        if rng.random() >= one_way_fraction:
            reverse = tuple(
                c * float(rng.uniform(1.0 - asymmetry, 1.0 + asymmetry))
                for c in cost
            )
            directed.add_edge(v, u, reverse)
    return directed
