"""The multi-cost road network (MCRN) graph substrate.

A :class:`MultiCostGraph` is an undirected (optionally directed)
multigraph whose edges carry d-dimensional cost vectors.  Parallel edges
between the same pair of nodes are stored as a *Pareto skyline* of cost
vectors: a parallel edge dominated by another between the same endpoints
can never lie on a skyline path (swapping it for the dominating edge
dominates the whole path), so pruning it is lossless for skyline path
queries.  This matters because the backbone index's aggressive
summarization creates shortcut edges that may parallel existing edges.

Node identifiers are integers.  Degrees follow the paper's convention:
``deg(v)`` counts *neighbors*, not parallel edges.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import (
    DimensionMismatchError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.paths.dominance import CostVector, dominates, dominates_or_equal

Coordinate = tuple[float, float]


class MultiCostGraph:
    """An in-memory multigraph with d-dimensional edge costs.

    Parameters
    ----------
    dim:
        Number of cost dimensions; every edge must supply exactly this
        many non-negative costs.
    directed:
        When False (default) edges are undirected, matching the paper's
        road-network model.  The directed mode supports the paper's
        Section 4.3.1 extension.
    """

    def __init__(self, dim: int, *, directed: bool = False) -> None:
        if dim < 1:
            raise GraphError(f"cost dimensionality must be >= 1, got {dim}")
        self._dim = dim
        self._directed = directed
        # adjacency: node -> set of out-neighbors (== neighbors when undirected)
        self._adj: dict[int, set[int]] = {}
        # reverse adjacency, only maintained for directed graphs
        self._radj: dict[int, set[int]] | None = {} if directed else None
        # canonical edge key -> skyline list of cost vectors
        self._edges: dict[tuple[int, int], list[CostVector]] = {}
        self._coords: dict[int, Coordinate] = {}
        self._edge_entries = 0
        # memoized immutable neighborhood views, invalidated on mutation
        self._frozen_adj: dict[int, frozenset[int]] = {}
        self._sorted_adj: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of cost dimensions."""
        return self._dim

    @property
    def directed(self) -> bool:
        """Whether edges are directed."""
        return self._directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._adj.__len__()

    @property
    def num_edges(self) -> int:
        """Number of connected node pairs (parallel edges count once)."""
        return len(self._edges)

    @property
    def num_edge_entries(self) -> int:
        """Number of stored edges, counting surviving parallel edges."""
        return self._edge_entries

    def _key(self, u: int, v: int) -> tuple[int, int]:
        if self._directed or u <= v:
            return (u, v)
        return (v, u)

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------

    def add_node(self, node: int, coord: Coordinate | None = None) -> None:
        """Add an isolated node (idempotent); optionally set its coordinate."""
        if node not in self._adj:
            self._adj[node] = set()
            if self._radj is not None:
                self._radj[node] = set()
        if coord is not None:
            self._coords[node] = (float(coord[0]), float(coord[1]))

    def has_node(self, node: int) -> bool:
        """True iff the node exists."""
        return node in self._adj

    def remove_node(self, node: int) -> None:
        """Remove a node and all its incident edges."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        if self._radj is not None:
            for pred in list(self._radj[node]):
                self.remove_edge(pred, node)
        del self._adj[node]
        if self._radj is not None:
            del self._radj[node]
        self._coords.pop(node, None)
        self._frozen_adj.pop(node, None)
        self._sorted_adj.pop(node, None)

    def nodes(self) -> Iterator[int]:
        """Iterate over all node identifiers."""
        return iter(self._adj)

    def coord(self, node: int) -> Coordinate | None:
        """The node's (x, y) coordinate, or None if unset."""
        return self._coords.get(node)

    def set_coord(self, node: int, coord: Coordinate) -> None:
        """Attach an (x, y) coordinate to an existing node."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        self._coords[node] = (float(coord[0]), float(coord[1]))

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def add_edge(self, u: int, v: int, cost: Sequence[float]) -> bool:
        """Add an edge with the given cost vector.

        Endpoints are created on demand.  Returns True iff the edge
        survived skyline pruning against parallel edges between the same
        endpoints (a dominated parallel edge is not stored; adding a
        dominating one evicts the dominated entries).
        """
        if len(cost) != self._dim:
            raise DimensionMismatchError(self._dim, len(cost))
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        vec: CostVector = tuple(float(c) for c in cost)
        if any(c < 0 for c in vec):
            raise GraphError(f"edge costs must be non-negative, got {vec}")
        self.add_node(u)
        self.add_node(v)
        key = self._key(u, v)
        existing = self._edges.get(key)
        if existing is None:
            self._edges[key] = [vec]
            self._adj[u].add(v)
            if self._radj is not None:
                self._radj[v].add(u)
            else:
                self._adj[v].add(u)
            self._invalidate_neighbor_views(u, v)
            self._edge_entries += 1
            return True
        if any(dominates_or_equal(kept, vec) for kept in existing):
            return False
        survivors = [kept for kept in existing if not dominates(vec, kept)]
        survivors.append(vec)
        # Parallel-cost lists stay sorted so edge-slot order is canonical
        # regardless of insertion history (store round-trips, CSR snapshots).
        survivors.sort()
        self._edge_entries += len(survivors) - len(existing)
        self._edges[key] = survivors
        return True

    def has_edge(self, u: int, v: int) -> bool:
        """True iff at least one edge connects u to v (u -> v if directed)."""
        return self._key(u, v) in self._edges

    def edge_costs(self, u: int, v: int) -> list[CostVector]:
        """The skyline of cost vectors of parallel edges between u and v.

        Raises :class:`EdgeNotFoundError` when no edge exists.
        """
        try:
            return list(self._edges[self._key(u, v)])
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def remove_edge(self, u: int, v: int, cost: Sequence[float] | None = None) -> None:
        """Remove one parallel edge (matching ``cost``) or all edges u-v."""
        key = self._key(u, v)
        entry = self._edges.get(key)
        if entry is None:
            raise EdgeNotFoundError(u, v)
        if cost is None:
            removed = len(entry)
            del self._edges[key]
        else:
            vec = tuple(float(c) for c in cost)
            if vec not in entry:
                raise EdgeNotFoundError(u, v)
            entry.remove(vec)
            removed = 1
            if not entry:
                del self._edges[key]
        self._edge_entries -= removed
        if key not in self._edges:
            self._adj[u].discard(v)
            if self._radj is not None:
                self._radj[v].discard(u)
            else:
                self._adj[v].discard(u)
            self._invalidate_neighbor_views(u, v)

    def edges(self) -> Iterator[tuple[int, int, CostVector]]:
        """Iterate ``(u, v, cost)`` per stored parallel edge.

        Undirected edges appear once, in canonical ``u <= v`` orientation.
        """
        for (u, v), costs in self._edges.items():
            for cost in costs:
                yield u, v, cost

    def edge_pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate connected node pairs (parallel edges collapsed)."""
        return iter(self._edges)

    # ------------------------------------------------------------------
    # neighborhoods and degrees
    # ------------------------------------------------------------------

    def neighbors(self, node: int) -> frozenset[int]:
        """Out-neighbors of the node (all neighbors when undirected).

        The returned view is immutable and memoized: callers can neither
        corrupt the adjacency structure through it nor observe later
        mutations, and repeat lookups on an unchanged node are free.
        """
        frozen = self._frozen_adj.get(node)
        if frozen is None:
            try:
                frozen = frozenset(self._adj[node])
            except KeyError:
                raise NodeNotFoundError(node) from None
            self._frozen_adj[node] = frozen
        return frozen

    def sorted_neighbors(self, node: int) -> tuple[int, ...]:
        """Out-neighbors in ascending id order (memoized).

        Search kernels iterate this instead of the set view so expansion
        order — and therefore tie-breaking among equal-cost labels — is
        deterministic and identical across engines.
        """
        ordered = self._sorted_adj.get(node)
        if ordered is None:
            ordered = tuple(sorted(self.neighbors(node)))
            self._sorted_adj[node] = ordered
        return ordered

    def in_neighbors(self, node: int) -> frozenset[int]:
        """In-neighbors of the node (equals neighbors when undirected)."""
        if self._radj is None:
            return self.neighbors(node)
        try:
            return frozenset(self._radj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def _invalidate_neighbor_views(self, u: int, v: int) -> None:
        for node in (u, v):
            self._frozen_adj.pop(node, None)
            self._sorted_adj.pop(node, None)

    def degree(self, node: int) -> int:
        """Number of distinct neighbors (paper's degree convention)."""
        try:
            out_degree = len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None
        if self._radj is None:
            return out_degree
        return out_degree + len(self._radj[node])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "MultiCostGraph":
        """A deep, independent copy of the graph."""
        clone = MultiCostGraph(self._dim, directed=self._directed)
        for node in self._adj:
            clone.add_node(node, self._coords.get(node))
        for (u, v), costs in self._edges.items():
            clone._edges[(u, v)] = list(costs)
            clone._adj[u].add(v)
            if clone._radj is not None:
                clone._radj[v].add(u)
            else:
                clone._adj[v].add(u)
            clone._edge_entries += len(costs)
        return clone

    def restore_from(self, other: "MultiCostGraph") -> None:
        """Replace this graph's contents with a copy of ``other``'s.

        Used to roll back in-place summarization rounds: holders of a
        reference to this graph observe the restored state.
        """
        if other.dim != self._dim or other.directed != self._directed:
            raise GraphError("cannot restore from an incompatible graph")
        clone = other.copy()
        self._adj = clone._adj
        self._radj = clone._radj
        self._edges = clone._edges
        self._coords = clone._coords
        self._edge_entries = clone._edge_entries
        self._frozen_adj = {}
        self._sorted_adj = {}

    def induced_subgraph(self, nodes: Iterable[int]) -> "MultiCostGraph":
        """The subgraph induced by the given node set (coords preserved)."""
        keep = set(nodes)
        missing = [n for n in keep if n not in self._adj]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = MultiCostGraph(self._dim, directed=self._directed)
        for node in keep:
            sub.add_node(node, self._coords.get(node))
        for (u, v), costs in self._edges.items():
            if u in keep and v in keep:
                sub._edges[(u, v)] = list(costs)
                sub._adj[u].add(v)
                if sub._radj is not None:
                    sub._radj[v].add(u)
                else:
                    sub._adj[v].add(u)
                sub._edge_entries += len(costs)
        return sub

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"MultiCostGraph({kind}, dim={self._dim}, "
            f"|V|={self.num_nodes}, |E|={self.num_edges})"
        )
