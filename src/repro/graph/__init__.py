"""Multi-cost road network substrate: graphs, generators, I/O, stats."""

from repro.graph.costs import CostDistribution, assign_costs
from repro.graph.directed import to_directed
from repro.graph.generators import (
    attach_spurs,
    delaunay_network,
    grid_network,
    road_network,
    subdivide_edges,
)
from repro.graph.io import (
    read_dimacs_co,
    read_dimacs_gr,
    write_dimacs_co,
    write_dimacs_gr,
)
from repro.graph.mcrn import MultiCostGraph
from repro.graph.stats import (
    GraphStats,
    average_degree,
    degree_distribution,
    degree_pair,
    degree_pair_distribution,
    graph_stats,
    is_degree_one_edge,
)
from repro.graph.traversal import (
    bfs_nodes,
    bfs_order,
    bfs_subgraph,
    connected_components,
    is_connected,
    largest_component_subgraph,
    peel_degree_one,
)

__all__ = [
    "CostDistribution",
    "GraphStats",
    "MultiCostGraph",
    "assign_costs",
    "attach_spurs",
    "average_degree",
    "bfs_nodes",
    "bfs_order",
    "bfs_subgraph",
    "connected_components",
    "degree_distribution",
    "degree_pair",
    "degree_pair_distribution",
    "delaunay_network",
    "graph_stats",
    "grid_network",
    "is_connected",
    "is_degree_one_edge",
    "largest_component_subgraph",
    "peel_degree_one",
    "read_dimacs_co",
    "read_dimacs_gr",
    "road_network",
    "subdivide_edges",
    "to_directed",
    "write_dimacs_co",
    "write_dimacs_gr",
]
