"""Structural traversals over multi-cost graphs.

These are topology-only helpers (costs are ignored): breadth-first
orders, connected components, BFS-bounded subgraph extraction (how the
paper carves C9_NY_5K out of C9_NY), and the recursive degree-1
stripping that yields a 2-core.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph


def bfs_order(graph: MultiCostGraph, source: int) -> Iterator[int]:
    """Yield nodes in breadth-first order from ``source``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen = {source}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        yield node
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)


def bfs_nodes(graph: MultiCostGraph, source: int, max_nodes: int) -> set[int]:
    """The first ``max_nodes`` nodes reached by BFS from ``source``."""
    result: set[int] = set()
    for node in bfs_order(graph, source):
        result.add(node)
        if len(result) >= max_nodes:
            break
    return result


def bfs_subgraph(graph: MultiCostGraph, source: int, max_nodes: int) -> MultiCostGraph:
    """Induced subgraph on the first ``max_nodes`` BFS-reached nodes.

    This mirrors the paper's procedure for generating bounded-size
    subgraphs of the real networks ("conducting BFS from a random
    node").
    """
    return graph.induced_subgraph(bfs_nodes(graph, source, max_nodes))


def connected_components(graph: MultiCostGraph) -> list[set[int]]:
    """Connected components, largest first (undirected reachability)."""
    seen: set[int] = set()
    components: list[set[int]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = set(bfs_order(graph, start))
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: MultiCostGraph) -> bool:
    """True iff the graph is non-empty and fully connected."""
    if graph.num_nodes == 0:
        return False
    first = next(iter(graph.nodes()))
    return sum(1 for _ in bfs_order(graph, first)) == graph.num_nodes


def largest_component_subgraph(graph: MultiCostGraph) -> MultiCostGraph:
    """Induced subgraph of the largest connected component."""
    components = connected_components(graph)
    if not components:
        return graph.copy()
    return graph.induced_subgraph(components[0])


def peel_degree_one(
    graph: MultiCostGraph, *, protected: Iterable[int] = ()
) -> list[tuple[int, int]]:
    """Recursively find degree-1 removals that would leave a 2-core.

    Returns the peel order as ``(node, anchor)`` pairs: ``node`` has
    degree 1 at its removal step and ``anchor`` is its sole remaining
    neighbor.  The graph itself is *not* modified; callers apply (and
    record) the removals themselves.  ``protected`` nodes are never
    peeled.
    """
    protected_set = set(protected)
    degree = {node: graph.degree(node) for node in graph.nodes()}
    removed: set[int] = set()
    order: list[tuple[int, int]] = []
    queue = deque(
        node
        for node, deg in degree.items()
        if deg == 1 and node not in protected_set
    )
    while queue:
        node = queue.popleft()
        if node in removed or degree[node] != 1:
            continue
        anchor = next(
            neighbor for neighbor in graph.neighbors(node) if neighbor not in removed
        )
        removed.add(node)
        order.append((node, anchor))
        degree[anchor] -= 1
        degree[node] = 0
        if degree[anchor] == 1 and anchor not in protected_set:
            queue.append(anchor)
    return order
