"""GTree [50] adapted to skyline paths — a comparison index (Table 2).

GTree recursively partitions the road network into a tree (fanout f,
leaves of at most ``leaf_size`` vertices) and pre-computes distance
matrices between partition *borders*.  Following the paper's adaptation
(Section 6.1), the pre-computed entries are **skyline path sets** rather
than single shortest-path weights: every border pair stores the Pareto
set of path costs within its subtree's assembled graph.

This is exactly where the approach collapses for skyline queries: the
assembled graphs of internal tree nodes accumulate one parallel edge
per skyline vector, so the graph "contracting process increases the
graph size, which grows exponentially" (Section 6.2.2).  A build budget
caps the damage and reports DNF, mirroring the paper's 1-day timeout.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.errors import BuildError, QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import CostVector
from repro.paths.frontier import PathSet
from repro.paths.path import Path
from repro.search.bbs import skyline_paths
from repro.search.onetoall import one_to_all_skyline


@dataclass
class GTreeNode:
    """One tree node: a vertex set, its borders, and a skyline matrix."""

    node_id: int
    vertices: set[int]
    borders: list[int] = field(default_factory=list)
    children: list["GTreeNode"] = field(default_factory=list)
    # (border_a, border_b) -> skyline cost vectors, a < b
    matrix: dict[tuple[int, int], list[CostVector]] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class GTreeBuildReport:
    """Build metrics for the Table 2 comparison."""

    seconds: float = 0.0
    finished: bool = False
    stored_vectors: int = 0
    tree_nodes: int = 0
    max_assembled_edges: int = 0


class GTreeIndex:
    """A GTree with skyline border matrices over a multi-cost network."""

    def __init__(
        self,
        graph: MultiCostGraph,
        *,
        fanout: int = 4,
        leaf_size: int = 64,
        time_budget: float | None = None,
    ) -> None:
        """Build the index; respects ``time_budget`` (seconds) if given.

        On budget expiry a :class:`BuildError` is raised after filling
        :attr:`report` with the partial metrics — the caller reports a
        DNF row exactly as the paper does for C9_NY_10K.
        """
        if fanout < 2:
            raise BuildError(f"fanout must be >= 2, got {fanout}")
        if leaf_size < 2:
            raise BuildError(f"leaf_size must be >= 2, got {leaf_size}")
        self.graph = graph
        self.fanout = fanout
        self.leaf_size = leaf_size
        self.report = GTreeBuildReport()
        self._deadline = (
            time.perf_counter() + time_budget if time_budget is not None else None
        )
        self._next_id = 0
        started = time.perf_counter()
        self.root = self._build_node(set(graph.nodes()))
        self.report.seconds = time.perf_counter() - started
        self.report.finished = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _check_budget(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            self.report.seconds = 0.0  # caller reads wall clock itself
            raise BuildError("GTree construction exceeded its time budget (DNF)")

    def _build_node(self, vertices: set[int]) -> GTreeNode:
        self._check_budget()
        node = GTreeNode(node_id=self._next_id, vertices=vertices)
        self._next_id += 1
        self.report.tree_nodes += 1
        node.borders = self._borders(vertices)
        if len(vertices) > self.leaf_size:
            for part in _multi_seed_partition(self.graph, vertices, self.fanout):
                if part:
                    node.children.append(self._build_node(part))
        if node.is_leaf:
            self._fill_leaf_matrix(node)
        else:
            self._fill_internal_matrix(node)
        return node

    def _borders(self, vertices: set[int]) -> list[int]:
        return sorted(
            v
            for v in vertices
            if any(n not in vertices for n in self.graph.neighbors(v))
        )

    def _fill_leaf_matrix(self, node: GTreeNode) -> None:
        subgraph = self.graph.induced_subgraph(node.vertices)
        interesting = set(node.borders)
        for border in node.borders:
            self._check_budget()
            if not subgraph.has_node(border):
                continue
            reached = one_to_all_skyline(subgraph, border, targets=interesting)
            for other, paths in reached.items():
                if other <= border:
                    continue
                key = (border, other)
                vectors = [path.cost for path in paths]
                node.matrix[key] = vectors
                self.report.stored_vectors += len(vectors)

    def _assembled_graph(self, node: GTreeNode) -> MultiCostGraph:
        """The border graph of an internal node: children borders plus
        one parallel edge per stored skyline vector."""
        assembled = MultiCostGraph(self.graph.dim)
        for child in node.children:
            for border in child.borders:
                assembled.add_node(border)
            for (a, b), vectors in child.matrix.items():
                for cost in vectors:
                    assembled.add_edge(a, b, cost)
        # Original edges crossing between children stay real edges.
        border_set = {b for child in node.children for b in child.borders}
        for u, v, cost in self.graph.edges():
            if u in border_set and v in border_set:
                owner_u = self._owning_child(node, u)
                owner_v = self._owning_child(node, v)
                if owner_u is not owner_v:
                    assembled.add_edge(u, v, cost)
        if assembled.num_edge_entries > self.report.max_assembled_edges:
            self.report.max_assembled_edges = assembled.num_edge_entries
        return assembled

    def _owning_child(self, node: GTreeNode, vertex: int) -> GTreeNode | None:
        for child in node.children:
            if vertex in child.vertices:
                return child
        return None

    def _fill_internal_matrix(self, node: GTreeNode) -> None:
        assembled = self._assembled_graph(node)
        interesting = [b for b in node.borders if assembled.has_node(b)]
        target_set = set(interesting)
        for border in interesting:
            self._check_budget()
            reached = one_to_all_skyline(assembled, border, targets=target_set)
            for other, paths in reached.items():
                if other <= border:
                    continue
                vectors = [path.cost for path in paths]
                node.matrix[(border, other)] = vectors
                self.report.stored_vectors += len(vectors)

    # ------------------------------------------------------------------
    # introspection & query
    # ------------------------------------------------------------------

    def size_vectors(self) -> int:
        """Total stored skyline cost vectors (the index-size metric)."""
        return self.report.stored_vectors

    def leaf_of(self, vertex: int) -> GTreeNode:
        """The leaf tree-node containing a vertex."""
        node = self.root
        while not node.is_leaf:
            child = self._owning_child(node, vertex)
            if child is None:
                raise QueryError(f"vertex {vertex} fell out of the tree")
            node = child
        return node

    def query(self, source: int, target: int) -> list[Path]:
        """Skyline path *costs* between two vertices via the tree.

        Returns paths over the assembled search graph (border hops, not
        original-node sequences); adequate for the cost-level
        comparisons the paper makes.  Same-leaf queries run an exact
        BBS within the leaf subgraph.
        """
        leaf_s = self.leaf_of(source)
        leaf_t = self.leaf_of(target)
        if leaf_s.node_id == leaf_t.node_id:
            subgraph = self.graph.induced_subgraph(leaf_s.vertices)
            return skyline_paths(subgraph, source, target).paths

        search = MultiCostGraph(self.graph.dim)
        for leaf, endpoint in ((leaf_s, source), (leaf_t, target)):
            subgraph = self.graph.induced_subgraph(leaf.vertices)
            reached = one_to_all_skyline(
                subgraph, endpoint, targets=set(leaf.borders)
            )
            for border, paths in reached.items():
                if border == endpoint:
                    continue
                for path in paths:
                    search.add_edge(endpoint, border, path.cost)
        # Every internal tree node on either root path contributes its
        # assembled border graph (children matrices + cross edges); this
        # is what connects the two leaf branches through their ancestors.
        seen_nodes: set[int] = set()
        for leaf in (leaf_s, leaf_t):
            for tree_node in self._path_to_root(leaf):
                if tree_node.node_id in seen_nodes:
                    continue
                seen_nodes.add(tree_node.node_id)
                if tree_node.is_leaf:
                    for (a, b), vectors in tree_node.matrix.items():
                        for cost in vectors:
                            search.add_edge(a, b, cost)
                else:
                    assembled = self._assembled_graph(tree_node)
                    for a, b, cost in assembled.edges():
                        search.add_edge(a, b, cost)
        if not search.has_node(source) or not search.has_node(target):
            return []
        return skyline_paths(search, source, target).paths

    def _path_to_root(self, leaf: GTreeNode) -> list[GTreeNode]:
        chain: list[GTreeNode] = []
        node = self.root
        while True:
            chain.append(node)
            if node.node_id == leaf.node_id or node.is_leaf:
                break
            child = next(
                (c for c in node.children if leaf.vertices <= c.vertices), None
            )
            if child is None:
                break
            node = child
        return chain


def _multi_seed_partition(
    graph: MultiCostGraph, vertices: set[int], parts: int
) -> list[set[int]]:
    """Split a vertex set into ``parts`` balanced connected chunks.

    Seeds are spread by a farthest-point sweep on hop distance, then
    grown breadth-first in lockstep; ties go to the smallest chunk,
    keeping sizes balanced the way GTree's METIS partitioning would.
    """
    ordered = sorted(vertices)
    if parts >= len(ordered):
        return [{v} for v in ordered]
    seeds = [ordered[0]]
    hop = _hop_distances(graph, ordered[0], vertices)
    while len(seeds) < parts:
        candidates = {v: d for v, d in hop.items() if v not in seeds}
        if not candidates:
            break
        nxt = max(candidates, key=candidates.__getitem__)
        seeds.append(nxt)
        for v, d in _hop_distances(graph, nxt, vertices).items():
            if d < hop.get(v, float("inf")):
                hop[v] = d

    owner: dict[int, int] = {}
    chunks: list[set[int]] = [set() for _ in seeds]
    heap: list[tuple[int, int, int, int]] = []
    counter = 0
    for index, seed in enumerate(seeds):
        owner[seed] = index
        chunks[index].add(seed)
        heap.append((1, counter, seed, index))
        counter += 1
    heapq.heapify(heap)
    while heap:
        size, _, vertex, index = heapq.heappop(heap)
        for neighbor in sorted(graph.neighbors(vertex)):
            if neighbor in vertices and neighbor not in owner:
                owner[neighbor] = index
                chunks[index].add(neighbor)
                counter += 1
                heapq.heappush(heap, (len(chunks[index]), counter, neighbor, index))
    # Disconnected leftovers join the smallest chunk.
    for vertex in ordered:
        if vertex not in owner:
            smallest = min(range(len(chunks)), key=lambda i: len(chunks[i]))
            owner[vertex] = smallest
            chunks[smallest].add(vertex)
    return [chunk for chunk in chunks if chunk]


def _hop_distances(
    graph: MultiCostGraph, source: int, within: set[int]
) -> dict[int, int]:
    from collections import deque

    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in within and neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist
