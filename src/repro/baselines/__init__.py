"""Comparison methods: GTree and CH with skyline paths, BFS partitions."""

from repro.baselines.bfs_partition import bfs_partitions, build_bfs_partition_index
from repro.baselines.ch import CHBuildReport, CHIndex
from repro.baselines.gtree import GTreeBuildReport, GTreeIndex, GTreeNode

__all__ = [
    "CHBuildReport",
    "CHIndex",
    "GTreeBuildReport",
    "GTreeIndex",
    "GTreeNode",
    "bfs_partitions",
    "build_bfs_partition_index",
]
