"""BFS-partition condensing — the ablation of Section 6.2.3.

The paper compares its dense-cluster discovery against partitioning the
level graph into connected BFS chunks ("other partition methods ...
that merely consider the connectivity between partitions but not the
density ... get similar results").  The chunking itself lives in
:func:`repro.core.summarize.bfs_partitions`; this module provides the
one-call comparator that builds a whole backbone index with BFS
partitions in place of dense clusters.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.builder import build_backbone_index
from repro.core.index import BackboneIndex
from repro.core.params import BackboneParams, ClusteringStrategy
from repro.core.summarize import bfs_partitions
from repro.graph.mcrn import MultiCostGraph

__all__ = ["bfs_partitions", "build_bfs_partition_index"]


def build_bfs_partition_index(
    graph: MultiCostGraph, params: BackboneParams | None = None
) -> BackboneIndex:
    """Build a backbone index whose local units are BFS partitions.

    Identical pipeline to :func:`build_backbone_index` except for the
    cluster-discovery step, isolating exactly the design choice the
    ablation measures.
    """
    if params is None:
        params = BackboneParams()
    return build_backbone_index(
        graph, replace(params, clustering=ClusteringStrategy.BFS)
    )
