"""Contraction Hierarchies [18, 37] adapted to skyline paths (Table 2).

Classic CH contracts nodes in importance order, inserting a shortcut
(u, w) whenever removing v would break the unique shortest path
u-v-w.  The paper's adaptation replaces "one shortest path" with "the
skyline of u-v-w cost combinations", each surviving combination
becoming its own parallel shortcut unless a *witness* path (avoiding v)
dominates it.

Because many incomparable combinations survive every contraction, the
edge count blows up — the paper measures the final CH graph at 5x+ the
input edges and build times in hours.  Our implementation reproduces
the mechanism (and therefore the blow-up) with a node ordering by lazy
edge-difference and a hop-limited witness search; a build budget turns
runaway instances into explicit DNFs.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

from repro.errors import BuildError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import add_costs, dominates_or_equal
from repro.search.labels import Label, NodeFrontier


@dataclass
class CHBuildReport:
    """Build metrics for the Table 2 comparison."""

    seconds: float = 0.0
    finished: bool = False
    contracted_nodes: int = 0
    shortcuts_added: int = 0
    final_nodes: int = 0
    final_edge_entries: int = 0


class CHIndex:
    """A skyline contraction hierarchy over a multi-cost network."""

    def __init__(
        self,
        graph: MultiCostGraph,
        *,
        witness_expansions: int = 200,
        witness_hops: int = 8,
        time_budget: float | None = None,
    ) -> None:
        """Contract every node; respects ``time_budget`` if given.

        The *overlay* graph starts as a copy of the input and
        accumulates shortcuts; :attr:`report` captures the node/edge
        counts the paper's Table 2 reports for CH.
        """
        self.graph = graph
        self.witness_expansions = witness_expansions
        self.witness_hops = witness_hops
        self.report = CHBuildReport()
        self.order: dict[int, int] = {}
        self.overlay = graph.copy()
        # The *final* CH graph keeps all edges ever present (original +
        # shortcuts); contraction only hides nodes from the remaining
        # overlay, it does not delete index content.
        self.final_graph = graph.copy()
        started = time.perf_counter()
        deadline = started + time_budget if time_budget is not None else None
        self._contract_all(deadline)
        self.report.seconds = time.perf_counter() - started
        self.report.finished = True
        self.report.final_nodes = self.final_graph.num_nodes
        self.report.final_edge_entries = self.final_graph.num_edge_entries

    # ------------------------------------------------------------------

    def _priority(self, node: int) -> float:
        """Lazy edge-difference priority (cheaper nodes contract first)."""
        neighbors = sorted(self.overlay.neighbors(node))
        removed = sum(
            len(self.overlay.edge_costs(node, n)) for n in neighbors
        )
        # Upper-bound estimate of shortcuts: all incomparable pair
        # combinations; the real count is decided at contraction time.
        added = 0
        for u, w in itertools.combinations(neighbors, 2):
            added += len(self.overlay.edge_costs(node, u)) * len(
                self.overlay.edge_costs(node, w)
            )
        return added - removed

    def _contract_all(self, deadline: float | None) -> None:
        heap: list[tuple[float, int, int]] = []
        counter = itertools.count()
        for node in self.overlay.nodes():
            heap.append((self._priority(node), next(counter), node))
        heapq.heapify(heap)
        while heap:
            if deadline is not None and time.perf_counter() > deadline:
                raise BuildError("CH construction exceeded its time budget (DNF)")
            priority, _, node = heapq.heappop(heap)
            if node in self.order:
                continue
            current = self._priority(node)
            if current > priority:
                heapq.heappush(heap, (current, next(counter), node))
                continue
            self._contract(node)

    def _contract(self, node: int) -> None:
        neighbors = sorted(self.overlay.neighbors(node))
        for u, w in itertools.combinations(neighbors, 2):
            candidates = [
                add_costs(cu, cw)
                for cu in self.overlay.edge_costs(node, u)
                for cw in self.overlay.edge_costs(node, w)
            ]
            for cost in candidates:
                if self._has_witness(u, w, cost, excluded=node):
                    continue
                if self.overlay.add_edge(u, w, cost):
                    self.report.shortcuts_added += 1
                self.final_graph.add_edge(u, w, cost)
        self.order[node] = self.report.contracted_nodes
        self.report.contracted_nodes += 1
        self.overlay.remove_node(node)

    def _has_witness(
        self, source: int, target: int, cost: tuple, excluded: int
    ) -> bool:
        """Limited skyline search for a path dominating the shortcut.

        Best-first over the current overlay, skipping ``excluded``;
        aborts after a fixed number of expansions or hops.  Missing a
        witness only costs an extra parallel shortcut (the multigraph's
        skyline pruning keeps correctness), exactly like classic CH's
        limited witness search.
        """
        frontiers: dict[int, NodeFrontier] = {}
        counter = itertools.count()
        heap: list[tuple[float, int, int, Label]] = []

        def push(label: Label, hops: int) -> None:
            if any(c > m for c, m in zip(label.cost, cost)):
                return  # can no longer dominate-or-equal the shortcut
            frontier = frontiers.get(label.node)
            if frontier is None:
                frontier = frontiers[label.node] = NodeFrontier()
            if not frontier.try_add(label.cost):
                return
            heapq.heappush(heap, (sum(label.cost), next(counter), hops, label))

        push(Label(source, (0.0,) * self.overlay.dim), 0)
        expansions = 0
        while heap and expansions < self.witness_expansions:
            _, _, hops, label = heapq.heappop(heap)
            if not frontiers[label.node].is_current(label.cost):
                continue
            expansions += 1
            if label.node == target and dominates_or_equal(label.cost, cost):
                return True
            if hops >= self.witness_hops:
                continue
            for neighbor in self.overlay.neighbors(label.node):
                if neighbor == excluded:
                    continue
                for edge_cost in self.overlay.edge_costs(label.node, neighbor):
                    extended = add_costs(label.cost, edge_cost)
                    push(Label(neighbor, extended, parent=label), hops + 1)
        return False
