"""Executable correctness invariants for skyline path answers.

Every checker returns a list of human-readable problem strings (empty
when the invariant holds) instead of raising, so the differential
runner can aggregate findings across variants and the shrinker can use
"still produces a problem" as its reduction predicate.  The same
predicates back the qa regression tests, keeping the harness and the
test suite in agreement about what *correct* means:

* :func:`path_errors` — the node sequence is a real walk in the graph
  and the stored cost is achievable along it (parallel edges induce a
  small dynamic program over cost choices);
* :func:`non_dominance_errors` — a result set is mutually
  non-dominated; exact cost ties are allowed (Definition 3.2 keeps
  equal-cost alternatives);
* :func:`approximation_errors` — an approximate set is
  dominance-consistent with the exact skyline: nothing beats exact,
  nothing escapes it, and RAC stays within a configured bound;
* :func:`identical_answer_errors` — two variants that must agree
  bit-for-bit (cached vs. uncached, store round-trip vs. fresh) really
  return the same multiset of (cost, node-sequence) pairs;
* :func:`answer_set_errors` — two variants that must agree as *answer
  sets* (the batch kernel's contract): same skyline costs with the
  same multiplicities, and identical node sequences wherever a cost is
  unique — only which equal-cost alternate survives may differ (with
  the graph at hand, divergent representatives are accepted exactly
  when both walks price to the claimed cost).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.eval.metrics import rac
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import dominates
from repro.paths.path import Path

# Parallel-edge cost combinations explored per walk before the pricing
# check gives up; real qa graphs stay far below this.
_MAX_ACHIEVABLE = 4096

_TOLERANCE = 1e-6


def path_errors(
    graph: MultiCostGraph,
    path: Path,
    *,
    source: int | None = None,
    target: int | None = None,
    tolerance: float = _TOLERANCE,
) -> list[str]:
    """Problems with one returned path: endpoints, walk, and pricing."""
    problems: list[str] = []
    if source is not None and path.source != source:
        problems.append(
            f"path starts at {path.source}, query source is {source}"
        )
    if target is not None and path.target != target:
        problems.append(
            f"path ends at {path.target}, query target is {target}"
        )
    if path.is_trivial():
        if any(abs(c) > tolerance for c in path.cost):
            problems.append(
                f"trivial path carries non-zero cost {path.cost}"
            )
        return problems
    achievable: set[tuple[float, ...]] = {(0.0,) * graph.dim}
    for u, v in zip(path.nodes, path.nodes[1:]):
        if not graph.has_edge(u, v):
            problems.append(f"edge ({u}, {v}) does not exist in the graph")
            return problems
        options = graph.edge_costs(u, v)
        achievable = {
            tuple(a + o for a, o in zip(acc, option))
            for acc in achievable
            for option in options
        }
        if len(achievable) > _MAX_ACHIEVABLE:
            problems.append(
                f"parallel-edge blow-up pricing walk {path.nodes}"
            )
            return problems
    if not any(
        all(abs(a - c) <= tolerance for a, c in zip(candidate, path.cost))
        for candidate in achievable
    ):
        problems.append(
            f"cost {path.cost} is not achievable along {path.nodes}"
        )
    return problems


def non_dominance_errors(paths: Sequence[Path]) -> list[str]:
    """Pairs in which one path strictly dominates another.

    Exactly equal cost vectors are fine — the paper's result-set
    semantics keep equal-cost alternatives — so only strict dominance
    (every dimension <=, at least one <) is a violation.
    """
    problems: list[str] = []
    for i, a in enumerate(paths):
        for b in paths[i + 1 :]:
            if dominates(a.cost, b.cost):
                problems.append(f"{a.cost} dominates {b.cost} in one result set")
            elif dominates(b.cost, a.cost):
                problems.append(f"{b.cost} dominates {a.cost} in one result set")
    return problems


def _tol(value: float, tolerance: float) -> float:
    # Backbone label pricing and edge-by-edge BBS pricing sum the same
    # terms in different orders, so equal paths can differ by a few
    # ULPs; comparisons against the exact front use a relative band.
    return max(tolerance, tolerance * abs(value))


def _dominates_beyond_tolerance(
    a: Sequence[float], b: Sequence[float], tolerance: float
) -> bool:
    """Strict dominance that survives float summation-order noise."""
    strictly_better = False
    for x, y in zip(a, b, strict=True):
        if x > y + _tol(y, tolerance):
            return False
        if x < y - _tol(y, tolerance):
            strictly_better = True
    return strictly_better


def _covered_within_tolerance(
    cost: Sequence[float], exact_costs: Sequence[Sequence[float]],
    tolerance: float,
) -> bool:
    """True when some exact cost dominates-or-equals ``cost`` modulo noise."""
    return any(
        all(
            e <= c + _tol(c, tolerance)
            for e, c in zip(exact_cost, cost, strict=True)
        )
        for exact_cost in exact_costs
    )


def approximation_errors(
    approximate: Sequence[Path],
    exact: Sequence[Path],
    *,
    rac_bound: float | None = None,
    tolerance: float = 1e-9,
) -> list[str]:
    """Dominance-consistency of an approximate set with the exact skyline.

    Three one-sided checks (the approximate set may legitimately be a
    strict subset/superset in cost space, so set equality is *not*
    required):

    * no approximate cost strictly dominates an exact skyline cost —
      otherwise the "exact" search missed a better path;
    * every approximate cost is dominated-or-equalled by some exact
      cost — a valid path can never beat the true skyline, so an
      uncovered cost means the approximate path is mispriced or the
      exact set is incomplete;
    * when both sets are non-empty and ``rac_bound`` is given, every
      RAC component stays within it (the paper's quality metric).
    """
    problems: list[str] = []
    if exact and not approximate:
        problems.append(
            f"approximate set is empty while the exact skyline has "
            f"{len(exact)} paths"
        )
        return problems
    exact_costs = [path.cost for path in exact]
    for path in approximate:
        for exact_cost in exact_costs:
            if _dominates_beyond_tolerance(path.cost, exact_cost, tolerance):
                problems.append(
                    f"approximate cost {path.cost} dominates exact "
                    f"skyline cost {exact_cost}"
                )
        if exact_costs and not _covered_within_tolerance(
            path.cost, exact_costs, tolerance
        ):
            problems.append(
                f"approximate cost {path.cost} is not covered by any "
                f"exact skyline cost"
            )
    if rac_bound is not None and approximate and exact:
        ratios = rac(list(approximate), list(exact))
        for i, ratio in enumerate(ratios):
            # A zero exact mean (trivial same-node query) yields an
            # infinite ratio with no quality signal; genuine quality
            # loss on a priced dimension is always finite.
            if math.isfinite(ratio) and ratio > rac_bound:
                problems.append(
                    f"RAC[{i}] = {ratio:.3f} exceeds the bound {rac_bound}"
                )
    return problems


def _answer_key(paths: Sequence[Path]) -> Counter:
    return Counter((path.cost, path.nodes) for path in paths)


def identical_answer_errors(
    label_a: str,
    paths_a: Sequence[Path],
    label_b: str,
    paths_b: Sequence[Path],
) -> list[str]:
    """Two variants required to agree bit-for-bit, compared as
    multisets of (cost vector, node sequence) pairs."""
    key_a, key_b = _answer_key(paths_a), _answer_key(paths_b)
    if key_a == key_b:
        return []
    only_a = list((key_a - key_b).elements())
    only_b = list((key_b - key_a).elements())
    detail = []
    if only_a:
        detail.append(f"only in {label_a}: {only_a[:3]}")
    if only_b:
        detail.append(f"only in {label_b}: {only_b[:3]}")
    return [
        f"{label_a} and {label_b} disagree "
        f"({len(paths_a)} vs {len(paths_b)} paths; {'; '.join(detail)})"
    ]


def answer_set_errors(
    label_a: str,
    paths_a: Sequence[Path],
    label_b: str,
    paths_b: Sequence[Path],
    graph: MultiCostGraph | None = None,
) -> list[str]:
    """Two variants required to return the same *answer set*.

    This is the contract of the bucket-vectorized batch kernel
    (:mod:`repro.accel.batch_kernel`) against the flat/python engines:
    the answers must match as a set of (cost vector, node sequence)
    pairs, but the kernels expand labels in different orders by design,
    so among *exactly* equal-cost alternatives the surviving
    representative may differ.  Concretely:

    * the skyline cost sets must be equal, with equal multiplicities
      per cost vector (``keep_equal_costs`` semantics are preserved);
    * wherever a cost vector is held by exactly one path on both
      sides, the node sequences must match too — unless ``graph`` is
      given and *both* walks price to that cost in it.  Engines prune
      equal-cost duplicates keep-first, so when the graph holds two
      distinct walks of identical cost each engine may legitimately
      keep a different one; with the graph at hand the checker verifies
      the divergent walk really achieves the claimed cost instead of
      flagging the permitted divergence.

    Counters and expansion statistics are explicitly out of scope —
    see the "counters may differ" tier note in the batch kernel.
    """
    problems = cost_skyline_errors(label_a, paths_a, label_b, paths_b)
    if problems:
        # A cost-front disagreement subsumes any per-path detail.
        return problems

    def grouped(paths: Sequence[Path]) -> dict:
        groups: dict[tuple[float, ...], list[Path]] = {}
        for path in paths:
            groups.setdefault(path.cost, []).append(path)
        return groups

    groups_a, groups_b = grouped(paths_a), grouped(paths_b)
    problems = []
    for cost, group_a in sorted(groups_a.items()):
        group_b = groups_b.get(cost, [])
        if len(group_a) != len(group_b):
            problems.append(
                f"{label_a} keeps {len(group_a)} paths at cost {cost}, "
                f"{label_b} keeps {len(group_b)}"
            )
        elif len(group_a) == 1 and group_a[0].nodes != group_b[0].nodes:
            if graph is not None and not path_errors(
                graph, group_a[0]
            ) and not path_errors(graph, group_b[0]):
                continue  # distinct but genuine equal-cost walks
            problems.append(
                f"unique-cost answers disagree at {cost}: "
                f"{label_a} {group_a[0].nodes} vs {label_b} {group_b[0].nodes}"
            )
    return problems


def cost_skyline_errors(
    label_a: str,
    paths_a: Sequence[Path],
    label_b: str,
    paths_b: Sequence[Path],
) -> list[str]:
    """Two variants required to agree on the *set* of skyline costs.

    Weaker than :func:`identical_answer_errors`: retained equal-cost
    alternatives may differ (their survival depends on search order),
    but the cost front itself must match.
    """
    costs_a = {path.cost for path in paths_a}
    costs_b = {path.cost for path in paths_b}
    if costs_a == costs_b:
        return []
    return [
        f"{label_a} and {label_b} disagree on skyline costs "
        f"(only in {label_a}: {sorted(costs_a - costs_b)[:3]}; "
        f"only in {label_b}: {sorted(costs_b - costs_a)[:3]})"
    ]
