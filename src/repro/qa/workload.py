"""Seeded random graphs, query workloads, and update scripts for qa.

Everything a differential case needs is derived deterministically from
one integer seed: the topology style and cost dimensionality rotate
through the configured grid, the network comes from
:func:`repro.graph.generators.road_network`, queries are sampled node
pairs, and the update script is a short list of structural ops
(cost bumps, edge inserts/deletes, an occasional node delete) that the
runner later replays through a
:class:`~repro.core.maintenance.MaintainableIndex`.

Graphs are kept small (tens of nodes) on purpose: exact BBS is the
oracle for every query, and a store round-trip plus two metamorphic
index builds run per case, so a case must stay in the tens of
milliseconds for a 50-seed fuzz run to finish interactively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.params import BackboneParams
from repro.graph.costs import CostDistribution
from repro.graph.generators import road_network
from repro.graph.mcrn import MultiCostGraph

STYLES = ("delaunay", "grid")
DIMS = (2, 3, 4)

# An update op is ("bump", u, v) / ("insert", u, v, cost) /
# ("delete_edge", u, v) / ("delete_node", n) — costs for bumps are read
# off the live graph at apply time so ops stay valid in sequence.
UpdateOp = tuple


@dataclass(frozen=True)
class CaseSpec:
    """Deterministic description of one differential case."""

    seed: int
    style: str = "delaunay"
    dim: int = 3
    n_nodes: int = 70
    n_queries: int = 5
    n_updates: int = 3
    distribution: str = "uniform"

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        n_nodes: int = 70,
        n_queries: int = 5,
        n_updates: int = 3,
    ) -> "CaseSpec":
        """Rotate style and dimensionality through the qa grid so a
        contiguous seed range covers every (style, dim) combination."""
        return cls(
            seed=seed,
            style=STYLES[seed % len(STYLES)],
            dim=DIMS[(seed // len(STYLES)) % len(DIMS)],
            n_nodes=n_nodes,
            n_queries=n_queries,
            n_updates=n_updates,
        )


@dataclass
class QACase:
    """One generated case: the network, its workload, and updates."""

    spec: CaseSpec
    graph: MultiCostGraph
    queries: list[tuple[int, int]] = field(default_factory=list)
    updates: list[UpdateOp] = field(default_factory=list)


def qa_params(spec: CaseSpec) -> BackboneParams:
    """Construction parameters sized for qa-scale graphs: small
    clusters and an aggressive removal quota force several index
    levels even on ~70-node networks, so every query exercises the
    full grow/grow/connect pipeline."""
    return BackboneParams(m_max=10, m_min=2, p=0.2, landmark_count=4)


def build_case(spec: CaseSpec) -> QACase:
    """Materialize a spec into a graph, queries, and an update script."""
    graph = road_network(
        spec.n_nodes,
        dim=spec.dim,
        style=spec.style,
        distribution=CostDistribution(spec.distribution),
        seed=spec.seed,
    )
    rng = random.Random(spec.seed * 7919 + 17)
    nodes = sorted(graph.nodes())
    queries = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(spec.n_queries)
    ]
    endpoint_nodes = {n for pair in queries for n in pair}

    updates: list[UpdateOp] = []
    edge_pairs = sorted(graph.edge_pairs())
    for _ in range(spec.n_updates):
        roll = rng.random()
        if roll < 0.5 and edge_pairs:
            u, v = rng.choice(edge_pairs)
            updates.append(("bump", u, v))
        elif roll < 0.75:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v:
                cost = tuple(
                    round(rng.uniform(1.0, 9.0), 2) for _ in range(spec.dim)
                )
                updates.append(("insert", u, v, cost))
        elif roll < 0.9 and edge_pairs:
            u, v = rng.choice(edge_pairs)
            updates.append(("delete_edge", u, v))
        else:
            victims = [n for n in nodes if n not in endpoint_nodes]
            if victims:
                updates.append(("delete_node", rng.choice(victims)))
    return QACase(spec=spec, graph=graph, queries=queries, updates=updates)


def apply_updates(maintainer, updates: list[UpdateOp]) -> int:
    """Replay an update script against a maintainable index.

    Ops made moot by earlier ops (the edge was deleted, the node is
    gone) are skipped; returns how many ops actually applied.
    """
    applied = 0
    for op in updates:
        kind = op[0]
        graph = maintainer.graph
        if kind == "bump":
            _, u, v = op
            if not graph.has_edge(u, v):
                continue
            old = graph.edge_costs(u, v)[0]
            new = tuple(c * 1.5 for c in old)
            maintainer.update_edge_cost(u, v, old, new)
        elif kind == "insert":
            _, u, v, cost = op
            if not (graph.has_node(u) and graph.has_node(v)):
                continue
            maintainer.insert_edge(u, v, cost)
        elif kind == "delete_edge":
            _, u, v = op
            if not graph.has_edge(u, v):
                continue
            maintainer.delete_edge(u, v)
        elif kind == "delete_node":
            _, node = op
            if not graph.has_node(node):
                continue
            maintainer.delete_node(node)
        else:  # pragma: no cover - internal dispatch
            raise ValueError(f"unknown update op {op!r}")
        applied += 1
    return applied
