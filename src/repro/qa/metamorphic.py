"""Metamorphic checks — oracle-free relations a correct engine obeys.

Differential checking needs an exact oracle per query; metamorphic
checking needs none, only a transformation of the input with a known
effect on the output, so it scales to workloads where exact BBS would
be the bottleneck.  Three relations from the issue:

* **source/target swap** — on an undirected network the skyline *cost
  front* of (s, t) equals that of (t, s).  Only the cost sets are
  compared: which equal-cost alternative survives depends on search
  order, which the swap legitimately changes.
* **cost-dimension permutation** — permuting every edge's cost vector
  permutes every skyline cost the same way.  Dominance, the scalarized
  heap priority (a sum), and the structural construction decisions are
  all permutation-invariant, so both exact BBS and the backbone index
  must satisfy this exactly.
* **uniform cost scaling** — multiplying every edge cost by λ > 0
  multiplies every skyline cost by λ.  The factor is a power of two so
  the float products are exact and the comparison needs no tolerance.

Each check returns problem strings like the :mod:`repro.qa.invariants`
checkers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.builder import build_backbone_index
from repro.core.params import BackboneParams
from repro.core.query import backbone_query
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.search.bbs import skyline_paths

SCALE_FACTOR = 0.5  # a power of two: λ-scaled float sums stay exact


def permute_costs(
    graph: MultiCostGraph, permutation: Sequence[int]
) -> MultiCostGraph:
    """A copy of the graph with every cost vector permuted."""
    permuted = MultiCostGraph(graph.dim, directed=graph.directed)
    for node in graph.nodes():
        permuted.add_node(node, graph.coord(node))
    for u, v, cost in graph.edges():
        permuted.add_edge(u, v, tuple(cost[i] for i in permutation))
    return permuted


def scale_costs(graph: MultiCostGraph, factor: float) -> MultiCostGraph:
    """A copy of the graph with every cost multiplied by ``factor``."""
    scaled = MultiCostGraph(graph.dim, directed=graph.directed)
    for node in graph.nodes():
        scaled.add_node(node, graph.coord(node))
    for u, v, cost in graph.edges():
        scaled.add_edge(u, v, tuple(c * factor for c in cost))
    return scaled


def _cost_set(paths: Sequence[Path]) -> set[tuple[float, ...]]:
    return {path.cost for path in paths}


_SWAP_TOLERANCE = 1e-9


def _close(a: Sequence[float], b: Sequence[float], tolerance: float) -> bool:
    return all(
        abs(x - y) <= max(tolerance, tolerance * abs(y))
        for x, y in zip(a, b, strict=True)
    )


def _unmatched(
    costs: set[tuple[float, ...]],
    others: set[tuple[float, ...]],
    tolerance: float,
) -> list[tuple[float, ...]]:
    return sorted(
        cost
        for cost in costs
        if not any(_close(cost, other, tolerance) for other in others)
    )


def swap_errors(
    graph: MultiCostGraph, source: int, target: int
) -> list[str]:
    """Exact BBS must produce the same cost front in both directions.

    A reversed path sums the same edge costs in the opposite order, so
    equal fronts can differ by a few ULPs; matching uses a relative
    tolerance rather than exact set equality.
    """
    if graph.directed:
        return []
    forward = _cost_set(skyline_paths(graph, source, target).paths)
    backward = _cost_set(skyline_paths(graph, target, source).paths)
    forward_only = _unmatched(forward, backward, _SWAP_TOLERANCE)
    backward_only = _unmatched(backward, forward, _SWAP_TOLERANCE)
    if not forward_only and not backward_only:
        return []
    return [
        f"swap: exact skyline costs differ for ({source}, {target}) — "
        f"forward-only {forward_only[:3]}, "
        f"backward-only {backward_only[:3]}"
    ]


def permutation_errors(
    graph: MultiCostGraph,
    params: BackboneParams,
    queries: Sequence[tuple[int, int]],
    *,
    check_backbone: bool = True,
) -> list[str]:
    """Rotate the cost dimensions and re-answer every query."""
    dim = graph.dim
    permutation = tuple(range(1, dim)) + (0,)
    transformed = permute_costs(graph, permutation)
    problems: list[str] = []
    permuted_index = (
        build_backbone_index(transformed, params) if check_backbone else None
    )
    base_index = build_backbone_index(graph, params) if check_backbone else None
    for source, target in queries:
        expected = {
            tuple(cost[i] for i in permutation)
            for cost in _cost_set(skyline_paths(graph, source, target).paths)
        }
        observed = _cost_set(skyline_paths(transformed, source, target).paths)
        if expected != observed:
            problems.append(
                f"permutation: exact skyline costs differ for "
                f"({source}, {target})"
            )
        if permuted_index is None:
            continue
        expected = {
            tuple(cost[i] for i in permutation)
            for cost in _cost_set(
                backbone_query(base_index, source, target).paths
            )
        }
        observed = _cost_set(
            backbone_query(permuted_index, source, target).paths
        )
        if expected != observed:
            problems.append(
                f"permutation: backbone skyline costs differ for "
                f"({source}, {target})"
            )
    return problems


def scaling_errors(
    graph: MultiCostGraph,
    params: BackboneParams,
    queries: Sequence[tuple[int, int]],
    *,
    factor: float = SCALE_FACTOR,
    check_backbone: bool = True,
) -> list[str]:
    """Uniformly scale every cost and re-answer every query."""
    transformed = scale_costs(graph, factor)
    problems: list[str] = []
    scaled_index = (
        build_backbone_index(transformed, params) if check_backbone else None
    )
    base_index = build_backbone_index(graph, params) if check_backbone else None
    for source, target in queries:
        expected = {
            tuple(c * factor for c in cost)
            for cost in _cost_set(skyline_paths(graph, source, target).paths)
        }
        observed = _cost_set(skyline_paths(transformed, source, target).paths)
        if expected != observed:
            problems.append(
                f"scaling: exact skyline costs differ for ({source}, {target})"
            )
        if scaled_index is None:
            continue
        expected = {
            tuple(c * factor for c in cost)
            for cost in _cost_set(
                backbone_query(base_index, source, target).paths
            )
        }
        observed = _cost_set(
            backbone_query(scaled_index, source, target).paths
        )
        if expected != observed:
            problems.append(
                f"scaling: backbone skyline costs differ for "
                f"({source}, {target})"
            )
    return problems
