"""Concurrent-maintenance-under-load checking for multi-process serving.

The differential battery (:mod:`repro.qa.differential`) proves each
serving variant agrees with exact BBS on a *quiet* network.  This
module attacks the one failure mode unique to :mod:`repro.mp`: a
worker reading the shared CSR snapshot while maintenance swaps
generations underneath it — a torn read would surface as a response
whose answer matches *no* generation of the network.

The harness runs one :class:`~repro.mp.dispatcher.MPBatchServer` over a
seeded case while a background thread replays the case's structural
update script against the server's maintainer.  A second, identical
*twin* maintainer is kept one step ahead: before each op lands on the
live network, the same op is applied to the twin and the expected
answer of every workload query is computed there through an identical
single-process flat engine.  Every mp response is then checked
**bit-identically** against the expected answers of the generation it
is stamped with:

* a torn read produces an answer set matching no generation → caught;
* a stale cohort serving past its retirement still matches its own
  stamped generation → correct by construction, and the stamp proves
  the dispatcher never mixed generations within a batch;
* a worker error or missing response is its own discrepancy.

Reports reuse the differential shapes (:class:`CaseReport`,
:class:`FuzzReport`), so the CLI and CI render mp fuzz results exactly
like differential ones.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.maintenance import MaintainableIndex
from repro.obs.tracer import Tracer, resolve_tracer
from repro.qa.differential import CaseReport, Discrepancy, FuzzReport
from repro.qa.invariants import identical_answer_errors
from repro.qa.workload import CaseSpec, apply_updates, build_case, qa_params
from repro.service.engine import SkylineQueryEngine


@dataclass(frozen=True)
class MPLoadConfig:
    """Shape of one concurrent-maintenance load case."""

    workers: int = 2
    batches_per_generation: int = 2
    # Seconds the updater sleeps between ops so batches land on every
    # generation, not just the last one.
    update_pause: float = 0.05
    mode: str = "auto"


def _answer_signature(engine: SkylineQueryEngine, queries, mode: str):
    """Expected answers of every query at the engine's generation."""
    return {
        query: engine.query(query[0], query[1], mode=mode).paths
        for query in queries
    }


def run_mp_case(
    spec: CaseSpec,
    config: MPLoadConfig | None = None,
    *,
    tracer: Tracer | None = None,
) -> CaseReport:
    """Serve one seeded case through mp workers under live maintenance."""
    from repro.mp.dispatcher import MPBatchServer

    config = config if config is not None else MPLoadConfig()
    tracer = resolve_tracer(tracer)
    report = CaseReport(spec=spec)
    with tracer.span(
        "qa.mp_case", seed=spec.seed, workers=config.workers
    ) as span:
        case = build_case(spec)
        twin_case = build_case(spec)  # deterministic: identical network
        params = qa_params(spec)
        live = MaintainableIndex(case.graph, params)
        twin = MaintainableIndex(twin_case.graph, params)
        # cache_size=0: expected answers must come from a fresh search
        # at each generation, never a stale cached one.
        oracle = SkylineQueryEngine(
            maintainer=twin, cache_size=0, engine="flat"
        )

        # Keep only queries whose endpoints survive the whole script
        # (build_case shields endpoints from delete_node, but a replay
        # keeps this harness honest if that invariant ever changes).
        survivors = set(twin_case.graph.nodes())
        for op in case.updates:
            if op[0] == "delete_node":
                survivors.discard(op[1])
        queries = [
            q for q in case.queries
            if q[0] in survivors and q[1] in survivors and q[0] != q[1]
        ]
        if not queries:
            return report

        # expected[generation][query] — written by the updater thread
        # strictly before the live maintainer reaches that generation,
        # so any generation a response can be stamped with is covered.
        expected = {0: _answer_signature(oracle, queries, config.mode)}

        def updater():
            for op in case.updates:
                time.sleep(config.update_pause)
                applied = apply_updates(twin, [op])
                if not applied:
                    continue
                expected[twin.generation] = _answer_signature(
                    oracle, queries, config.mode
                )
                apply_updates(live, [op])
                report.updates_applied += 1

        with MPBatchServer(maintainer=live, workers=config.workers) as server:
            thread = threading.Thread(target=updater, daemon=True)
            thread.start()
            done = False
            while not done:
                done = not thread.is_alive()
                for _ in range(config.batches_per_generation):
                    result = server.submit(queries, mode=config.mode)
                    report.queries_checked += len(queries)
                    span.count("queries", len(queries))
                    for error in result.errors:
                        report.discrepancies.append(
                            Discrepancy(
                                spec.seed, "mp_error", "worker",
                                (error.source, error.targets[0]),
                                error.detail,
                            )
                        )
                    for query, response in zip(queries, result.responses):
                        if response is None:
                            continue  # already reported via errors
                        generation = response.generation
                        baseline = expected.get(generation)
                        if baseline is None:
                            report.discrepancies.append(
                                Discrepancy(
                                    spec.seed, "mp_generation", "dispatcher",
                                    query,
                                    f"response stamped with unpublished "
                                    f"generation {generation}",
                                )
                            )
                            continue
                        for detail in identical_answer_errors(
                            f"expected@g{generation}", baseline[query],
                            "mp", response.paths,
                        ):
                            report.discrepancies.append(
                                Discrepancy(
                                    spec.seed, "mp_identity",
                                    f"gen{generation}", query, detail,
                                )
                            )
                        report.variants_checked += 1
            thread.join()
            # One final batch after the last swap settles, so the
            # terminal generation is always exercised.
            final = server.submit(queries, mode=config.mode)
            report.queries_checked += len(queries)
            for query, response in zip(queries, final.responses):
                if response is None or response.generation != live.generation:
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "mp_generation", "dispatcher", query,
                            f"final batch served generation "
                            f"{None if response is None else response.generation}"
                            f" behind maintainer {live.generation}",
                        )
                    )
                    continue
                for detail in identical_answer_errors(
                    f"expected@g{response.generation}",
                    expected[response.generation][query],
                    "mp", response.paths,
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "mp_identity",
                            f"gen{response.generation}", query, detail,
                        )
                    )
                report.variants_checked += 1

        if span.enabled:
            span.set(
                discrepancies=len(report.discrepancies),
                queries=report.queries_checked,
                updates=report.updates_applied,
            )
        span.count("discrepancies", len(report.discrepancies))
    return report


def fuzz_mp(
    seeds,
    config: MPLoadConfig | None = None,
    *,
    n_nodes: int = 70,
    n_queries: int = 5,
    n_updates: int = 3,
    tracer: Tracer | None = None,
    on_case=None,
) -> FuzzReport:
    """Run the mp load battery over a seed range."""
    config = config if config is not None else MPLoadConfig()
    tracer = resolve_tracer(tracer)
    fuzz_report = FuzzReport()
    with tracer.span("qa.mp_fuzz") as span:
        for seed in seeds:
            spec = CaseSpec.from_seed(
                seed,
                n_nodes=n_nodes,
                n_queries=n_queries,
                n_updates=n_updates,
            )
            case_report = run_mp_case(spec, config, tracer=tracer)
            fuzz_report.cases.append(case_report)
            if on_case is not None:
                on_case(case_report)
        if span.enabled:
            span.set(
                cases=len(fuzz_report.cases),
                discrepancies=len(fuzz_report.discrepancies),
            )
    return fuzz_report
