"""Minimizing reducer: shrink a failing (graph, query) pair.

A fuzz discrepancy on a 70-node network is a poor debugging artifact;
this module applies greedy delta debugging to the graph's edge list —
drop half, then a quarter, ..., then single edge entries — keeping any
removal under which the failure predicate still fires, until no single
edge can be removed.  Nodes disappear implicitly when their last edge
does (query endpoints are pinned).

The default predicate re-runs the *static* differential battery on one
query (exact BBS vs. a freshly built backbone index: validity, mutual
non-dominance, dominance consistency); maintenance- or engine-level
failures are reported unshuffled with their seed and op list instead,
since replaying an update script against a shrinking graph rarely
stays meaningful.

:func:`emit_fixture` renders the reduced case as a self-contained
pytest function, ready to paste into ``tests/`` as a regression test.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.builder import build_backbone_index
from repro.core.params import BackboneParams
from repro.core.query import backbone_query
from repro.graph.mcrn import MultiCostGraph
from repro.qa.invariants import (
    approximation_errors,
    non_dominance_errors,
    path_errors,
)
from repro.paths.path import Path
from repro.search.bbs import skyline_paths

Edge = tuple[int, int, tuple[float, ...]]
Predicate = Callable[[MultiCostGraph, int, int], list[str]]


@dataclass
class ShrunkCase:
    """The reduced reproduction of one failing check."""

    edges: list[Edge]
    source: int
    target: int
    dim: int
    problems: list[str] = field(default_factory=list)
    trials: int = 0

    @property
    def nodes(self) -> set[int]:
        found = {self.source, self.target}
        for u, v, _ in self.edges:
            found.update((u, v))
        return found


def static_differential_problems(
    graph: MultiCostGraph,
    source: int,
    target: int,
    *,
    params: BackboneParams | None = None,
    rac_bound: float | None = None,
) -> list[str]:
    """The default shrink predicate: one query, exact vs. backbone."""
    if not (graph.has_node(source) and graph.has_node(target)):
        return []
    params = params if params is not None else BackboneParams(
        m_max=10, m_min=2, p=0.2, landmark_count=4
    )
    exact = skyline_paths(graph, source, target).paths
    index = build_backbone_index(graph, params)
    result = backbone_query(index, source, target)
    problems: list[str] = []
    for path in result.paths:
        walk = path
        if not path.is_trivial():
            # Answers may traverse aggressive-summarization shortcuts;
            # validity is judged on the expanded original-graph walk.
            try:
                walk = Path(index.expand_path(path).nodes, path.cost)
            except Exception as error:
                problems.append(f"expansion of {path} failed: {error}")
                continue
        problems.extend(path_errors(graph, walk, source=source, target=target))
    problems.extend(non_dominance_errors(result.paths))
    problems.extend(
        approximation_errors(result.paths, exact, rac_bound=rac_bound)
    )
    return problems


def _build(edges: Sequence[Edge], source: int, target: int, dim: int):
    graph = MultiCostGraph(dim)
    graph.add_node(source)
    graph.add_node(target)
    for u, v, cost in edges:
        graph.add_edge(u, v, cost)
    return graph


def shrink_case(
    graph: MultiCostGraph,
    source: int,
    target: int,
    *,
    predicate: Predicate | None = None,
    max_trials: int = 2000,
) -> ShrunkCase | None:
    """Reduce the graph while the predicate keeps reporting problems.

    Returns None when the predicate does not fire on the full input
    (nothing to shrink).  Deterministic: edge order comes from the
    graph, chunk sweeps are in order, and the first successful removal
    in a sweep is taken.
    """
    predicate = (
        predicate if predicate is not None else static_differential_problems
    )
    edges: list[Edge] = [(u, v, tuple(c)) for u, v, c in graph.edges()]
    dim = graph.dim
    try:
        problems = predicate(
            _build(edges, source, target, dim), source, target
        )
    except Exception as error:  # a crash is also a reproduction
        problems = [f"predicate raised {type(error).__name__}: {error}"]
    if not problems:
        return None

    trials = 0
    chunk = max(1, len(edges) // 2)
    while chunk >= 1 and trials < max_trials:
        reduced_this_pass = False
        start = 0
        while start < len(edges) and trials < max_trials:
            candidate = edges[:start] + edges[start + chunk :]
            trials += 1
            try:
                found = predicate(
                    _build(candidate, source, target, dim), source, target
                )
            except Exception as error:  # a crash is also a reproduction
                found = [f"predicate raised {type(error).__name__}: {error}"]
            if found:
                edges = candidate
                problems = found
                reduced_this_pass = True
                # Retry the same offset: the next chunk slid into place.
            else:
                start += chunk
        if chunk == 1 and not reduced_this_pass:
            break
        if not reduced_this_pass or chunk > len(edges):
            chunk = max(1, chunk // 2) if chunk > 1 else 0
    return ShrunkCase(
        edges=edges,
        source=source,
        target=target,
        dim=dim,
        problems=problems,
        trials=trials,
    )


_FIXTURE_TEMPLATE = '''\
"""Regression fixture generated by `repro qa shrink`{origin}.

Reproduces: {summary}
"""

from repro.core.builder import build_backbone_index
from repro.core.params import BackboneParams
from repro.core.query import backbone_query
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.qa.invariants import (
    approximation_errors,
    non_dominance_errors,
    path_errors,
)
from repro.search.bbs import skyline_paths

EDGES = [
{edges}
]
SOURCE, TARGET = {source}, {target}
PARAMS = BackboneParams(m_max=10, m_min=2, p=0.2, landmark_count=4)


def {name}():
    graph = MultiCostGraph({dim})
    graph.add_node(SOURCE)
    graph.add_node(TARGET)
    for u, v, cost in EDGES:
        graph.add_edge(u, v, cost)
    exact = skyline_paths(graph, SOURCE, TARGET).paths
    index = build_backbone_index(graph, PARAMS)
    result = backbone_query(index, SOURCE, TARGET)
    problems = []
    for path in result.paths:
        walk = path
        if not path.is_trivial():
            walk = Path(index.expand_path(path).nodes, path.cost)
        problems += path_errors(graph, walk, source=SOURCE, target=TARGET)
    problems += non_dominance_errors(result.paths)
    problems += approximation_errors(result.paths, exact)
    assert not problems, problems
'''


def emit_fixture(
    shrunk: ShrunkCase,
    *,
    name: str = "test_qa_shrunk_regression",
    seed: int | None = None,
) -> str:
    """Render a shrunk case as a ready-to-paste pytest regression test."""
    edge_lines = "\n".join(
        f"    ({u}, {v}, {cost!r})," for u, v, cost in shrunk.edges
    )
    summary = shrunk.problems[0] if shrunk.problems else "(no problem recorded)"
    return _FIXTURE_TEMPLATE.format(
        origin=f" (seed {seed})" if seed is not None else "",
        summary=summary,
        edges=edge_lines,
        source=shrunk.source,
        target=shrunk.target,
        dim=shrunk.dim,
        name=name,
    )
