"""The differential runner: every answer path, cross-checked five ways.

For each seeded case the runner answers every workload query through
every serving variant the repository has grown and checks them against
each other and against the exact BBS oracle:

===============  ====================================================
variant          what it exercises
===============  ====================================================
``exact``        BBS with exact reverse-Dijkstra bounds (the oracle)
``backbone``     :func:`repro.core.query.backbone_query` on a fresh
                 index
``store_eager``  the same index after a binary-store round trip
``store_lazy``   ditto, with label levels faulted in on first access
``engine``       the cached service engine (uncached run, cache-fill
                 run, and cache-hit run)
``maintained``   the index after the case's update script replayed
                 through :class:`~repro.core.maintenance
                 .MaintainableIndex`, re-checked against a fresh exact
                 oracle on the updated network
``exact_flat``   BBS through the CSR kernel (:mod:`repro.accel`),
                 required bit-identical to the python oracle
``backbone_flat`` :func:`backbone_query` with ``engine="flat"``,
                 required bit-identical to the python backbone answer
``exact_batch``  BBS through the bucket-vectorized batch kernel
                 (:mod:`repro.accel.batch_kernel`), required
                 answer-set-equal to the oracle — same (cost, nodes)
                 answer set, counters free to differ
``exact_fused``  the whole case's queries served by one
                 :func:`~repro.accel.batch_kernel.fused_skyline_batch`
                 traversal, each answer required answer-set-equal to
                 the oracle (the same batch-tier contract)
===============  ====================================================

Hard invariants (any violation is a discrepancy): path validity and
correct pricing in the graph served, mutual non-dominance, dominance
consistency with the exact skyline, RAC within the configured bound,
and bit-identical answers wherever two variants must agree (cache vs.
uncached, store round trips vs. fresh).  Metamorphic relations from
:mod:`repro.qa.metamorphic` run per case as well.

The runner is instrumented with :mod:`repro.obs` — each case runs in a
``qa.case`` span counting queries, variants, and discrepancies — and
reports findings as data so the CLI, CI smoke job, and the shrinker
can all consume them.
"""

from __future__ import annotations

import tempfile
from collections.abc import Iterable, Sequence
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path as FilePath

from repro.core.index import BackboneIndex
from repro.core.maintenance import MaintainableIndex
from repro.core.query import backbone_query
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.path import Path
from repro.qa import metamorphic
from repro.qa.invariants import (
    answer_set_errors,
    approximation_errors,
    identical_answer_errors,
    non_dominance_errors,
    path_errors,
)
from repro.qa.workload import (
    CaseSpec,
    QACase,
    apply_updates,
    build_case,
    qa_params,
)
from repro.search.bbs import skyline_paths
from repro.search.onetoall import one_to_all_skyline
from repro.service.engine import SkylineQueryEngine


@dataclass(frozen=True)
class QAConfig:
    """What the differential runner checks and how strictly."""

    # Quality tripwire, not a guarantee: per-query RAC on these small
    # aggressive-parameter networks peaks around 12 empirically (a lone
    # cheap exact path the summarized labels miss); 16 flags genuine
    # quality regressions without tripping on known approximation loss.
    rac_bound: float = 16.0
    check_store: bool = True
    check_engine: bool = True
    check_updates: bool = True
    check_metamorphic: bool = True
    check_flat: bool = True
    # Batch-kernel differential: the bucket-vectorized kernel is held
    # to answer-set equality with the exact oracle (identical (cost,
    # node-sequence) answer sets; counters and expansion order are
    # explicitly unchecked — see repro.accel.batch_kernel).
    check_batch: bool = True
    # Corridor-tier differential (off by default: the dedicated
    # quality tripwire in repro.qa.quality is the deep check; this
    # variant just keeps the serving path honest inside the battery).
    check_corridor: bool = False
    # One-to-all differential: the flat CSR one-to-all kernel must be
    # bit-identical to the scalar search; the bucket tier must be
    # answer-set-equal (same contract as the point-to-point kernels).
    check_onetoall: bool = True
    # Construction differential: a flat-pipeline build (engine="batch")
    # must serve bit-identical answers to the scalar reference build.
    check_build: bool = True
    metamorphic_queries: int = 2
    cache_size: int = 64


@dataclass(frozen=True)
class Discrepancy:
    """One confirmed cross-check violation."""

    seed: int
    check: str
    variant: str
    query: tuple[int, int] | None
    detail: str

    def __str__(self) -> str:
        where = f" query={self.query}" if self.query else ""
        return (
            f"seed {self.seed} [{self.check}/{self.variant}]{where}: "
            f"{self.detail}"
        )


@dataclass
class CaseReport:
    """Everything one case produced."""

    spec: CaseSpec
    discrepancies: list[Discrepancy] = field(default_factory=list)
    queries_checked: int = 0
    variants_checked: int = 0
    updates_applied: int = 0

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class FuzzReport:
    """Aggregate over a fuzz run."""

    cases: list[CaseReport] = field(default_factory=list)

    @property
    def discrepancies(self) -> list[Discrepancy]:
        return [d for case in self.cases for d in case.discrepancies]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)


def _check_answer_set(
    report: CaseReport,
    *,
    variant: str,
    graph,
    query: tuple[int, int],
    paths: Sequence[Path],
    exact: Sequence[Path] | None,
    rac_bound: float | None,
    expand=None,
) -> None:
    """Run the per-variant hard invariants on one answer set.

    ``expand`` is the owning index's ``expand_path`` for variants whose
    answers may traverse aggressive-summarization shortcuts; the
    abstract cost must then be achievable along the *expanded* walk.
    """
    seed = report.spec.seed
    source, target = query
    problems: list[tuple[str, str]] = []
    for path in paths:
        walk = path
        if expand is not None and not path.is_trivial():
            try:
                walk = Path(expand(path).nodes, path.cost)
            except Exception as error:
                problems.append(
                    ("validity", f"expansion of {path} failed: {error}")
                )
                continue
        for problem in path_errors(graph, walk, source=source, target=target):
            problems.append(("validity", problem))
    for problem in non_dominance_errors(paths):
        problems.append(("non_dominance", problem))
    if exact is not None:
        for problem in approximation_errors(paths, exact, rac_bound=rac_bound):
            problems.append(("dominance_consistency", problem))
    for check, detail in problems:
        report.discrepancies.append(
            Discrepancy(seed, check, variant, query, detail)
        )
    report.variants_checked += 1


def run_case(
    spec: CaseSpec,
    config: QAConfig | None = None,
    *,
    tracer: Tracer | None = None,
) -> CaseReport:
    """Run the full differential battery on one seeded case."""
    config = config if config is not None else QAConfig()
    tracer = resolve_tracer(tracer)
    report = CaseReport(spec=spec)
    with tracer.span(
        "qa.case", seed=spec.seed, style=spec.style, dim=spec.dim
    ) as span, ExitStack() as stack:
        case = build_case(spec)
        params = qa_params(spec)
        maintainer = MaintainableIndex(case.graph, params)
        graph = maintainer.graph
        index = maintainer.index

        loaded: dict[str, BackboneIndex] = {}
        if config.check_store:
            # The store file must outlive the query loop so the lazy
            # variant faults label levels in *during* querying.
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-qa-")
            )
            store_path = FilePath(tmp) / "case.rbi"
            index.save(store_path, format="binary")
            loaded["store_eager"] = BackboneIndex.load(
                store_path, graph, lazy=False
            )
            loaded["store_lazy"] = BackboneIndex.load(
                store_path, graph, lazy=True
            )

        engine = (
            SkylineQueryEngine(
                maintainer=maintainer, cache_size=config.cache_size
            )
            if config.check_engine
            else None
        )

        case_csr = None
        fused_answers = None
        if config.check_flat or config.check_batch or config.check_onetoall:
            from repro.accel.csr import CSRSnapshot

            case_csr = CSRSnapshot.from_graph(graph, tracer=tracer)

        built_flat = None
        if config.check_build:
            # Construction bit-identity: the flat pipeline (one-pass
            # discovery, local scans, CSR label kernel, steal-merge)
            # must produce an index serving the exact answers of the
            # scalar reference build, query for query.
            from repro.core.builder import build_backbone_index

            built_flat = build_backbone_index(graph, params, engine="batch")
        if config.check_batch and case_csr is not None:
            # The fused serving-batch kernel answers the whole case in
            # one shared traversal; each per-query answer is checked
            # against the oracle below, under the batch tier's
            # answer-set contract.
            from repro.accel.batch_kernel import fused_skyline_batch

            fused_answers = fused_skyline_batch(
                graph, case_csr, case.queries
            )

        for index_in_case, query in enumerate(case.queries):
            source, target = query
            exact = skyline_paths(graph, source, target).paths
            span.count("queries")
            report.queries_checked += 1
            _check_answer_set(
                report, variant="exact", graph=graph, query=query,
                paths=exact, exact=None, rac_bound=None,
            )

            fresh = backbone_query(index, source, target).paths
            _check_answer_set(
                report, variant="backbone", graph=graph, query=query,
                paths=fresh, exact=exact, rac_bound=config.rac_bound,
                expand=index.expand_path,
            )

            if built_flat is not None:
                from_flat_build = backbone_query(
                    built_flat, source, target
                ).paths
                for detail in identical_answer_errors(
                    "backbone", fresh, "backbone_flat_build", from_flat_build
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "build_identity",
                            "backbone_flat_build", query, detail,
                        )
                    )
                report.variants_checked += 1

            if config.check_onetoall and case_csr is not None:
                # One-to-all kernel tiers, anchored at the query source:
                # flat must be bit-identical to the scalar search,
                # batch answer-set-equal — per reached node.
                scalar_all = one_to_all_skyline(graph, source)
                flat_all = one_to_all_skyline(
                    graph, source, engine="flat", snapshot=case_csr
                )
                batch_all = one_to_all_skyline(
                    graph, source, engine="batch", snapshot=case_csr
                )
                set_compare = lambda *a: answer_set_errors(*a, graph)  # noqa: E731
                for name, check, compare, other in (
                    ("exact_onetoall_flat", "onetoall_identity",
                     identical_answer_errors, flat_all),
                    ("exact_onetoall_batch", "onetoall_answer_set",
                     set_compare, batch_all),
                ):
                    if set(scalar_all) != set(other):
                        report.discrepancies.append(
                            Discrepancy(
                                spec.seed, check, name, query,
                                f"reached sets differ: scalar "
                                f"{len(scalar_all)} nodes vs "
                                f"{len(other)}",
                            )
                        )
                    else:
                        for node in scalar_all:
                            for detail in compare(
                                "scalar", scalar_all[node], name, other[node]
                            ):
                                report.discrepancies.append(
                                    Discrepancy(
                                        spec.seed, check, name, query,
                                        f"node {node}: {detail}",
                                    )
                                )
                    report.variants_checked += 1

            if config.check_batch and case_csr is not None:
                # The batch kernel's weaker tier: answer-set equality
                # with the oracle (not bit identity — expansion order
                # and counters diverge by design).
                exact_batch = skyline_paths(
                    graph, source, target, engine="batch", snapshot=case_csr
                ).paths
                for detail in answer_set_errors(
                    "exact", exact, "exact_batch", exact_batch, graph
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "batch_answer_set", "exact_batch",
                            query, detail,
                        )
                    )
                report.variants_checked += 1

            if fused_answers is not None:
                for detail in answer_set_errors(
                    "exact", exact, "exact_fused",
                    fused_answers[index_in_case].paths, graph,
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "batch_answer_set", "exact_fused",
                            query, detail,
                        )
                    )
                report.variants_checked += 1

            if config.check_flat and case_csr is not None:
                # The CSR kernel must be bit-identical, not merely
                # equivalent: same paths, same order.
                exact_flat = skyline_paths(
                    graph, source, target, engine="flat", snapshot=case_csr
                ).paths
                for detail in identical_answer_errors(
                    "exact", exact, "exact_flat", exact_flat
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "flat_identity", "exact_flat", query,
                            detail,
                        )
                    )
                report.variants_checked += 1
                backbone_flat = backbone_query(
                    index, source, target, engine="flat"
                ).paths
                _check_answer_set(
                    report, variant="backbone_flat", graph=graph, query=query,
                    paths=backbone_flat, exact=exact,
                    rac_bound=config.rac_bound, expand=index.expand_path,
                )
                for detail in identical_answer_errors(
                    "backbone", fresh, "backbone_flat", backbone_flat
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "flat_identity", "backbone_flat",
                            query, detail,
                        )
                    )

            for name, store_index in loaded.items():
                round_tripped = backbone_query(
                    store_index, source, target
                ).paths
                _check_answer_set(
                    report, variant=name, graph=graph, query=query,
                    paths=round_tripped, exact=exact,
                    rac_bound=config.rac_bound, expand=store_index.expand_path,
                )
                for detail in identical_answer_errors(
                    "backbone", fresh, name, round_tripped
                ):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "store_identity", name, query, detail
                        )
                    )

            if engine is not None:
                uncached = engine.query(
                    source, target, mode="approx", use_cache=False
                )
                first = engine.query(source, target, mode="approx")
                cached = engine.query(source, target, mode="approx")
                _check_answer_set(
                    report, variant="engine", graph=graph, query=query,
                    paths=first.paths, exact=exact,
                    rac_bound=config.rac_bound, expand=index.expand_path,
                )
                for label, other in (
                    ("engine_uncached", uncached.paths),
                    ("engine_cached", cached.paths),
                ):
                    for detail in identical_answer_errors(
                        "engine", first.paths, label, other
                    ):
                        report.discrepancies.append(
                            Discrepancy(
                                spec.seed, "cache_identity", label, query,
                                detail,
                            )
                        )
                if not cached.cache_hit:
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "cache_identity", "engine_cached",
                            query, "repeat query was not served from cache",
                        )
                    )
                if config.check_corridor:
                    # Corridor answers are real original-graph paths
                    # (no expansion) and must stay dominance-consistent
                    # with the exact oracle like any approximation.
                    corridor = engine.query(source, target, mode="corridor")
                    _check_answer_set(
                        report, variant="engine_corridor", graph=graph,
                        query=query, paths=corridor.paths, exact=exact,
                        rac_bound=config.rac_bound,
                    )

        if config.check_updates and case.updates:
            report.updates_applied = apply_updates(maintainer, case.updates)
            if report.updates_applied:
                span.count("updates", report.updates_applied)
                updated = maintainer.graph
                for query in case.queries:
                    source, target = query
                    if not (
                        updated.has_node(source) and updated.has_node(target)
                    ):
                        continue
                    exact = skyline_paths(updated, source, target).paths
                    maintained = backbone_query(
                        maintainer.index, source, target
                    ).paths
                    _check_answer_set(
                        report, variant="maintained", graph=updated,
                        query=query, paths=maintained, exact=exact,
                        rac_bound=config.rac_bound,
                        expand=maintainer.index.expand_path,
                    )
                    if engine is not None:
                        served = engine.query(source, target, mode="approx")
                        _check_answer_set(
                            report, variant="engine_maintained",
                            graph=updated, query=query, paths=served.paths,
                            exact=exact, rac_bound=config.rac_bound,
                            expand=maintainer.index.expand_path,
                        )
                        if served.generation != maintainer.generation:
                            report.discrepancies.append(
                                Discrepancy(
                                    spec.seed, "invalidation",
                                    "engine_maintained", query,
                                    f"served generation {served.generation} "
                                    f"behind index generation "
                                    f"{maintainer.generation}",
                                )
                            )

        if config.check_metamorphic:
            base = case.graph
            for query in case.queries:
                for detail in metamorphic.swap_errors(base, *query):
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "metamorphic", "swap", query, detail
                        )
                    )
            subset = case.queries[: config.metamorphic_queries]
            for check, problems in (
                ("permutation",
                 metamorphic.permutation_errors(base, params, subset)),
                ("scaling",
                 metamorphic.scaling_errors(base, params, subset)),
            ):
                for detail in problems:
                    report.discrepancies.append(
                        Discrepancy(
                            spec.seed, "metamorphic", check, None, detail
                        )
                    )

        if span.enabled:
            span.set(
                discrepancies=len(report.discrepancies),
                queries=report.queries_checked,
                updates=report.updates_applied,
            )
        span.count("discrepancies", len(report.discrepancies))
    return report


def fuzz(
    seeds: Iterable[int],
    config: QAConfig | None = None,
    *,
    n_nodes: int = 70,
    n_queries: int = 5,
    n_updates: int = 3,
    tracer: Tracer | None = None,
    on_case=None,
) -> FuzzReport:
    """Run the differential battery over a seed range.

    ``on_case`` is an optional callback invoked with each finished
    :class:`CaseReport` (the CLI uses it for progress output).
    """
    config = config if config is not None else QAConfig()
    tracer = resolve_tracer(tracer)
    fuzz_report = FuzzReport()
    with tracer.span("qa.fuzz") as span:
        for seed in seeds:
            spec = CaseSpec.from_seed(
                seed,
                n_nodes=n_nodes,
                n_queries=n_queries,
                n_updates=n_updates,
            )
            case_report = run_case(spec, config, tracer=tracer)
            fuzz_report.cases.append(case_report)
            if on_case is not None:
                on_case(case_report)
        if span.enabled:
            span.set(
                cases=len(fuzz_report.cases),
                discrepancies=len(fuzz_report.discrepancies),
            )
    return fuzz_report
