"""repro.qa — randomized differential testing and invariant checking.

The serving stack (engine + cache + batch + store + maintenance) is
only trustworthy if its answers continuously agree with exact BBS, the
guarantee the paper's quality metrics are defined against.  This
package makes that a running check rather than a hope:

* :mod:`repro.qa.workload` — seeded random graphs, query workloads,
  and structural-update scripts;
* :mod:`repro.qa.invariants` — executable invariants (path validity
  and pricing, mutual non-dominance, dominance consistency with the
  exact skyline, bit-identical variant agreement);
* :mod:`repro.qa.differential` — the runner crossing exact BBS, the
  fresh index, binary-store round trips (eager and lazy), the cached
  engine, and the maintained index over every workload query;
* :mod:`repro.qa.metamorphic` — oracle-free relations (source/target
  swap, cost-dimension permutation, uniform scaling);
* :mod:`repro.qa.shrink` — delta-debugging reducer emitting
  ready-to-paste regression fixtures;
* :mod:`repro.qa.mp_load` — concurrent-maintenance-under-load checking
  for multi-process serving: every worker response bit-matched against
  the expected answers of the generation it is stamped with;
* :mod:`repro.qa.quality` — the corridor quality tripwire: corridor
  answers valid, non-dominated, dominance-consistent with exact, and
  never *reported* as better than exact.

Exposed on the command line as ``repro qa fuzz`` / ``qa replay`` /
``qa shrink``; CI runs a fixed-seed fuzz smoke on every change.
"""

from repro.qa.differential import (
    CaseReport,
    Discrepancy,
    FuzzReport,
    QAConfig,
    fuzz,
    run_case,
)
from repro.qa.invariants import (
    answer_set_errors,
    approximation_errors,
    cost_skyline_errors,
    identical_answer_errors,
    non_dominance_errors,
    path_errors,
)
from repro.qa.mp_load import MPLoadConfig, fuzz_mp, run_mp_case
from repro.qa.quality import (
    check_corridor_quality,
    run_quality_case,
    run_quality_tripwire,
)
from repro.qa.shrink import (
    ShrunkCase,
    emit_fixture,
    shrink_case,
    static_differential_problems,
)
from repro.qa.workload import CaseSpec, QACase, apply_updates, build_case

__all__ = [
    "CaseReport",
    "CaseSpec",
    "Discrepancy",
    "FuzzReport",
    "MPLoadConfig",
    "QACase",
    "QAConfig",
    "ShrunkCase",
    "answer_set_errors",
    "apply_updates",
    "approximation_errors",
    "build_case",
    "check_corridor_quality",
    "cost_skyline_errors",
    "emit_fixture",
    "fuzz",
    "fuzz_mp",
    "identical_answer_errors",
    "non_dominance_errors",
    "path_errors",
    "run_case",
    "run_mp_case",
    "run_quality_case",
    "run_quality_tripwire",
    "shrink_case",
    "static_differential_problems",
]
