"""The corridor quality tripwire: approximate answers, hard-checked.

The corridor tier (:mod:`repro.approx`) trades exactness for latency,
so its correctness contract is weaker than the bit-identity checks the
differential battery enforces elsewhere — but it is still a contract,
and this module makes every clause executable:

* every corridor path is a valid, correctly-priced original-graph walk
  between the query endpoints (no shortcut expansion involved — the
  corridor search runs on the original graph);
* the corridor answer is mutually non-dominated;
* it is dominance-consistent with the exact skyline: no corridor path
  may dominate an exact skyline path beyond float tolerance (corridor
  paths are real paths, so that would mean the "exact" answer missed
  a path — a search bug, not approximation loss);
* measured hypervolume never exceeds the exact answer's under a shared
  reference point (same reasoning, stated volumetrically);
* the engine's *reported* online score
  (:class:`~repro.approx.quality.QualityReport`) stays within [0, 1]
  and claims the exact reference when one is cached — a reported
  retention above 1 would mean the serving layer advertises an
  approximation as better than exact.

Violations are reported through the same
:class:`~repro.qa.differential.Discrepancy` / ``CaseReport`` /
``FuzzReport`` shapes as the differential runner, so the CLI
(``repro qa quality``) and CI consume them identically.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.eval.hypervolume import hypervolume, reference_point
from repro.obs.tracer import Tracer, resolve_tracer
from repro.qa.differential import CaseReport, Discrepancy, FuzzReport
from repro.qa.invariants import (
    approximation_errors,
    non_dominance_errors,
    path_errors,
)
from repro.qa.workload import CaseSpec, build_case, qa_params
from repro.service.engine import SkylineQueryEngine

# Relative float tolerance for the HV(corridor) <= HV(exact)
# comparison: both volumes come from the same sweep under the same
# reference point but sum their slabs in different orders, so the two
# values can differ by a few ulps on large volumes.  Anything beyond
# relative rounding is a genuine violation.
HV_EPS = 1e-9


def check_corridor_quality(
    engine: SkylineQueryEngine,
    report: CaseReport,
    queries: Iterable[tuple[int, int]],
) -> None:
    """Run the corridor contract over ``queries`` on a warm engine.

    Each query runs exact first (``mode="exact"``, filling the result
    cache so the corridor answer is scored against a true reference),
    then corridor.  Violations append to ``report.discrepancies``.
    """
    seed = report.spec.seed
    graph = engine.graph
    for query in queries:
        source, target = query
        exact = engine.query(source, target, mode="exact").paths
        served = engine.query(source, target, mode="corridor")
        corridor = served.paths
        report.queries_checked += 1
        report.variants_checked += 1

        problems: list[tuple[str, str]] = []
        for path in corridor:
            for detail in path_errors(
                graph, path, source=source, target=target
            ):
                problems.append(("validity", detail))
        for detail in non_dominance_errors(corridor):
            problems.append(("non_dominance", detail))
        for detail in approximation_errors(corridor, exact, rac_bound=None):
            problems.append(("dominance_consistency", detail))

        if corridor and exact:
            reference = reference_point(corridor, exact)
            hv_corridor = hypervolume([p.cost for p in corridor], reference)
            hv_exact = hypervolume([p.cost for p in exact], reference)
            if hv_corridor > hv_exact + HV_EPS * max(1.0, hv_exact):
                problems.append((
                    "hypervolume",
                    f"HV(corridor)={hv_corridor!r} exceeds "
                    f"HV(exact)={hv_exact!r}",
                ))
        elif corridor and not exact:
            problems.append((
                "hypervolume",
                f"corridor found {len(corridor)} paths where exact found "
                "none",
            ))

        quality = served.quality
        if quality is None:
            problems.append(
                ("reported_quality", "corridor response carries no report")
            )
        else:
            ratio = quality.hypervolume_ratio
            if ratio is not None and not 0.0 <= ratio <= 1.0:
                problems.append((
                    "reported_quality",
                    f"reported hypervolume_ratio {ratio!r} outside [0, 1]",
                ))
            if quality.reference != "exact_cached":
                problems.append((
                    "reported_quality",
                    f"scored against {quality.reference!r} although the "
                    "exact answer was cached",
                ))

        for check, detail in problems:
            report.discrepancies.append(
                Discrepancy(seed, check, "corridor", query, detail)
            )


def run_quality_case(
    spec: CaseSpec,
    *,
    radius: int = 2,
    tracer: Tracer | None = None,
) -> CaseReport:
    """Build one seeded case and run the corridor contract on it."""
    tracer = resolve_tracer(tracer)
    report = CaseReport(spec=spec)
    with tracer.span(
        "qa.quality.case", seed=spec.seed, style=spec.style, dim=spec.dim
    ) as span:
        case = build_case(spec)
        engine = SkylineQueryEngine(
            case.graph, params=qa_params(spec), corridor_radius=radius
        )
        engine.warm()
        check_corridor_quality(engine, report, case.queries)
        if span.enabled:
            span.set(
                discrepancies=len(report.discrepancies),
                queries=report.queries_checked,
            )
        span.count("discrepancies", len(report.discrepancies))
    return report


def run_quality_tripwire(
    seeds: Iterable[int],
    *,
    radius: int = 2,
    n_nodes: int = 70,
    n_queries: int = 5,
    tracer: Tracer | None = None,
    on_case=None,
) -> FuzzReport:
    """The corridor quality tripwire over a seed range.

    ``on_case`` is an optional callback invoked with each finished
    :class:`CaseReport` (the CLI uses it for progress output).
    """
    tracer = resolve_tracer(tracer)
    fuzz_report = FuzzReport()
    with tracer.span("qa.quality") as span:
        for seed in seeds:
            spec = CaseSpec.from_seed(
                seed, n_nodes=n_nodes, n_queries=n_queries
            )
            case_report = run_quality_case(spec, radius=radius, tracer=tracer)
            fuzz_report.cases.append(case_report)
            if on_case is not None:
                on_case(case_report)
        if span.enabled:
            span.set(
                cases=len(fuzz_report.cases),
                discrepancies=len(fuzz_report.discrepancies),
            )
    return fuzz_report
