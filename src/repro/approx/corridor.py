"""Corridor construction around backbone skyline answers.

The backbone query (Algorithm 3) produces an approximate skyline whose
paths, once unpacked through the index's shortcut provenance, are real
original-graph walks.  Those walks sketch where the *true* skyline
lives: exact skyline paths between the same endpoints rarely stray far
from the approximate ones on road networks.  A :class:`Corridor` is the
union of k-hop neighborhoods around those unpacked node sets — the
ParetoPrep idea of tightening the explored region a priori, applied on
top of the backbone's path sketch instead of a scalarized pre-search.

Restricted exact BBS inside the corridor (``skyline_paths(...,
restrict_to=corridor, seed_paths=corridor.seed_paths)``) then refines
the backbone answer: every returned path is a genuine original-graph
path, the result always dominates-or-equals the backbone answer (its
paths seed the result set), and with a generous enough radius it
converges to the exact skyline at a fraction of the full-graph cost.

Corridors are value objects built once per ``(source, target, radius)``
and cached generation-aware by the serving layer: a
:class:`CorridorKey` carries a named ``generation`` field so
:func:`repro.service.cache.key_generation` retires stale corridors on
maintenance, exactly like query results.
"""

from __future__ import annotations

import time
from typing import NamedTuple

from repro.core.index import BackboneIndex
from repro.core.query import backbone_query
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.path import Path


class CorridorKey(NamedTuple):
    """Cache key for built corridors.

    The named ``generation`` field keeps
    :meth:`repro.service.cache.ResultCache.invalidate_generations_below`
    working on corridor caches without any engine special-casing.
    """

    source: int
    target: int
    radius: int
    generation: int


class Corridor:
    """A node-set restriction for skyline search between two endpoints.

    Attributes
    ----------
    nodes:
        The corridor's node set (original-graph ids), always containing
        ``source`` and ``target``.
    seed_paths:
        The unpacked backbone skyline paths — real original-graph walks
        whose costs are achievable — used to seed the restricted search
        so its answer can never be worse than the backbone tier's.
    radius:
        The k-hop expansion applied around the seed walks.
    generation:
        The index generation the corridor was built against.
    backbone_truncated:
        True when the backbone query that sketched the corridor ran out
        of budget; the corridor may then under-cover the skyline badly
        and the serving layer refuses to cache it.
    build_seconds:
        Wall-clock cost of building this corridor (backbone query,
        unpacking, and BFS expansion together).
    """

    __slots__ = (
        "source",
        "target",
        "nodes",
        "seed_paths",
        "radius",
        "generation",
        "backbone_truncated",
        "build_seconds",
        "_mask_cache",
    )

    def __init__(
        self,
        source: int,
        target: int,
        nodes: frozenset[int],
        *,
        seed_paths: tuple[Path, ...] = (),
        radius: int = 0,
        generation: int = 0,
        backbone_truncated: bool = False,
        build_seconds: float = 0.0,
    ) -> None:
        self.source = source
        self.target = target
        self.nodes = frozenset(nodes) | {source, target}
        self.seed_paths = tuple(seed_paths)
        self.radius = radius
        self.generation = generation
        self.backbone_truncated = backbone_truncated
        self.build_seconds = build_seconds
        # One-entry memo: (snapshot identity, dense boolean mask).  A
        # corridor is queried against one snapshot per generation, so a
        # single slot covers the serving pattern with no dict overhead.
        self._mask_cache: tuple[int, list[bool]] | None = None

    def __contains__(self, node: int) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def mask_for(self, snapshot) -> list[bool]:
        """A dense boolean node mask over ``snapshot``'s id space.

        ``mask[dense_id]`` is True iff the node is inside the corridor.
        The mask is a plain python list (not an array): the flat kernels
        probe it once per CSR slot, where list indexing beats any array
        scalar access.  Memoized per snapshot identity — the mask is a
        view of this corridor, never a copy of the graph.
        """
        cached = self._mask_cache
        if cached is not None and cached[0] == id(snapshot):
            return cached[1]
        mask = snapshot.node_mask(self.nodes)
        self._mask_cache = (id(snapshot), mask)
        return mask

    def __repr__(self) -> str:
        return (
            f"Corridor({self.source}->{self.target} | {len(self.nodes)} "
            f"nodes, radius={self.radius}, seeds={len(self.seed_paths)})"
        )


def expand_hops(graph, nodes: set[int], radius: int) -> set[int]:
    """Grow ``nodes`` by ``radius`` BFS hops (in-place; returns it).

    On directed graphs both edge directions widen the corridor: an
    exact skyline path may approach a corridor node against the seed
    walk's direction, so one-sided expansion would clip it.
    """
    directed = graph.directed
    frontier = set(nodes)
    for _ in range(radius):
        grown: set[int] = set()
        for node in frontier:
            grown.update(graph.neighbors(node))
            if directed:
                grown.update(graph.in_neighbors(node))
        grown -= nodes
        if not grown:
            break
        nodes |= grown
        frontier = grown
    return nodes


def build_corridor(
    index: BackboneIndex,
    source: int,
    target: int,
    *,
    radius: int = 2,
    generation: int = 0,
    time_budget: float | None = None,
    tracer: Tracer | None = None,
    engine: str = "auto",
) -> Corridor:
    """Build the k-hop corridor around the backbone answer for (s, t).

    Runs :func:`repro.core.query.backbone_query`, unpacks every result
    path through the index's shortcut provenance
    (:meth:`~repro.core.index.BackboneIndex.expand_path` — cost-aware,
    so the seeds' costs are achievable), unions the walk node sets, and
    expands ``radius`` BFS hops around them.  ``time_budget`` caps the
    backbone query only; the restricted search spends whatever the
    caller has left.  ``engine`` selects the kernel for the backbone
    query's top-graph phase, exactly as in :func:`backbone_query`.
    """
    started = time.perf_counter()
    tracer = resolve_tracer(tracer)
    with tracer.span(
        "approx.corridor.build", source=source, target=target, radius=radius
    ) as span:
        sketch = backbone_query(
            index, source, target, time_budget=time_budget,
            tracer=tracer, engine=engine,
        )
        graph = index.original_graph
        nodes: set[int] = {source, target}
        seeds: list[Path] = []
        for path in sketch.paths:
            unpacked = index.expand_path(path)
            seeds.append(unpacked)
            nodes.update(unpacked.nodes)
        expand_hops(graph, nodes, radius)
        corridor = Corridor(
            source,
            target,
            frozenset(nodes),
            seed_paths=tuple(seeds),
            radius=radius,
            generation=generation,
            backbone_truncated=sketch.truncated,
            build_seconds=time.perf_counter() - started,
        )
        if span.enabled:
            span.set(
                nodes=len(corridor.nodes),
                seeds=len(corridor.seed_paths),
                backbone_truncated=corridor.backbone_truncated,
            )
    return corridor
