"""repro.approx — the corridor-restricted approximate serving tier.

The paper's backbone index trades exactness for speed by summarizing
the network; its serving counterpart so far offered only two tiers:
``exact`` (BBS over the full graph) and ``approx`` (the backbone
algorithm, whose quality is fixed by construction parameters).  This
package adds the middle tier the ROADMAP names — *corridor search with
quality SLOs*:

* :mod:`repro.approx.corridor` — build a k-hop corridor around the
  backbone answer's unpacked node sets and run exact BBS restricted to
  it (ParetoPrep's idea of tightening the explored region a priori,
  applied on top of the backbone's path sketch).  Corridor results are
  real original-graph paths, so they can never beat the exact skyline
  — only under-cover it.
* :mod:`repro.approx.quality` — score a corridor (or any approximate)
  result online against the exact tier's contract using the
  :mod:`repro.eval` hypervolume/RAC/goodness metrics, decide whether a
  per-query ``quality_target`` is met, and hand the serving layer the
  evidence it needs to escalate to exact within the remaining budget.

The serving integration lives in :mod:`repro.service.engine`
(``mode="corridor"``, auto-planner escalation) and is documented in
``docs/approximation.md``.
"""

from repro.approx.corridor import Corridor, CorridorKey, build_corridor
from repro.approx.quality import (
    QualityReport,
    quality_ratio,
    score_paths,
    structural_report,
)

__all__ = [
    "Corridor",
    "CorridorKey",
    "QualityReport",
    "build_corridor",
    "quality_ratio",
    "score_paths",
    "structural_report",
]
