"""Online quality scoring for approximate skyline answers.

The serving layer's exact tier defines the contract an approximation is
measured against; this module turns the offline evaluation metrics of
:mod:`repro.eval` (hypervolume, RAC, goodness) into a per-query
:class:`QualityReport` cheap enough to compute on the serving path:

* With an **exact reference** (the engine finds one in its result cache
  under the same generation), the report carries the degenerate-safe
  hypervolume retention (:func:`quality_ratio`), the worst per-dimension
  RAC, and the paper's goodness score — and ``meets_target`` compares
  retention against the caller's ``quality_target``.
* Without one, only **structural** facts are checkable: a non-empty,
  non-truncated answer passes optimistically (``checked=False`` records
  that no reference backed the verdict), while an empty or truncated
  answer fails the target and triggers escalation.

``meets_target`` is what the engine's escalation path consumes: a
failing report re-runs the exact tier within the remaining time budget
(see ``docs/approximation.md`` for the full semantics).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.eval.hypervolume import quality_ratio
from repro.eval.metrics import goodness, rac
from repro.paths.path import Path

# Reports are frozen plain-float dataclasses on purpose: they ride on
# QueryResponse objects that multi-process workers pickle back to the
# dispatcher with stats stripped but quality kept.


@dataclass(frozen=True)
class QualityReport:
    """How one approximate answer measures against the exact contract."""

    # HV(approx) / HV(exact) on a shared reference box, in [0, 1];
    # None when no reference was available.
    hypervolume_ratio: float | None = None
    # Worst per-dimension ratio-of-average-cost; None without reference
    # or when either set is empty.
    rac_max: float | None = None
    # The paper's goodness score; None under the same conditions.
    goodness: float | None = None
    # The SLO this answer was held to (None = no SLO).
    target: float | None = None
    # Verdict the escalation path consumes.
    meets_target: bool = True
    # "exact_cached" when a cached exact answer backed the scoring,
    # "none" for structural-only reports.
    reference: str = "none"
    # True iff a real reference backed the verdict.
    checked: bool = False

    def as_dict(self) -> dict:
        """Plain-data rendering for JSON response lines and logs."""
        return {
            "hypervolume_ratio": self.hypervolume_ratio,
            "rac_max": self.rac_max,
            "goodness": self.goodness,
            "target": self.target,
            "meets_target": self.meets_target,
            "reference": self.reference,
            "checked": self.checked,
        }


def score_paths(
    approximate: Sequence[Path],
    exact: Sequence[Path],
    *,
    target: float | None = None,
) -> QualityReport:
    """Score an approximate answer against an exact reference answer.

    All three metrics are degenerate-safe here: empty sets and
    zero-volume reference boxes produce defined values (see
    :func:`repro.eval.hypervolume.quality_ratio`) or None instead of
    raising, because online scoring must never take the serving path
    down.
    """
    ratio = quality_ratio(approximate, exact)
    rac_max: float | None = None
    goodness_score: float | None = None
    if approximate and exact:
        rac_max = max(rac(approximate, exact))
        goodness_score = goodness(approximate, exact)
    return QualityReport(
        hypervolume_ratio=ratio,
        rac_max=rac_max,
        goodness=goodness_score,
        target=target,
        meets_target=target is None or ratio >= target,
        reference="exact_cached",
        checked=True,
    )


def structural_report(
    approximate: Sequence[Path],
    *,
    target: float | None = None,
    truncated: bool = False,
) -> QualityReport:
    """The report when no exact reference is available.

    Only structural failure is detectable: an empty answer, or one a
    budget truncated, cannot meet any SLO and must escalate.  A
    non-empty complete answer passes *optimistically* — ``checked``
    stays False so consumers can tell an unverified pass from a scored
    one.
    """
    structurally_sound = bool(approximate) and not truncated
    return QualityReport(
        target=target,
        meets_target=target is None or structurally_sound,
        reference="none",
        checked=False,
    )
