"""A minimal metrics registry for the serving layer.

Two instrument kinds cover what the engine, cache, and batch executor
need to report:

* :class:`Counter` — a monotonically increasing integer (queries
  served, cache hits, truncations).
* :class:`Histogram` — latency observations with percentile summaries
  (p50/p95/p99) computed from a bounded sample reservoir.

A :class:`MetricsRegistry` owns named instruments, creates them on
first use, and exports snapshots as a plain dict, JSON, or a
Prometheus-flavoured plaintext format.  All operations are
thread-safe: the registry guards instrument creation and every
instrument guards its own mutation, so concurrent batch workers can
record freely.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
import zlib
from typing import Iterable

# Cap the per-histogram sample buffer.  Beyond the cap, uniform
# reservoir sampling (Vitter's Algorithm R) keeps every observation
# equally likely to be retained, so percentile estimates stay unbiased
# for long-running services without unbounded memory.
_DEFAULT_MAX_SAMPLES = 8192

_PERCENTILES = (0.50, 0.95, 0.99)


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Histogram:
    """Latency/size observations with streaming percentile summaries.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles come from a bounded *uniform reservoir* (Algorithm R):
    once the buffer is full, the n-th observation replaces a random
    retained sample with probability ``max_samples / n``, so every
    observation is equally likely to survive.  (The previous
    every-other-sample decimation systematically over-weighted early
    observations after repeated halvings.)  The reservoir RNG is seeded
    deterministically from the histogram name (or an explicit ``seed``),
    so tests and replays are reproducible.
    """

    __slots__ = ("name", "_samples", "_count", "_sum", "_min", "_max",
                 "_max_samples", "_rng", "_lock")

    def __init__(
        self,
        name: str,
        *,
        max_samples: int = _DEFAULT_MAX_SAMPLES,
        seed: int | None = None,
    ) -> None:
        self.name = name
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._max_samples = max(max_samples, 8)
        if seed is None:
            seed = zlib.crc32(name.encode("utf-8"))
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                # Algorithm R: keep each of the _count observations
                # with equal probability max_samples / _count.
                slot = self._rng.randrange(self._count)
                if slot < self._max_samples:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    # ------------------------------------------------------------------
    # merging (per-worker histograms roll up into one parent histogram)
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Full-fidelity state as plain data (picklable, JSON-able).

        Unlike :meth:`summary` this keeps the raw reservoir, so a
        histogram reconstructed with :meth:`from_state` — e.g. shipped
        from a worker process — merges without losing tail resolution.
        """
        with self._lock:
            return {
                "name": self.name,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "samples": list(self._samples),
                "max_samples": self._max_samples,
            }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output."""
        histogram = cls(state["name"], max_samples=state["max_samples"])
        histogram._count = int(state["count"])
        histogram._sum = float(state["sum"])
        histogram._min = (
            float(state["min"]) if state["min"] is not None else math.inf
        )
        histogram._max = (
            float(state["max"]) if state["max"] is not None else -math.inf
        )
        histogram._samples = [float(v) for v in state["samples"]]
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one.

        ``count``/``sum``/``min``/``max`` merge exactly.  The reservoirs
        combine by *weighted* subsampling: each retained sample stands
        for ``count / len(samples)`` observations of its source, and
        when the union exceeds the cap, samples are kept with
        probability proportional to that weight
        (Efraimidis-Spirakis keys drawn from this histogram's seeded
        RNG).  A 10k-observation worker therefore outweighs a
        100-observation one ~100:1 in the merged reservoir, so rolled-up
        p95/p99 track the traffic-weighted distribution instead of
        over-representing idle workers.
        """
        if other is self:
            raise ValueError("cannot merge a histogram into itself")
        # Lock in id order so concurrent a.merge(b) / b.merge(a) cannot
        # deadlock.
        first, second = (
            (self, other) if id(self) <= id(other) else (other, self)
        )
        with first._lock, second._lock:
            if other._count == 0:
                return
            weighted: list[tuple[float, list[float]]] = []
            for source in (self, other):
                if source._samples:
                    weight = source._count / len(source._samples)
                    weighted.append((weight, source._samples))
            merged: list[float] = []
            total = sum(len(samples) for _weight, samples in weighted)
            if total <= self._max_samples:
                for _weight, samples in weighted:
                    merged.extend(samples)
            else:
                keyed: list[tuple[float, float]] = []
                for weight, samples in weighted:
                    for value in samples:
                        u = self._rng.random()
                        keyed.append((u ** (1.0 / weight), value))
                keyed.sort(key=lambda pair: pair[0], reverse=True)
                merged = [value for _key, value in keyed[: self._max_samples]]
            self._samples = merged
            self._count += other._count
            self._sum += other._sum
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)

    def percentile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1) of the recorded samples."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = max(0, min(len(samples) - 1, math.ceil(q * len(samples)) - 1))
        return samples[rank]

    def summary(self) -> dict:
        """count/sum/mean/min/max plus the standard percentiles."""
        with self._lock:
            samples = sorted(self._samples)
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        doc = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
        }
        for q in _PERCENTILES:
            if samples:
                rank = max(
                    0, min(len(samples) - 1, math.ceil(q * len(samples)) - 1)
                )
                doc[f"p{int(q * 100)}"] = samples[rank]
            else:
                doc[f"p{int(q * 100)}"] = 0.0
        return doc


class MetricsRegistry:
    """Named counters and histograms with snapshot exporters.

    Parameters
    ----------
    created_at:
        Caller-supplied wall-clock creation stamp (e.g. ``time.time()``
        or an ISO string), echoed verbatim in snapshots so scrapers can
        distinguish registry restarts.  Uptime is tracked separately on
        the monotonic clock and reported as ``uptime_seconds``.
    """

    def __init__(self, *, created_at: float | str | None = None) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self.created_at = created_at
        self._started_monotonic = time.monotonic()

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since the registry was constructed."""
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def increment(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``counter(name).increment(amount)``."""
        self.counter(name).increment(amount)

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # merging (multi-process rollup)
    # ------------------------------------------------------------------

    def dump_state(self) -> dict:
        """Every instrument at full fidelity, as plain picklable data.

        This is the wire format worker processes ship to the parent:
        counters as integers, histograms as :meth:`Histogram.state`
        (reservoir included).  Feed it to :meth:`merge_state`.
        """
        counters, histograms = self._instruments()
        return {
            "counters": {c.name: c.value for c in counters},
            "histograms": {h.name: h.state() for h in histograms},
        }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` document into this registry.

        Counters add; histograms merge via :meth:`Histogram.merge`, so
        per-worker percentile reservoirs roll up traffic-weighted.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).increment(int(value))
        for name, doc in state.get("histograms", {}).items():
            self.histogram(name).merge(Histogram.from_state(doc))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        self.merge_state(other.dump_state())

    # ------------------------------------------------------------------
    # exporting
    # ------------------------------------------------------------------

    def _instruments(self) -> tuple[Iterable[Counter], Iterable[Histogram]]:
        with self._lock:
            return list(self._counters.values()), list(
                self._histograms.values()
            )

    def snapshot(self) -> dict:
        """All instruments as one plain dictionary."""
        counters, histograms = self._instruments()
        return {
            "counters": {c.name: c.value for c in counters},
            "histograms": {h.name: h.summary() for h in histograms},
            "uptime_seconds": self.uptime_seconds,
            "created_at": self.created_at,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """The snapshot serialized as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """A Prometheus-flavoured plaintext rendering of the snapshot.

        Every instrument is preceded by its ``# TYPE`` line — counters
        as ``counter``, histograms as ``summary`` (count/sum plus
        quantile-labelled samples), so scrapers can type both.
        """
        lines: list[str] = []
        counters, histograms = self._instruments()
        for counter in sorted(counters, key=lambda c: c.name):
            lines.append(f"# TYPE {counter.name} counter")
            lines.append(f"{counter.name} {counter.value}")
        for histogram in sorted(histograms, key=lambda h: h.name):
            doc = histogram.summary()
            lines.append(f"# TYPE {histogram.name} summary")
            lines.append(f"{histogram.name}_count {doc['count']}")
            lines.append(f"{histogram.name}_sum {doc['sum']:.6f}")
            for q in _PERCENTILES:
                key = f"p{int(q * 100)}"
                lines.append(
                    f'{histogram.name}{{quantile="{q:g}"}} {doc[key]:.6f}'
                )
        lines.append("# TYPE uptime_seconds gauge")
        lines.append(f"uptime_seconds {self.uptime_seconds:.6f}")
        return "\n".join(lines)
