"""Batch execution of many skyline queries against one engine.

The executor squeezes three kinds of redundancy out of a workload
before any search runs:

1. **Deduplication** — identical ``(source, target)`` pairs in the
   batch are computed once and fanned back out to every position that
   asked for them.
2. **Source grouping** — queries sharing a source whose plan resolves
   to the backbone approximation are served by one
   :meth:`~repro.service.engine.SkylineQueryEngine.query_group` call,
   which grows the source's S phase once for the whole group
   (ParetoPrep's shared-preprocessing idea applied at serving time).
3. **Caching** — each unique query still goes through the engine's
   result cache, so repeats across batches are free too.

On the batch kernel tier (``engine="batch"`` or ``"auto"`` above the
measured node crossover) exact-plan queries additionally **fuse**: the
whole set runs as one
:meth:`~repro.service.engine.SkylineQueryEngine.query_batch_fused`
call whose bucket traversal is shared across every query — the
serving-batch speedup measured at 3.5x+ over per-query python serving
(``BENCH_batch.json``).

Remaining independent work units fan out over a ``ThreadPoolExecutor``.
Results always come back positionally aligned with the input.  Off the
batch tier they are identical to serial execution of the same list
(grouping reuses only target-independent state); fused exact answers
are answer-set-equal to serial serving but may pick different
equal-cost path alternates and report different search counters — the
batch kernel's documented contract (``docs/acceleration.md``).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.obs.tracer import Tracer, resolve_tracer
from repro.service.engine import QueryResponse, SkylineQueryEngine

QueryPair = tuple[int, int]


@dataclass
class BatchResult:
    """Ordered responses plus batch-level accounting."""

    responses: list[QueryResponse] = field(default_factory=list)
    unique_queries: int = 0
    duplicates_folded: int = 0
    source_groups: int = 0
    grouped_queries: int = 0
    fused_queries: int = 0
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.responses) / self.elapsed_seconds


def _normalize(query: object) -> QueryPair:
    """Accept (source, target) tuples/lists and Query-like objects."""
    if isinstance(query, (tuple, list)) and len(query) == 2:
        return int(query[0]), int(query[1])
    source = getattr(query, "source", None)
    target = getattr(query, "target", None)
    if source is None or target is None:
        raise QueryError(
            f"cannot interpret {query!r} as a (source, target) query"
        )
    return int(source), int(target)


def execute_batch(
    engine: SkylineQueryEngine,
    queries: Iterable[object],
    *,
    max_workers: int = 4,
    mode: str = "auto",
    time_budget: float | None = None,
    use_cache: bool = True,
    group_by_source: bool = True,
    tracer: Tracer | None = None,
) -> BatchResult:
    """Run a batch of queries and return responses in input order.

    Parameters
    ----------
    engine:
        The engine to serve from.  Its cache and metrics observe every
        unique query in the batch.
    queries:
        ``(source, target)`` pairs or objects with source/target
        attributes (e.g. :class:`repro.eval.queries.Query`).
    max_workers:
        Thread-pool width for independent work units.
    group_by_source:
        Merge same-source approximate queries into one shared grow-S
        engine call.  Disable to force per-query execution (results are
        identical either way).
    tracer:
        Observability hook; defaults to the process-wide tracer.  The
        planning/fan-out runs inside one ``batch.execute`` span; each
        work unit opens a ``batch.unit`` span *in its worker thread*,
        so per-thread traces stay independent.
    """
    if max_workers < 1:
        raise QueryError("max_workers must be at least 1")
    tracer = resolve_tracer(tracer)
    started = time.perf_counter()
    pairs = [_normalize(query) for query in queries]

    # Deduplicate while remembering every original position.
    positions: dict[QueryPair, list[int]] = {}
    for position, pair in enumerate(pairs):
        positions.setdefault(pair, []).append(position)
    unique = list(positions)

    # Partition unique queries into shared-source groups, fused exact
    # batches, and singles.  Approximate plans share a grow-S per
    # source; on the batch kernel tier, exact plans fuse into one
    # bucket traversal (:meth:`SkylineQueryEngine.query_batch_fused`);
    # everything else runs as independent units.
    fuse_exact = engine.batch_tier()
    grouped: dict[int, list[int]] = {}
    singles: list[QueryPair] = []
    fused: list[QueryPair] = []
    if group_by_source or fuse_exact:
        by_source: dict[int, list[int]] = {}
        for source, target in unique:
            plan = engine.plan(source, target, mode, time_budget=time_budget)
            if plan == "approx" and group_by_source:
                by_source.setdefault(source, []).append(target)
            elif plan == "exact" and fuse_exact:
                fused.append((source, target))
            else:
                singles.append((source, target))
        for source, targets in by_source.items():
            if len(targets) > 1:
                grouped[source] = targets
            else:
                singles.append((source, targets[0]))
        if len(fused) == 1:
            # A lone exact query gains nothing from the fused entry
            # point; serve it like any other single.
            singles.extend(fused)
            fused = []
    else:
        singles = list(unique)

    answers: dict[QueryPair, QueryResponse] = {}

    def run_single(pair: QueryPair) -> None:
        source, target = pair
        with tracer.span(
            "batch.unit", kind="single", source=source, target=target
        ):
            answers[pair] = engine.query(
                source,
                target,
                mode=mode,
                time_budget=time_budget,
                use_cache=use_cache,
            )

    def run_group(source: int, targets: list[int]) -> None:
        with tracer.span(
            "batch.unit", kind="group", source=source, targets=len(targets)
        ):
            responses = engine.query_group(
                source,
                targets,
                mode=mode,
                time_budget=time_budget,
                use_cache=use_cache,
            )
        for target, response in zip(targets, responses):
            answers[(source, target)] = response

    def run_fused(fused_pairs: list[QueryPair]) -> None:
        with tracer.span(
            "batch.unit", kind="fused", queries=len(fused_pairs)
        ):
            responses = engine.query_batch_fused(
                fused_pairs,
                time_budget=time_budget,
                use_cache=use_cache,
            )
        for pair, response in zip(fused_pairs, responses):
            answers[pair] = response

    tasks = [lambda pair=pair: run_single(pair) for pair in singles]
    tasks += [
        lambda s=source, ts=targets: run_group(s, ts)
        for source, targets in grouped.items()
    ]
    if fused:
        tasks.append(lambda ps=fused: run_fused(ps))
    with tracer.span(
        "batch.execute",
        queries=len(pairs),
        unique=len(unique),
        groups=len(grouped),
        workers=max_workers,
    ):
        if max_workers == 1 or len(tasks) <= 1:
            for task in tasks:
                task()
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(task) for task in tasks]
                for future in futures:
                    future.result()  # re-raise worker failures here

    result = BatchResult(
        responses=[answers[pair] for pair in pairs],
        unique_queries=len(unique),
        duplicates_folded=len(pairs) - len(unique),
        source_groups=len(grouped),
        grouped_queries=sum(len(t) for t in grouped.values()),
        fused_queries=len(fused),
        elapsed_seconds=time.perf_counter() - started,
    )
    engine.metrics.increment("batch.batches")
    engine.metrics.increment("batch.queries", len(pairs))
    engine.metrics.increment("batch.duplicates_folded", result.duplicates_folded)
    engine.metrics.increment("batch.source_groups", result.source_groups)
    engine.metrics.increment("batch.fused_queries", result.fused_queries)
    engine.metrics.observe("batch.batch_seconds", result.elapsed_seconds)
    return result
