"""The long-lived skyline query engine — the serving layer's core.

A :class:`SkylineQueryEngine` owns one loaded network plus the warm
state that makes index-based querying pay off in a server setting: the
backbone index (loaded, supplied, or built on demand), a landmark index
over the original graph shared by every exact query, an LRU result
cache, and a metrics registry.  A small planner picks the execution
strategy per query:

* ``mode="exact"`` / ``mode="approx"`` / ``mode="corridor"`` —
  caller-forced strategy.
* ``mode="auto"`` — exact BBS when the graph is small enough that
  exactness is cheap, or when source and target share a level-0
  backbone cluster (the search stays local); corridor-restricted
  search when a time budget is set and the per-mode latency history
  says the backbone tier cannot meet it; the backbone approximation
  otherwise.

The corridor tier (:mod:`repro.approx`) runs exact BBS restricted to a
k-hop neighborhood of the backbone answer, scores the result online
against the exact contract, and — when a ``quality_target`` is set and
missed — escalates to a full exact run within the remaining budget.

Every query honours a wall-clock budget with graceful degradation: on
expiry the engine returns the best partial skyline found so far with
``truncated=True`` rather than raising.

When built on top of a :class:`~repro.core.maintenance.MaintainableIndex`
the engine subscribes to its update stream: each structural update
bumps the engine's generation, swaps in the repaired index, and retires
every cached result computed against the old network.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path as FilePath
from typing import NamedTuple

from repro.approx.corridor import Corridor, CorridorKey, build_corridor
from repro.approx.quality import (
    QualityReport,
    score_paths,
    structural_report,
)
from repro.core.builder import build_backbone_index
from repro.core.index import BackboneIndex
from repro.core.maintenance import MaintainableIndex
from repro.core.params import BackboneParams
from repro.core.query import (
    QueryResult,
    QueryStats,
    backbone_query_shared_source,
)
from repro.errors import NodeNotFoundError, QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.events import EventLog, resolve_event_log
from repro.obs.export import aggregate_spans
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.path import Path
from repro.search.bbs import skyline_paths
from repro.search.bounds import ExactBounds, LandmarkLowerBounds
from repro.search.landmark import LandmarkIndex
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry

MODES = ("auto", "exact", "approx", "corridor")


class EngineCacheKey(NamedTuple):
    """The engine's result-cache key.

    Built exclusively through :func:`engine_cache_key` — put, get, and
    generation invalidation all speak this one shape, so adding a
    component (planner budget, cost model, ...) is a single-site change
    and removing the ``generation`` field fails loudly at construction
    time instead of silently surviving maintenance invalidation
    (:func:`repro.service.cache.key_generation` matches keys by that
    named field).
    """

    source: int
    target: int
    mode: str
    generation: int


def engine_cache_key(
    source: int, target: int, mode: str, generation: int
) -> EngineCacheKey:
    """The single place engine cache keys are constructed."""
    return EngineCacheKey(source, target, mode, generation)

# Below this node count exact BBS with good bounds answers interactively,
# so "auto" does not pay the approximation error.
DEFAULT_EXACT_NODE_THRESHOLD = 400

# The auto planner only trusts the per-mode latency history once this
# many observations back it; before that "auto" never picks corridor.
PLANNER_MIN_SAMPLES = 3

# Corridors are derived structures, not results: their cache is small,
# fixed, and independent of the (disableable) result cache so repeated
# queries between the same endpoints reuse the corridor even when the
# caller opts out of result caching.
CORRIDOR_CACHE_SIZE = 128

# Above this node count "auto" serves exact/corridor queries with the
# bucket-vectorized batch kernel instead of the scalar flat one, and
# batch executors fuse exact singles into one shared traversal
# (:meth:`SkylineQueryEngine.query_batch_fused`).  Measured on the
# fig10 workload family (benchmarks/bench_fig10_query_time.py,
# BENCH_batch.json): at ~400 nodes all tiers are within noise; at
# ~1200 nodes flat and per-query batch both sit near 2.2x over the
# python engine, while the fused serving-batch kernel — one bucket
# traversal shared across the whole batch — reaches 3.5x+.  Batch-tier
# answers are answer-set-equal to flat but not counter-identical, so
# "auto" only crosses over where the speedup is unambiguous; pass
# engine="flat"/"batch" to pin a tier.
DEFAULT_BATCH_NODE_CROSSOVER = 600

# Lower-bound providers an engine can pin for exact/corridor queries.
# "auto" = warm landmarks when available, exact reverse Dijkstra
# otherwise; "pareto_prep" computes all dimensions' exact bounds in one
# backward pass over the CSR snapshot (repro.accel.bounds) — same
# values as "exact", one traversal instead of dim.
BOUND_PROVIDERS = ("auto", "exact", "landmark", "pareto_prep")


@dataclass
class QueryResponse:
    """One served query: the skyline plus serving diagnostics."""

    source: int
    target: int
    mode: str
    paths: list[Path] = field(default_factory=list)
    truncated: bool = False
    cache_hit: bool = False
    elapsed_seconds: float = 0.0
    generation: int = 0
    stats: object | None = None
    # Provenance stamps for multi-process serving: which worker process
    # computed the answer and under which dispatcher trace (both None
    # for in-process serving / tracing off).
    worker_pid: int | None = None
    trace_id: str | None = None
    # Corridor-tier fields: the online QualityReport the answer was
    # scored with (None for exact/approx responses) and whether a
    # missed quality target escalated this answer to the exact tier.
    quality: QualityReport | None = None
    escalated: bool = False

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


class SkylineQueryEngine:
    """A warm, cached, planned front end over the backbone library.

    Parameters
    ----------
    graph:
        The network to serve.  Omit when ``maintainer`` is given.
    index:
        An already built/loaded :class:`BackboneIndex`.  When None the
        engine builds one on demand (or in :meth:`warm`).
    params:
        Construction parameters for on-demand builds.
    maintainer:
        A :class:`MaintainableIndex` to serve from.  The engine follows
        its update stream: generation bumps, index swaps, and cache
        invalidation happen automatically.
    cache_size:
        LRU result-cache capacity (0 disables caching).
    snapshotter:
        A :class:`~repro.store.snapshot.Snapshotter`; when given, every
        maintenance generation bump persists the repaired index to its
        snapshot directory (atomic, retention-pruned), so a restarted
        process warm-starts from the newest generation it served.
    default_time_budget:
        Per-query wall-clock budget in seconds applied when a call does
        not pass its own; None means unbounded.
    exact_node_threshold:
        ``auto`` plans exact BBS on graphs at or below this node count.
    engine:
        Search-kernel selection: ``"auto"`` (default), ``"flat"`` and
        ``"batch"`` serve from CSR snapshots — built at most once per
        generation for the original graph and once per index for G_L,
        amortized across every query — while ``"python"`` keeps the
        dict-based loops.  ``"flat"`` answers are bit-identical to
        python, counters included; ``"batch"`` runs the
        bucket-vectorized kernel of :mod:`repro.accel.batch_kernel`,
        whose answers equal the other tiers as path sets while its
        counters differ.  ``"auto"`` picks flat, escalating to batch on
        graphs above ``batch_node_crossover`` nodes where bucket
        amortization measurably wins.
    batch_node_crossover:
        Node count at which ``"auto"`` switches from the flat to the
        batch kernel (default ``DEFAULT_BATCH_NODE_CROSSOVER``, the
        measured crossover on the fig10 workload family).
    corridor_radius:
        k-hop expansion around the backbone answer when serving
        ``mode="corridor"`` (see :mod:`repro.approx.corridor`).
    quality_target:
        Per-query SLO for the corridor tier: minimum hypervolume
        retention against the exact reference.  A corridor answer that
        provably misses it (or is structurally unsound when no
        reference exists) escalates to exact within the remaining time
        budget.  None disables escalation (answers are still scored).
    bound_provider:
        Lower-bound source for exact/corridor searches.  ``"auto"``
        (default) uses the warm landmark index when present and falls
        back to exact reverse Dijkstra; ``"landmark"`` and ``"exact"``
        pin those choices; ``"pareto_prep"`` computes exact
        per-dimension bounds for all dimensions in a single backward
        pass over the CSR snapshot
        (:class:`repro.accel.bounds.ParetoPrepBounds`) — identical
        pruning to ``"exact"`` at a fraction of the preprocessing
        cost per query.
    """

    def __init__(
        self,
        graph: MultiCostGraph | None = None,
        *,
        index: BackboneIndex | None = None,
        params: BackboneParams | None = None,
        maintainer: MaintainableIndex | None = None,
        cache_size: int = 1024,
        default_time_budget: float | None = None,
        exact_node_threshold: int = DEFAULT_EXACT_NODE_THRESHOLD,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        snapshotter=None,
        engine: str = "auto",
        batch_node_crossover: int = DEFAULT_BATCH_NODE_CROSSOVER,
        corridor_radius: int = 2,
        quality_target: float | None = None,
        bound_provider: str = "auto",
    ) -> None:
        if engine not in ("auto", "flat", "python", "batch"):
            raise QueryError(
                f"unknown engine {engine!r} "
                "(use 'auto', 'flat', 'batch' or 'python')"
            )
        if bound_provider not in BOUND_PROVIDERS:
            raise QueryError(
                f"unknown bound provider {bound_provider!r} "
                f"(use one of {', '.join(BOUND_PROVIDERS)})"
            )
        if corridor_radius < 0:
            raise QueryError("corridor_radius cannot be negative")
        if quality_target is not None and not 0.0 <= quality_target <= 1.0:
            raise QueryError("quality_target must be within [0, 1]")
        if maintainer is not None:
            graph = maintainer.graph
            index = maintainer.index
        if graph is None:
            raise QueryError("engine needs a graph or a maintainer")
        self._graph = graph
        self._index = index
        self._params = params if params is not None else BackboneParams()
        self._maintainer = maintainer
        self._generation = maintainer.generation if maintainer else 0
        self.cache = ResultCache(cache_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # None defers to the process-wide tracer at each call, so
        # installing one with repro.obs.use_tracer() traces the engine
        # without reconstructing it.  Same for the event log.
        self.tracer = tracer
        self.events = events
        self._live = None
        self.default_time_budget = default_time_budget
        self.exact_node_threshold = exact_node_threshold
        self.engine = engine
        self.bound_provider = bound_provider
        self.batch_node_crossover = batch_node_crossover
        self.corridor_radius = corridor_radius
        self.quality_target = quality_target
        self._corridors = ResultCache(CORRIDOR_CACHE_SIZE)
        self._original_landmarks: LandmarkIndex | None = None
        self._csr_original = None  # CSRSnapshot of the served graph
        self._build_lock = threading.Lock()
        self._snapshotter = snapshotter
        if maintainer is not None:
            maintainer.subscribe(self._on_maintenance)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        gr_path: FilePath | str,
        index_path: FilePath | str | None = None,
        **kwargs,
    ) -> "SkylineQueryEngine":
        """Build an engine from a DIMACS graph and optional saved index."""
        from repro.graph.io import read_dimacs_co, read_dimacs_gr

        graph = read_dimacs_gr(gr_path)
        co_path = FilePath(gr_path).with_suffix(".co")
        if co_path.exists():
            read_dimacs_co(graph, co_path)
        index = None
        if index_path is not None:
            index = BackboneIndex.load(index_path, graph)
        return cls(graph, index=index, **kwargs)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def generation(self) -> int:
        """The index generation; bumped by maintenance updates."""
        return self._generation

    @property
    def index(self) -> BackboneIndex | None:
        """The backbone index, or None while not yet built."""
        return self._index

    # ------------------------------------------------------------------
    # warm-up
    # ------------------------------------------------------------------

    def ensure_index(self) -> BackboneIndex:
        """The backbone index, building it now if necessary."""
        index = self._index
        if index is not None:
            return index
        with self._build_lock:
            if self._index is None:
                started = time.perf_counter()
                self._index = build_backbone_index(
                    self._graph, self._params, tracer=self.tracer
                )
                elapsed = time.perf_counter() - started
                self.metrics.increment("engine.index_builds")
                self.metrics.observe("engine.index_build_seconds", elapsed)
            return self._index

    def _original_snapshot(self, *, force: bool = False):
        """The CSR snapshot of the served graph, built at most once per
        generation.

        Returns None under ``engine="python"`` unless ``force`` is set
        (the ``pareto_prep`` bound provider needs the snapshot even
        when searches stay on the python engine).  Otherwise the
        snapshot is built lazily under the build lock and reused by
        every exact query until a generation bump retires it — so the
        one ``accel.csr.build`` span per generation is the amortized
        cost of flat serving.
        """
        if self.engine == "python" and not force:
            return None
        snapshot = self._csr_original
        if snapshot is None:
            with self._build_lock:
                if self._csr_original is None:
                    from repro.accel.csr import CSRSnapshot

                    self._csr_original = CSRSnapshot.from_graph(
                        self._graph, tracer=self.tracer
                    )
                    self.metrics.increment("engine.csr_builds")
                snapshot = self._csr_original
        return snapshot

    def _kernel_for(self, snapshot) -> str:
        """The search-kernel string for one query over ``snapshot``.

        ``"python"`` without a snapshot; the pinned tier under
        ``engine="flat"``/``"batch"``; under ``"auto"``, flat below the
        measured ``batch_node_crossover`` and batch at or above it (the
        planner-level escalation the batch kernel is served through).
        """
        if snapshot is None:
            return "python"
        if self.engine == "batch":
            return "batch"
        if (
            self.engine == "auto"
            and snapshot.num_nodes >= self.batch_node_crossover
        ):
            return "batch"
        return "flat"

    def _bounds_for(self, target: int):
        """The lower-bound provider for one exact/corridor query.

        Resolves ``bound_provider``: ``"auto"`` serves warm landmarks
        when present and exact reverse Dijkstra otherwise;
        ``"landmark"`` behaves like ``"auto"`` (it cannot conjure an
        unwarmed landmark index, so the exact fallback stays);
        ``"exact"`` always runs the per-dimension reverse Dijkstras;
        ``"pareto_prep"`` folds them into one backward pass over the
        CSR snapshot — forced into existence even under
        ``engine="python"``, then cached for every later query.
        """
        choice = self.bound_provider
        if choice == "pareto_prep":
            from repro.accel.bounds import ParetoPrepBounds

            return ParetoPrepBounds(
                self._original_snapshot(force=True), [target]
            )
        if choice != "exact":
            landmarks = self._original_landmarks
            if landmarks is not None:
                return LandmarkLowerBounds(landmarks, [target])
        return ExactBounds(self._graph, [target])

    def batch_tier(self) -> bool:
        """True when exact queries resolve to the bucket-mode kernel.

        The snapshot-free mirror of :meth:`_kernel_for`, so executors
        can decide whether to fuse a batch *before* paying the lazy CSR
        build (node count is read off the graph, which the snapshot
        copies verbatim).
        """
        if self.engine == "batch":
            return True
        return (
            self.engine == "auto"
            and self._graph.num_nodes >= self.batch_node_crossover
        )

    def warm(self) -> dict:
        """Prime everything a cold start would otherwise pay per query.

        Builds the backbone index if absent, the CSR snapshot of the
        original graph (unless ``engine="python"``), and the shared
        landmark index over the original graph used to bound exact
        queries.  Returns the wall-clock seconds spent on each step.
        """
        timings: dict[str, float] = {}
        started = time.perf_counter()
        self.ensure_index()
        timings["index_seconds"] = time.perf_counter() - started
        started = time.perf_counter()
        snapshot = self._original_snapshot()
        timings["csr_seconds"] = time.perf_counter() - started
        started = time.perf_counter()
        with self._build_lock:
            if self._original_landmarks is None:
                self._original_landmarks = LandmarkIndex(
                    self._graph,
                    min(
                        self._params.landmark_count,
                        max(self._graph.num_nodes, 1),
                    ),
                    tracer=self.tracer,
                    csr=snapshot,
                )
        timings["landmark_seconds"] = time.perf_counter() - started
        self.metrics.increment("engine.warmups")
        return timings

    def warm_from_store(
        self, path: FilePath | str, *, lazy: bool = True
    ) -> dict:
        """Warm-start: install a persisted index instead of building one.

        ``path`` is either a single index file (binary store or legacy
        JSON, sniffed) or a snapshot directory, in which case the
        newest valid snapshot is recovered (corrupt files skipped).
        With ``lazy=True`` (default) a binary store only materializes
        the top graph, landmark tables, and provenance up front; label
        levels fault in on first use.  Returns load timings plus what
        was loaded.  Raises :class:`~repro.errors.BuildError` when the
        path holds no loadable index.
        """
        started = time.perf_counter()
        generation = None
        source = FilePath(path)
        if source.is_dir():
            from repro.store.snapshot import Snapshotter

            recovered = Snapshotter(source, tracer=self.tracer).recover(
                self._graph, lazy=lazy
            )
            if recovered is None:
                raise QueryError(
                    f"{source}: no valid index snapshot to warm from"
                )
            index, generation = recovered
        else:
            index = BackboneIndex.load(source, self._graph, lazy=lazy)
        with self._build_lock:
            self._index = index
        elapsed = time.perf_counter() - started
        self.metrics.increment("engine.store_loads")
        self.metrics.observe("engine.store_load_seconds", elapsed)
        timings: dict = {"store_load_seconds": elapsed, "source": str(source)}
        if generation is not None:
            timings["snapshot_generation"] = generation
        return timings

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(
        self,
        source: int,
        target: int,
        mode: str = "auto",
        *,
        time_budget: float | None = None,
    ) -> str:
        """Resolve the execution strategy for one query.

        Forced modes pass through.  ``auto`` picks exact BBS for small
        graphs and same-cluster pairs (where the exact search is cheap
        anyway).  Otherwise, with an effective time budget (the call's
        or the engine default) and enough latency history, it compares
        the budget against the observed p95 of the backbone tier
        (``engine.query_seconds.approx``): when even the approximation
        is unlikely to fit, the corridor tier — whose cached corridors
        amortize the backbone sketch across repeats — is the planner's
        degradation step before hard truncation.  The backbone
        approximation remains the default.
        """
        if mode not in MODES:
            raise QueryError(f"unknown query mode {mode!r} (use {MODES})")
        if mode != "auto":
            return mode
        if self._graph.num_nodes <= self.exact_node_threshold:
            return "exact"
        if self._same_cluster(source, target):
            return "exact"
        budget = (
            time_budget if time_budget is not None else self.default_time_budget
        )
        if budget is not None:
            history = self.metrics.histogram("engine.query_seconds.approx")
            if (
                history.count >= PLANNER_MIN_SAMPLES
                and history.percentile(0.95) > budget
            ):
                return "corridor"
        return "approx"

    def _same_cluster(self, source: int, target: int) -> bool:
        """True when both endpoints share a level-0 backbone cluster.

        Cluster membership is read off the level-0 labels: nodes of one
        cluster are labelled with the same entrance (border) set, so a
        shared entrance means the pair is served by one local unit.
        Without a built index the check conservatively answers False.
        """
        index = self._index
        if index is None or not index.levels:
            return False
        level0 = index.levels[0]
        label_s = level0.get(source)
        label_t = level0.get(target)
        if label_s is None or label_t is None:
            return False
        return not set(label_s.entrances).isdisjoint(label_t.entrances)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def query(
        self,
        source: int,
        target: int,
        *,
        mode: str = "auto",
        time_budget: float | None = None,
        use_cache: bool = True,
    ) -> QueryResponse:
        """Serve one skyline path query."""
        responses = self.query_group(
            source,
            [target],
            mode=mode,
            time_budget=time_budget,
            use_cache=use_cache,
        )
        return responses[0]

    def query_group(
        self,
        source: int,
        targets: list[int],
        *,
        mode: str = "auto",
        time_budget: float | None = None,
        use_cache: bool = True,
    ) -> list[QueryResponse]:
        """Serve many queries sharing one source.

        Targets planned for the backbone approximation share a single
        grow-S phase (:func:`backbone_query_shared_source`); the rest
        run individually.  Results are positionally aligned with
        ``targets``.
        """
        if not self._graph.has_node(source):
            raise NodeNotFoundError(source)
        for target in targets:
            if not self._graph.has_node(target):
                raise NodeNotFoundError(target)
        budget = (
            time_budget if time_budget is not None else self.default_time_budget
        )

        tracer = resolve_tracer(self.tracer)
        with tracer.span(
            "serve.query_group", source=source, targets=len(targets)
        ) as serve_span:
            answers: dict[int, QueryResponse] = {}
            approx_targets: list[int] = []
            for target in targets:
                if target in answers or target in approx_targets:
                    continue
                resolved = self.plan(source, target, mode, time_budget=budget)
                if resolved == "approx":
                    cached = self._cache_lookup(
                        source, target, "approx", use_cache
                    )
                    if cached is not None:
                        serve_span.count("cache_hits")
                        answers[target] = cached
                    else:
                        approx_targets.append(target)
                elif resolved == "corridor":
                    answers[target] = self._serve_corridor(
                        source, target, budget, use_cache, tracer
                    )
                else:
                    answers[target] = self._serve_exact(
                        source, target, budget, use_cache, tracer
                    )

            if approx_targets:
                index = self.ensure_index()
                generation = self._generation
                started = time.perf_counter()
                # Service "auto" means flat on G_L: the index-cached
                # snapshot amortizes its build across every query, and
                # the abstracted graph sits below the batch crossover.
                # A pinned engine="batch" shares one bucket-mode m_BBS
                # traversal across the whole target group instead.
                if self.engine == "python":
                    group_engine = "python"
                elif self.engine == "batch":
                    group_engine = "batch"
                else:
                    group_engine = "flat"
                results = backbone_query_shared_source(
                    index, source, approx_targets, time_budget=budget,
                    tracer=tracer,
                    engine=group_engine,
                )
                for target in approx_targets:
                    answers[target] = self._record(
                        self._wrap_approx(
                            source, target, results[target], generation
                        ),
                        use_cache,
                    )
                self.metrics.observe(
                    "engine.group_seconds", time.perf_counter() - started
                )

        if serve_span.enabled:
            # Fold the finished span tree (serving overhead plus every
            # query.phase.* child) into the latency histograms, so the
            # registry exposes e.g. a query.phase.grow_s percentile
            # series without a separate trace consumer.
            aggregate_spans([serve_span], self.metrics)

        return [answers[target] for target in targets]

    def query_batch_fused(
        self,
        pairs: list[tuple[int, int]],
        *,
        time_budget: float | None = None,
        use_cache: bool = True,
    ) -> list[QueryResponse]:
        """Serve many exact queries through one fused bucket traversal.

        The batch-tier counterpart of calling :meth:`query` with
        ``mode="exact"`` per pair: cache hits are served individually,
        and the remaining misses run as a single
        :func:`~repro.accel.batch_kernel.fused_skyline_batch` call that
        shares bucket pops, bound projection, and the candidate sweep
        across every query in the batch — where the measured 3.5x+ over
        the python engine comes from (per-query serving, flat or batch,
        sits near 2.2x on the same workload).

        Answers are answer-set-equal to per-query serving (equal-cost
        alternates and counters may differ — the batch kernel's
        documented tier).  ``elapsed_seconds`` on each miss is the
        fused wall clock split evenly across the misses, since the
        shared traversal has no per-query attribution; for the same
        reason ``time_budget`` caps the whole traversal, not each
        query (expiry truncates every still-running query at once).  When the engine
        does not resolve to the batch kernel (:meth:`batch_tier` false,
        e.g. ``engine="python"``), every miss falls back to the serial
        exact path, so callers may route unconditionally.

        Identical pairs in one call are computed once and fanned back
        out; positions always align with ``pairs``.
        """
        for source, target in pairs:
            if not self._graph.has_node(source):
                raise NodeNotFoundError(source)
            if not self._graph.has_node(target):
                raise NodeNotFoundError(target)
        budget = (
            time_budget if time_budget is not None else self.default_time_budget
        )
        responses: dict[int, QueryResponse] = {}
        miss_positions: dict[tuple[int, int], list[int]] = {}
        tracer = resolve_tracer(self.tracer)
        for position, (source, target) in enumerate(pairs):
            if (source, target) in miss_positions:
                miss_positions[(source, target)].append(position)
                continue
            cached = self._cache_lookup(source, target, "exact", use_cache)
            if cached is not None:
                responses[position] = cached
            else:
                miss_positions.setdefault((source, target), []).append(
                    position
                )
        if miss_positions:
            snapshot = self._original_snapshot()
            if snapshot is None or self._kernel_for(snapshot) != "batch":
                for (source, target), spots in miss_positions.items():
                    response = self._serve_exact(
                        source, target, budget, use_cache, tracer
                    )
                    for spot in spots:
                        responses[spot] = response
            else:
                from repro.accel.batch_kernel import fused_skyline_batch

                run_pairs = list(miss_positions)
                generation = self._generation
                landmarks = self._original_landmarks
                bounds = None
                if self.bound_provider == "pareto_prep":
                    from repro.accel.bounds import ParetoPrepBounds

                    bounds = [
                        ParetoPrepBounds(snapshot, [target])
                        for _, target in run_pairs
                    ]
                elif landmarks is not None and self.bound_provider != "exact":
                    bounds = [
                        LandmarkLowerBounds(landmarks, [target])
                        for _, target in run_pairs
                    ]
                started = time.perf_counter()
                with tracer.span(
                    "serve.fused_batch", queries=len(run_pairs)
                ):
                    outcomes = fused_skyline_batch(
                        self._graph,
                        snapshot,
                        run_pairs,
                        bounds=bounds,
                        time_budget=budget,
                    )
                per_query = (
                    (time.perf_counter() - started) / len(run_pairs)
                )
                self.metrics.increment("engine.fused_batches")
                self.metrics.increment(
                    "engine.fused_batch_queries", len(run_pairs)
                )
                for (source, target), outcome in zip(run_pairs, outcomes):
                    response = self._record(
                        QueryResponse(
                            source=source,
                            target=target,
                            mode="exact",
                            paths=outcome.paths,
                            truncated=outcome.stats.timed_out,
                            elapsed_seconds=per_query,
                            generation=generation,
                            stats=outcome.stats,
                        ),
                        use_cache,
                    )
                    for spot in miss_positions[(source, target)]:
                        responses[spot] = response
        return [responses[position] for position in range(len(pairs))]

    def _serve_exact(
        self,
        source: int,
        target: int,
        budget: float | None,
        use_cache: bool,
        tracer: Tracer | None = None,
    ) -> QueryResponse:
        cached = self._cache_lookup(source, target, "exact", use_cache)
        if cached is not None:
            return cached
        generation = self._generation
        started = time.perf_counter()
        bounds = self._bounds_for(target)
        snapshot = self._original_snapshot()
        outcome = skyline_paths(
            self._graph, source, target, bounds=bounds, time_budget=budget,
            tracer=tracer,
            engine=self._kernel_for(snapshot),
            snapshot=snapshot,
        )
        response = QueryResponse(
            source=source,
            target=target,
            mode="exact",
            paths=outcome.paths,
            truncated=outcome.stats.timed_out,
            elapsed_seconds=time.perf_counter() - started,
            generation=generation,
            stats=outcome.stats,
        )
        return self._record(response, use_cache)

    def _serve_corridor(
        self,
        source: int,
        target: int,
        budget: float | None,
        use_cache: bool,
        tracer: Tracer | None = None,
    ) -> QueryResponse:
        """The corridor tier: restricted exact BBS, scored, escalating.

        The corridor (backbone sketch + k-hop expansion) is built once
        per (source, target, radius, generation) and reused across
        calls; the restricted search then spends whatever the budget
        has left.  The answer is scored against the cached exact
        reference when one exists; with a ``quality_target`` set, a
        provably-missed target re-runs the exact tier in the remaining
        budget and serves its answer instead (``escalated=True``).
        """
        cached = self._cache_lookup(source, target, "corridor", use_cache)
        if cached is not None:
            return cached
        generation = self._generation
        started = time.perf_counter()
        deadline = started + budget if budget is not None else None
        corridor = self._corridor_for(source, target, budget, tracer)
        remaining = (
            deadline - time.perf_counter() if deadline is not None else None
        )
        bounds = self._bounds_for(target)
        snapshot = self._original_snapshot()
        outcome = skyline_paths(
            self._graph,
            source,
            target,
            bounds=bounds,
            time_budget=remaining,
            tracer=tracer,
            engine=self._kernel_for(snapshot),
            snapshot=snapshot,
            restrict_to=corridor,
            # The corridor's unpacked backbone paths replace the
            # per-dimension shortest-path seeding: they stay inside the
            # corridor, cost nothing to compute here, and guarantee the
            # answer dominates-or-equals the backbone tier's.
            seed_with_shortest_paths=False,
            seed_paths=corridor.seed_paths,
        )
        truncated = outcome.stats.timed_out or corridor.backbone_truncated
        quality = self._score_corridor(
            source, target, outcome.paths, generation, truncated, use_cache
        )
        response = QueryResponse(
            source=source,
            target=target,
            mode="corridor",
            paths=outcome.paths,
            truncated=truncated,
            elapsed_seconds=time.perf_counter() - started,
            generation=generation,
            stats=outcome.stats,
            quality=quality,
        )
        if self.quality_target is not None and not quality.meets_target:
            remaining = (
                deadline - time.perf_counter() if deadline is not None else None
            )
            if remaining is None or remaining > 0:
                self.metrics.increment("engine.escalations")
                exact = self._serve_exact(
                    source, target, remaining, use_cache, tracer
                )
                # The escalated answer is served (and cached) under the
                # corridor mode key, carrying the failed report as the
                # audit trail for why the exact tier ran.
                response = replace(
                    exact,
                    mode="corridor",
                    quality=quality,
                    escalated=True,
                    cache_hit=False,
                    elapsed_seconds=time.perf_counter() - started,
                )
        return self._record(response, use_cache)

    def _corridor_for(
        self,
        source: int,
        target: int,
        budget: float | None,
        tracer: Tracer | None,
    ) -> Corridor:
        """The (source, target) corridor, built at most once per
        generation and radius.

        A corridor whose backbone sketch was budget-truncated is *not*
        cached: it may under-cover the skyline arbitrarily badly, and a
        later call with a larger budget deserves a full sketch.
        """
        key = CorridorKey(
            source, target, self.corridor_radius, self._generation
        )
        corridor = self._corridors.get(key)
        if corridor is not None:
            self.metrics.increment("engine.corridor_cache_hits")
            return corridor
        index = self.ensure_index()
        corridor = build_corridor(
            index,
            source,
            target,
            radius=self.corridor_radius,
            generation=self._generation,
            time_budget=budget,
            tracer=tracer,
            engine="python" if self.engine == "python" else "flat",
        )
        self.metrics.increment("engine.corridor_builds")
        self.metrics.observe(
            "engine.corridor_build_seconds", corridor.build_seconds
        )
        if not corridor.backbone_truncated:
            self._corridors.put(key, corridor)
        return corridor

    def _score_corridor(
        self,
        source: int,
        target: int,
        paths: list[Path],
        generation: int,
        truncated: bool,
        use_cache: bool,
    ) -> QualityReport:
        """Score a corridor answer against the exact-tier contract.

        The reference is the cached exact answer for the same pair and
        generation, when the cache holds one; otherwise only structural
        soundness is checkable (see
        :func:`repro.approx.quality.structural_report`).
        """
        reference = None
        if use_cache:
            reference = self.cache.get(
                engine_cache_key(source, target, "exact", generation)
            )
        if reference is not None:
            return score_paths(
                paths, reference.paths, target=self.quality_target
            )
        return structural_report(
            paths, target=self.quality_target, truncated=truncated
        )

    def _wrap_approx(
        self,
        source: int,
        target: int,
        result: QueryResult,
        generation: int,
    ) -> QueryResponse:
        result.planner_mode = "approx"
        return QueryResponse(
            source=source,
            target=target,
            mode="approx",
            paths=result.paths,
            truncated=result.truncated,
            elapsed_seconds=result.stats.elapsed_seconds,
            generation=generation,
            stats=result.stats,
        )

    def _cache_lookup(
        self, source: int, target: int, mode: str, use_cache: bool
    ) -> QueryResponse | None:
        if not use_cache:
            return None
        started = time.perf_counter()
        cached = self.cache.get(
            engine_cache_key(source, target, mode, self._generation)
        )
        if cached is None:
            return None
        hit = replace(
            cached,
            cache_hit=True,
            elapsed_seconds=time.perf_counter() - started,
        )
        self._count_query(hit)
        return hit

    def _record(self, response: QueryResponse, use_cache: bool) -> QueryResponse:
        # A truncated response is the partial skyline a deadline allowed,
        # not the answer; caching it would serve an incomplete result to
        # later callers with a larger (or no) budget.
        if use_cache and not response.truncated:
            key = engine_cache_key(
                response.source,
                response.target,
                response.mode,
                response.generation,
            )
            self.cache.put(key, response)
        self._count_query(response)
        return response

    def _count_query(self, response: QueryResponse) -> None:
        self.metrics.increment("engine.queries")
        self.metrics.increment(f"engine.queries.{response.mode}")
        if response.cache_hit:
            self.metrics.increment("engine.cache_hits")
        if response.truncated:
            self.metrics.increment("engine.truncated")
        self.metrics.observe("engine.query_seconds", response.elapsed_seconds)
        self.metrics.observe(
            f"engine.query_seconds.{response.mode}", response.elapsed_seconds
        )
        live = self._live
        if live is not None:
            live.observe("engine.query_seconds", response.elapsed_seconds)
            live.observe(
                "engine.cache_hit", 1.0 if response.cache_hit else 0.0
            )

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def bump_generation(self) -> int:
        """Manually retire every cached result (e.g. after editing the
        graph outside a maintainer)."""
        self._generation += 1
        self._original_landmarks = None
        self._csr_original = None
        removed = self.cache.invalidate_generations_below(self._generation)
        self._corridors.invalidate_generations_below(self._generation)
        self.metrics.increment("engine.generation_bumps")
        resolve_event_log(self.events).emit(
            "engine.cache_invalidation",
            generation=self._generation,
            removed=removed,
            reason="manual bump",
        )
        return self._generation

    def _on_maintenance(self, generation: int) -> None:
        """Maintainer callback: follow the repaired index and retire
        results computed against the old network."""
        assert self._maintainer is not None
        self._index = self._maintainer.index
        self._graph = self._maintainer.graph
        self._generation = generation
        self._original_landmarks = None  # distances may have changed
        self._csr_original = None  # topology/costs may have changed
        removed = self.cache.invalidate_generations_below(generation)
        self._corridors.invalidate_generations_below(generation)
        self.metrics.increment("engine.generation_bumps")
        resolve_event_log(self.events).emit(
            "engine.cache_invalidation",
            generation=generation,
            removed=removed,
            reason="maintenance",
        )
        if self._snapshotter is not None:
            started = time.perf_counter()
            try:
                self._snapshotter.snapshot(self._index, generation)
            except OSError:
                # Persistence is best-effort; serving must not die
                # because the snapshot disk is full or read-only.
                self.metrics.increment("engine.snapshot_failures")
            else:
                self.metrics.increment("engine.snapshots")
                self.metrics.observe(
                    "engine.snapshot_seconds", time.perf_counter() - started
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Engine + cache metrics and serving state as one dict."""
        doc = self.metrics.snapshot()
        doc["cache"] = self.cache.snapshot()
        doc["generation"] = self._generation
        doc["index_ready"] = self._index is not None
        doc["landmarks_ready"] = self._original_landmarks is not None
        doc["engine"] = self.engine
        doc["csr_ready"] = self._csr_original is not None
        doc["graph_nodes"] = self._graph.num_nodes
        return doc

    def runtime_status(self) -> dict:
        """Live serving state for :class:`repro.obs.live.LiveStatus`.

        Plain attribute reads (no locks beyond the cache snapshot's),
        so a status thread can call it at any moment without blocking a
        query in flight.
        """
        return {
            "generation": self._generation,
            "index_ready": self._index is not None,
            "landmarks_ready": self._original_landmarks is not None,
            "csr_ready": self._csr_original is not None,
            "engine": self.engine,
            "graph_nodes": self._graph.num_nodes,
            "queries_total": self.metrics.counter("engine.queries").value,
            "queries_by_mode": {
                mode: self.metrics.counter(f"engine.queries.{mode}").value
                for mode in ("exact", "approx", "corridor")
            },
            "escalations": self.metrics.counter("engine.escalations").value,
            "cache": self.cache.snapshot(),
        }

    def attach_live(self, live) -> "SkylineQueryEngine":
        """Publish this engine into a :class:`LiveStatus` document.

        Registers :meth:`runtime_status` as the ``"engine"`` source and
        starts feeding per-query rolling windows
        (``engine.query_seconds``, ``engine.cache_hit`` — the window
        mean of the latter is the live hit rate).
        """
        self._live = live
        live.register("engine", self.runtime_status)
        return self
