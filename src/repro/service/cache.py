"""Thread-safe LRU result cache for the query engine.

Entries are keyed by ``(source, target, mode, generation)``.  The
``mode`` component keeps answer tiers apart: an exact, approximate,
and corridor answer for the same pair are three distinct entries, so
warming one tier can never serve its (differently-accurate) answer to
a caller asking for another.  The generation component is the engine's
index generation, bumped whenever :mod:`repro.core.maintenance`
applies a structural update — a cached skyline computed against an old
network can therefore never be served again, because post-update
lookups carry the new generation and simply miss.  Stale generations
are also purged eagerly on invalidation so capacity is not wasted on
unreachable entries.

The same class backs the engine's corridor-structure cache, whose
:class:`~repro.approx.corridor.CorridorKey` carries the same named
``generation`` field, so maintenance invalidation retires stale
corridors with no special-casing here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

CacheKey = Hashable


def key_generation(key: CacheKey) -> int | None:
    """The generation component of a cache key, or None.

    Keys built by :func:`repro.service.engine.engine_cache_key` carry a
    named ``generation`` field, so invalidation keeps matching them
    even when the key grows additional components (planner mode,
    budget, ...).  Bare tuples in the engine's historical
    ``(source, target, mode, generation)`` layout are still
    recognized; any other key has no generation and is never touched
    by generation-based invalidation.
    """
    generation = getattr(key, "generation", None)
    if isinstance(generation, int) and not isinstance(generation, bool):
        return generation
    if (
        isinstance(key, tuple)
        and len(key) == 4
        and isinstance(key[3], int)
        and not isinstance(key[3], bool)
    ):
        return key[3]
    return None


@dataclass
class CacheStats:
    """Counters describing cache behaviour so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU map from query keys to responses.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted when a put exceeds it.  ``capacity=0`` disables caching
        (every lookup misses, every put is dropped) without the caller
        needing a special case.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Any | None:
        """The cached value, refreshed to most-recently-used, or None."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert or refresh an entry, evicting LRU entries past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_generations_below(self, generation: int) -> int:
        """Drop entries whose key's generation component is stale.

        The generation is extracted by :func:`key_generation`, which
        understands every key the engine's central key builder can
        produce; keys without a generation are left alone.  Returns the
        number of entries removed.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if (key_gen := key_generation(key)) is not None
                and key_gen < generation
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += removed
            return removed

    def snapshot(self) -> dict:
        """Current counters and occupancy as one consistent dict.

        Every field is read under the cache lock (which also guards all
        counter mutation), so a snapshot taken during concurrent batch
        traffic is internally consistent — in particular ``hit_rate``
        always equals ``hits / (hits + misses)`` computed from the same
        returned dict, never a torn read across two instants.
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "invalidations": self.stats.invalidations,
                "hit_rate": self.stats.hit_rate,
            }
