"""The serving layer: a long-lived query engine over the library.

The library answers one query at a time from cold state; this package
adds everything a production deployment layers on top — a warm engine
with a query planner (:mod:`repro.service.engine`), a generation-aware
LRU result cache (:mod:`repro.service.cache`), a deduplicating,
grouping batch executor (:mod:`repro.service.batch`), and a metrics
registry with percentile latency summaries
(:mod:`repro.service.metrics`).
"""

from repro.service.batch import BatchResult, execute_batch
from repro.service.cache import CacheStats, ResultCache, key_generation
from repro.service.engine import (
    EngineCacheKey,
    QueryResponse,
    SkylineQueryEngine,
    engine_cache_key,
)
from repro.service.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "BatchResult",
    "CacheStats",
    "Counter",
    "EngineCacheKey",
    "Histogram",
    "MetricsRegistry",
    "QueryResponse",
    "ResultCache",
    "SkylineQueryEngine",
    "engine_cache_key",
    "execute_batch",
    "key_generation",
]
