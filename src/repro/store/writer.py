"""Single-pass writer for the binary index store.

Each section is encoded into memory, optionally zlib-compressed (kept
only when it actually shrinks), and checksummed; the header, section
table, and payloads are then written in one pass.  File writes are
atomic: the bytes land in a temp file in the target directory and
``os.replace`` publishes them, so a crash mid-save never clobbers a
previously good index file.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path as FilePath
from typing import TYPE_CHECKING

from repro.obs.tracer import Tracer, resolve_tracer
from repro.store.codec import ByteWriter
from repro.store.format import (
    FORMAT_VERSION,
    HEADER_STRUCT,
    MAGIC,
    RAW_SECTIONS,
    SECTION_CSR,
    SECTION_CSR_RAW,
    SECTION_FLAG_ZLIB,
    SECTION_LANDMARKS,
    SECTION_PARAMS,
    SECTION_PROVENANCE,
    SECTION_STRUCT,
    SECTION_TOP_GRAPH,
    level_section_tag,
    pack_tag,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import BackboneIndex
    from repro.core.labels import LevelIndex
    from repro.graph.mcrn import MultiCostGraph
    from repro.search.landmark import LandmarkIndex

# Payloads smaller than this never win from zlib framing overhead.
_MIN_COMPRESS_BYTES = 64


def encode_params(index: "BackboneIndex") -> bytes:
    """The params section: a small JSON document.

    Unlike the numeric sections this one is schema-bearing and tiny, so
    JSON keeps it self-describing (and lets ``repro index inspect``
    print it without the graph).
    """
    params = index.params
    document = {
        "dim": index.dim,
        "height": index.height,
        "build_seconds": index.build_stats.elapsed_seconds,
        "params": {
            "m_max": params.m_max,
            "m_min": params.m_min,
            "p": params.p,
            "p_ind": params.p_ind,
            "aggressive": params.aggressive.value,
            "clustering": params.clustering.value,
            "tree_policy": params.tree_policy.value,
            "label_scope": params.label_scope.value,
            "landmark_count": params.landmark_count,
            "max_levels": params.max_levels,
            "max_label_frontier": params.max_label_frontier,
        },
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def encode_level(level: "LevelIndex") -> bytes:
    """One level's labels: nodes, entrances, and skyline paths.

    Node and entrance keys are sorted and delta-encoded; path node
    sequences keep their stored order (delta-encoded along the walk)
    and path lists keep their Pareto-insertion order so a reloaded
    index reproduces query results exactly.
    """
    writer = ByteWriter()
    nodes = sorted(level.nodes())
    writer.uvarint(len(nodes))
    previous_node = 0
    for node in nodes:
        writer.svarint(node - previous_node)
        previous_node = node
        label = level.get(node)
        assert label is not None
        entrances = sorted(label.entrances)
        writer.uvarint(len(entrances))
        previous_entrance = 0
        for entrance in entrances:
            writer.svarint(entrance - previous_entrance)
            previous_entrance = entrance
            paths = label.entrances[entrance].paths()
            writer.uvarint(len(paths))
            for path in paths:
                writer.uvarint(len(path.nodes))
                writer.deltas(path.nodes)
                writer.floats(path.cost)
    return writer.payload()


def encode_top_graph(graph: "MultiCostGraph") -> bytes:
    """The most abstracted graph G_L: nodes, directedness, edges."""
    writer = ByteWriter()
    nodes = sorted(graph.nodes())
    writer.uvarint(len(nodes))
    writer.deltas(nodes)
    writer.uvarint(1 if graph.directed else 0)
    edges = sorted(graph.edges())
    writer.uvarint(len(edges))
    previous_u = 0
    for u, v, cost in edges:
        writer.svarint(u - previous_u)
        previous_u = u
        writer.svarint(v - u)
        writer.floats(cost)
    return writer.payload()


def encode_landmarks(landmarks: "LandmarkIndex") -> bytes:
    """The landmark lower-bound tables, exactly as built.

    Persisting these is the whole point of warm start: restoring them
    yields bit-identical triangle bounds with no Dijkstra per landmark
    on the load path.
    """
    writer = ByteWriter()
    ids = landmarks.landmarks
    tables = landmarks.distance_tables()
    writer.uvarint(len(ids))
    writer.uvarint(landmarks.dim)
    for landmark in ids:
        writer.svarint(landmark)
    for per_landmark in tables:
        for table in per_landmark:
            keys = sorted(table)
            writer.uvarint(len(keys))
            writer.deltas(keys)
            writer.floats(table[node] for node in keys)
    return writer.payload()


def encode_provenance(index: "BackboneIndex") -> bytes:
    """Shortcut provenance in insertion order.

    Order matters: path expansion uses the *first* recorded sequence
    per node pair, so preserving it keeps expansion deterministic
    across a save/load round-trip.
    """
    writer = ByteWriter()
    writer.uvarint(len(index.provenance))
    for (u, v, cost), sequence in index.provenance.items():
        writer.svarint(u)
        writer.svarint(v)
        writer.floats(cost)
        writer.uvarint(len(sequence))
        writer.deltas(sequence)
    return writer.payload()


def _finish_section(tag: str, raw: bytes, compress: bool) -> tuple[bytes, bytes, int]:
    """Compress (when worthwhile) and checksum one section.

    Returns ``(table_entry_without_offset_fixup, stored_bytes, flags)``
    — the caller fills offsets once every section's size is known.
    """
    flags = 0
    stored = raw
    if compress and len(raw) >= _MIN_COMPRESS_BYTES:
        packed = zlib.compress(raw, 6)
        if len(packed) < len(raw):
            stored = packed
            flags |= SECTION_FLAG_ZLIB
    return pack_tag(tag), stored, flags


def serialize_index(index: "BackboneIndex", *, compress: bool = True) -> bytes:
    """Serialize a built index to store-format bytes."""
    sections: list[tuple[bytes, bytes, int, int]] = []  # tag, stored, flags, raw_len
    for tag, raw in _iter_sections(index):
        packed_tag, stored, flags = _finish_section(
            tag, raw, compress and tag not in RAW_SECTIONS
        )
        sections.append((packed_tag, stored, flags, len(raw)))

    header = HEADER_STRUCT.pack(
        MAGIC, FORMAT_VERSION, 0, index.dim, index.height, len(sections)
    )
    table_size = SECTION_STRUCT.size * len(sections)
    offset = len(header) + table_size
    table = bytearray()
    for packed_tag, stored, flags, raw_len in sections:
        table += SECTION_STRUCT.pack(
            packed_tag, flags, 0, offset, len(stored), raw_len,
            zlib.crc32(stored) & 0xFFFFFFFF,
        )
        offset += len(stored)
    return header + bytes(table) + b"".join(s[1] for s in sections)


def _iter_sections(index: "BackboneIndex"):
    yield SECTION_PARAMS, encode_params(index)
    yield SECTION_TOP_GRAPH, encode_top_graph(index.top_graph)
    yield SECTION_LANDMARKS, encode_landmarks(index.landmarks)
    yield SECTION_PROVENANCE, encode_provenance(index)
    # Persisting the G_L CSR snapshot lets a warm start serve flat
    # queries without rebuilding it (repro.accel).  The raw twin is the
    # same snapshot as an uncompressed array pack so multi-process
    # readers can mmap it and attach zero-copy (repro.mp).
    yield SECTION_CSR, index.csr_top().to_payload()
    yield SECTION_CSR_RAW, index.csr_top().to_raw_bytes()
    for i, level in enumerate(index.levels):
        yield level_section_tag(i), encode_level(level)


def atomic_write_bytes(path: FilePath | str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temp file lives in the destination directory so the final
    rename never crosses a filesystem boundary.
    """
    path = FilePath(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


def save_index(
    index: "BackboneIndex",
    path: FilePath | str,
    *,
    compress: bool = True,
    tracer: Tracer | None = None,
) -> dict:
    """Write an index to a binary store file (atomically).

    Returns a small info dict: output path, byte count, and section
    count — what callers typically log.
    """
    tracer = resolve_tracer(tracer)
    with tracer.span("store.save", path=str(path), compress=compress) as span:
        data = serialize_index(index, compress=compress)
        atomic_write_bytes(path, data)
        if span.enabled:
            span.set(bytes=len(data), levels=index.height)
    return {
        "path": str(path),
        "bytes": len(data),
        "sections": 6 + index.height,
    }
