"""Low-level encoding primitives for the binary index format.

Node identifiers dominate an index's payload (label path sequences,
adjacency, landmark table keys), and consecutive ids are strongly
correlated — sorted key sets by construction, path sequences by road
locality.  Varint/zigzag/delta encoding therefore shrinks them by
4-6x against boxed JSON numbers.  Cost floats go through
:mod:`array` blocks (``typecode 'd'``), stored little-endian, which
both packs them at 8 bytes each and decodes in one C-level call.
"""

from __future__ import annotations

import sys
from array import array
from collections.abc import Iterable, Sequence

from repro.errors import BuildError

_LITTLE_ENDIAN = sys.byteorder == "little"


def zigzag(value: int) -> int:
    """Map a signed int to an unsigned one (small magnitudes stay small)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


class ByteWriter:
    """Accumulates a varint byte stream plus a parallel float block.

    The two streams serialize independently: integers as LEB128
    varints, floats appended (in encounter order) to one ``array('d')``
    block.  Readers consume floats in the same order the writer
    produced them, so no per-float framing is needed.
    """

    __slots__ = ("_ints", "_floats")

    def __init__(self) -> None:
        self._ints = bytearray()
        self._floats: array = array("d")

    def uvarint(self, value: int) -> None:
        """Append one unsigned LEB128 varint."""
        if value < 0:
            raise BuildError(f"uvarint cannot encode negative value {value}")
        out = self._ints
        while value >= 0x80:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)

    def svarint(self, value: int) -> None:
        """Append one signed (zigzag) varint."""
        self.uvarint(zigzag(value))

    def deltas(self, values: Sequence[int]) -> None:
        """Append a sequence as first value + signed deltas."""
        previous = 0
        for value in values:
            self.svarint(value - previous)
            previous = value

    def floats(self, values: Iterable[float]) -> None:
        """Append floats to the parallel float block."""
        self._floats.extend(values)

    def payload(self) -> bytes:
        """The section payload: varint-framed int stream, then floats."""
        header = ByteWriter._frame(len(self._ints))
        float_block = self._floats
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            float_block = array("d", float_block)
            float_block.byteswap()
        return bytes(header) + bytes(self._ints) + float_block.tobytes()

    @staticmethod
    def _frame(value: int) -> bytearray:
        out = bytearray()
        while value >= 0x80:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
        return out


class ByteReader:
    """Decodes a :meth:`ByteWriter.payload` section."""

    __slots__ = ("_data", "_pos", "_int_end", "_floats", "_float_pos")

    def __init__(self, payload: bytes) -> None:
        self._data = payload
        self._pos = 0
        int_length = self._raw_uvarint()
        self._int_end = self._pos + int_length
        if self._int_end > len(payload):
            raise BuildError("store section truncated: int stream overruns")
        float_bytes = payload[self._int_end :]
        if len(float_bytes) % 8:
            raise BuildError("store section corrupt: ragged float block")
        floats: array = array("d")
        floats.frombytes(float_bytes)
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            floats.byteswap()
        self._floats = floats
        self._float_pos = 0

    def _raw_uvarint(self) -> int:
        data = self._data
        shift = 0
        result = 0
        while True:
            if self._pos >= len(data):
                raise BuildError("store section truncated: unterminated varint")
            byte = data[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise BuildError("store section corrupt: varint too long")

    def uvarint(self) -> int:
        """Read one unsigned varint from the int stream."""
        if self._pos >= self._int_end:
            raise BuildError("store section truncated: int stream exhausted")
        return self._raw_uvarint()

    def svarint(self) -> int:
        """Read one signed (zigzag) varint."""
        return unzigzag(self.uvarint())

    def deltas(self, count: int) -> list[int]:
        """Read ``count`` delta-encoded values."""
        values: list[int] = []
        previous = 0
        for _ in range(count):
            previous += self.svarint()
            values.append(previous)
        return values

    def floats(self, count: int) -> tuple[float, ...]:
        """Read ``count`` floats from the float block, in write order."""
        end = self._float_pos + count
        if end > len(self._floats):
            raise BuildError("store section truncated: float block exhausted")
        values = tuple(self._floats[self._float_pos : end])
        self._float_pos = end
        return values

    def ints_exhausted(self) -> bool:
        """True when the int stream is fully consumed."""
        return self._pos >= self._int_end
