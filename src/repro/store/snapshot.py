"""Generation-aware index snapshots with retention and recovery.

A :class:`Snapshotter` owns one directory of binary store files, one
per index generation (``snapshot-g0000000042.rbi``).  Writes are
atomic (the store writer's tmp-file + ``os.replace``), old generations
are pruned down to the newest K, and recovery walks generations newest
first, *skipping* any snapshot that fails to parse or checksum —
exactly the crash-tolerance a serving deployment needs: a process that
died mid-snapshot restarts from the newest snapshot that is whole.

Attach one to a :class:`~repro.core.maintenance.MaintainableIndex`
(:meth:`Snapshotter.attach`) to persist every repaired index as soon
as maintenance publishes it, or pass it to
:class:`~repro.service.engine.SkylineQueryEngine` to do the same from
the serving layer.
"""

from __future__ import annotations

import re
from pathlib import Path as FilePath
from typing import TYPE_CHECKING

from repro.errors import BuildError, ReproError
from repro.obs.events import EventLog, resolve_event_log
from repro.obs.tracer import Tracer, resolve_tracer
from repro.store.reader import load_index
from repro.store.writer import save_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import BackboneIndex
    from repro.core.maintenance import MaintainableIndex
    from repro.graph.mcrn import MultiCostGraph

_SNAPSHOT_RE = re.compile(r"^snapshot-g(\d{10})\.rbi$")


def _snapshot_name(generation: int) -> str:
    return f"snapshot-g{generation:010d}.rbi"


class Snapshotter:
    """Writes, retains, and recovers per-generation index snapshots.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first write.
    retain:
        How many newest generations to keep (older ones are pruned
        after every successful snapshot).
    compress:
        Whether snapshot sections are zlib-compressed.
    """

    def __init__(
        self,
        directory: FilePath | str,
        *,
        retain: int = 3,
        compress: bool = True,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        if retain < 1:
            raise BuildError(f"snapshot retention must be >= 1, got {retain}")
        self.directory = FilePath(directory)
        self.retain = retain
        self.compress = compress
        self.tracer = tracer
        self.events = events

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def snapshot(self, index: "BackboneIndex", generation: int) -> FilePath:
        """Atomically persist one generation; prune beyond retention."""
        tracer = resolve_tracer(self.tracer)
        with tracer.span("store.snapshot", generation=generation) as span:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / _snapshot_name(generation)
            info = save_index(
                index, path, compress=self.compress, tracer=self.tracer
            )
            pruned = self.prune()
            if span.enabled:
                span.set(bytes=info["bytes"], pruned=len(pruned))
        resolve_event_log(self.events).emit(
            "store.snapshot",
            generation=generation,
            path=str(path),
            bytes=info["bytes"],
            pruned=len(pruned),
        )
        return path

    def prune(self) -> list[FilePath]:
        """Delete all but the newest ``retain`` snapshots; return them."""
        removed: list[FilePath] = []
        for _generation, path in self.snapshots()[self.retain :]:
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                continue  # a locked/vanished file is not worth failing over
        return removed

    # ------------------------------------------------------------------
    # listing and recovery
    # ------------------------------------------------------------------

    def snapshots(self) -> list[tuple[int, FilePath]]:
        """``(generation, path)`` pairs, newest generation first."""
        found: list[tuple[int, FilePath]] = []
        if not self.directory.is_dir():
            return found
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        found.sort(key=lambda pair: pair[0], reverse=True)
        return found

    def recover(
        self,
        original_graph: "MultiCostGraph",
        *,
        lazy: bool = False,
    ) -> tuple["BackboneIndex", int] | None:
        """Load the newest snapshot that parses and checksums cleanly.

        Corrupt or truncated snapshots (e.g. from a crash mid-write on
        a filesystem without atomic rename, or bit rot) are skipped,
        not fatal.  Returns ``(index, generation)`` or ``None`` when no
        valid snapshot exists.
        """
        tracer = resolve_tracer(self.tracer)
        with tracer.span("store.recover", directory=str(self.directory)) as span:
            skipped = 0
            for generation, path in self.snapshots():
                try:
                    index = load_index(
                        path, original_graph, lazy=lazy, tracer=self.tracer
                    )
                except (ReproError, OSError):
                    skipped += 1
                    continue
                if span.enabled:
                    span.set(generation=generation, skipped=skipped)
                resolve_event_log(self.events).emit(
                    "store.recovery",
                    generation=generation,
                    path=str(path),
                    skipped=skipped,
                )
                return index, generation
            if span.enabled:
                span.set(generation=None, skipped=skipped)
        resolve_event_log(self.events).emit(
            "store.recovery",
            generation=None,
            skipped=skipped,
            directory=str(self.directory),
        )
        return None

    # ------------------------------------------------------------------
    # maintenance integration
    # ------------------------------------------------------------------

    def attach(self, maintainer: "MaintainableIndex") -> None:
        """Snapshot every generation the maintainer publishes.

        Snapshot I/O failures are swallowed: persistence is a
        durability nicety, index repair must never fail because the
        disk is full.
        """

        def on_update(generation: int) -> None:
            try:
                self.snapshot(maintainer.index, generation)
            except OSError:
                pass

        maintainer.subscribe(on_update)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshotter({self.directory}, retain={self.retain}, "
            f"{len(self.snapshots())} on disk)"
        )
