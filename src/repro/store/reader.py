"""Reader for the binary index store, with lazy section loading.

:class:`IndexStore` parses the header and section table once; section
payloads are read, CRC-verified, and decompressed on demand.  A full
load materializes every section; a lazy load restores the top graph,
landmark tables, and provenance immediately and defers the per-level
label sections behind a :class:`LazyLevelList`, so a serving process
can answer its first backbone query before the deeper levels ever
touch disk.

Every corruption mode — truncated file, bad checksum, wrong magic or
version, ragged payload — surfaces as a clean
:class:`~repro.errors.BuildError` naming the file and section.
"""

from __future__ import annotations

import json
import mmap
import threading
import zlib
from collections.abc import Sequence
from pathlib import Path as FilePath
from typing import TYPE_CHECKING

from repro.errors import BuildError
from repro.obs.tracer import Tracer, resolve_tracer
from repro.store.codec import ByteReader
from repro.store.format import (
    FORMAT_VERSION,
    HEADER_STRUCT,
    MAGIC,
    MAX_SECTIONS,
    SECTION_CSR,
    SECTION_CSR_RAW,
    SECTION_LANDMARKS,
    SECTION_PARAMS,
    SECTION_PROVENANCE,
    SECTION_STRUCT,
    SECTION_TOP_GRAPH,
    SectionInfo,
    level_section_tag,
    unpack_tag,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import BackboneIndex
    from repro.core.labels import LevelIndex
    from repro.graph.mcrn import MultiCostGraph


def is_store_file(path: FilePath | str) -> bool:
    """True when the file starts with the binary store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class IndexStore:
    """An opened store file: header, section table, on-demand payloads."""

    def __init__(self, path: FilePath | str) -> None:
        self.path = FilePath(path)
        try:
            with open(self.path, "rb") as handle:
                header = handle.read(HEADER_STRUCT.size)
                if len(header) < HEADER_STRUCT.size:
                    raise BuildError(f"{self.path}: truncated store header")
                magic, version, _flags, dim, level_count, section_count = (
                    HEADER_STRUCT.unpack(header)
                )
                if magic != MAGIC:
                    raise BuildError(f"{self.path}: not a backbone index store")
                if version != FORMAT_VERSION:
                    raise BuildError(
                        f"{self.path}: unsupported store version {version} "
                        f"(reader supports {FORMAT_VERSION})"
                    )
                if section_count > MAX_SECTIONS:
                    raise BuildError(
                        f"{self.path}: corrupt header "
                        f"({section_count} sections)"
                    )
                table = handle.read(SECTION_STRUCT.size * section_count)
                if len(table) < SECTION_STRUCT.size * section_count:
                    raise BuildError(f"{self.path}: truncated section table")
        except OSError as error:
            raise BuildError(f"{self.path}: cannot open store: {error}") from error
        self.version = version
        self.dim = dim
        self.level_count = level_count
        self.sections: dict[str, SectionInfo] = {}
        for i in range(section_count):
            raw_tag, flags, _reserved, offset, stored_len, raw_len, crc = (
                SECTION_STRUCT.unpack_from(table, i * SECTION_STRUCT.size)
            )
            tag = unpack_tag(raw_tag)
            self.sections[tag] = SectionInfo(
                tag=tag,
                flags=flags,
                offset=offset,
                stored_len=stored_len,
                raw_len=raw_len,
                crc32=crc,
            )
        self._size = self.path.stat().st_size
        self._mmap: mmap.mmap | None = None
        self._mmap_lock = threading.Lock()
        self._crc_checked: set[str] = set()

    # ------------------------------------------------------------------
    # raw section access
    # ------------------------------------------------------------------

    def section_bytes(self, tag: str) -> bytes:
        """Read, checksum-verify, and decompress one section payload."""
        info = self.sections.get(tag)
        if info is None:
            raise BuildError(f"{self.path}: missing section {tag!r}")
        if info.offset + info.stored_len > self._size:
            raise BuildError(
                f"{self.path}: section {tag!r} truncated "
                f"(need {info.offset + info.stored_len} bytes, "
                f"file has {self._size})"
            )
        try:
            with open(self.path, "rb") as handle:
                handle.seek(info.offset)
                stored = handle.read(info.stored_len)
        except OSError as error:
            raise BuildError(
                f"{self.path}: cannot read section {tag!r}: {error}"
            ) from error
        if len(stored) != info.stored_len:
            raise BuildError(f"{self.path}: section {tag!r} truncated")
        if zlib.crc32(stored) & 0xFFFFFFFF != info.crc32:
            raise BuildError(
                f"{self.path}: section {tag!r} failed its CRC32 check"
            )
        if info.compressed:
            try:
                raw = zlib.decompress(stored)
            except zlib.error as error:
                raise BuildError(
                    f"{self.path}: section {tag!r} failed to decompress: "
                    f"{error}"
                ) from error
        else:
            raw = stored
        if len(raw) != info.raw_len:
            raise BuildError(
                f"{self.path}: section {tag!r} decoded to {len(raw)} bytes, "
                f"expected {info.raw_len}"
            )
        return raw

    # ------------------------------------------------------------------
    # mmap section views (repro.mp zero-copy attach)
    # ------------------------------------------------------------------

    def _mapped(self) -> mmap.mmap:
        """The whole file memory-mapped read-only, opened at most once."""
        mapped = self._mmap
        if mapped is None:
            with self._mmap_lock:
                if self._mmap is None:
                    try:
                        with open(self.path, "rb") as handle:
                            self._mmap = mmap.mmap(
                                handle.fileno(), 0, access=mmap.ACCESS_READ
                            )
                    except (OSError, ValueError) as error:
                        raise BuildError(
                            f"{self.path}: cannot mmap store: {error}"
                        ) from error
                mapped = self._mmap
        return mapped

    def section_view(self, tag: str) -> memoryview:
        """A read-only view of one *uncompressed* section, no copies.

        The view aliases the page cache through an mmap of the store
        file; nothing is materialized, and the mapping stays alive for
        as long as any view (or array built on one) references it.  The
        section's CRC is verified on first access — that touches the
        pages once but allocates nothing.  Compressed sections cannot be
        viewed in place; use :meth:`section_bytes` for those.
        """
        info = self.sections.get(tag)
        if info is None:
            raise BuildError(f"{self.path}: missing section {tag!r}")
        if info.compressed:
            raise BuildError(
                f"{self.path}: section {tag!r} is compressed and cannot "
                f"be mapped in place"
            )
        if info.offset + info.stored_len > self._size:
            raise BuildError(
                f"{self.path}: section {tag!r} truncated "
                f"(need {info.offset + info.stored_len} bytes, "
                f"file has {self._size})"
            )
        view = memoryview(self._mapped())[
            info.offset : info.offset + info.stored_len
        ]
        if tag not in self._crc_checked:
            if zlib.crc32(view) & 0xFFFFFFFF != info.crc32:
                raise BuildError(
                    f"{self.path}: section {tag!r} failed its CRC32 check"
                )
            self._crc_checked.add(tag)
        return view

    def map_csr(self):
        """Attach to the persisted G_L CSR snapshot zero-copy, or None.

        Requires the ``csrraw`` section (files written before the
        multi-process layer lack it — callers fall back to
        :meth:`load_csr`).  The returned snapshot's arrays are read-only
        views into the mmap'd file; every process mapping the same
        store file shares one page-cache copy of the buffers.
        """
        if SECTION_CSR_RAW not in self.sections:
            return None
        from repro.accel.csr import CSRSnapshot

        return CSRSnapshot.from_raw_buffer(self.section_view(SECTION_CSR_RAW))

    def close(self) -> None:
        """Release the mmap if no exported views pin it (best effort)."""
        with self._mmap_lock:
            if self._mmap is not None:
                try:
                    self._mmap.close()
                except BufferError:
                    # Live section views still alias the mapping; the OS
                    # reclaims it when the last one is garbage-collected.
                    return
                self._mmap = None

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def params_document(self) -> dict:
        """The decoded params section (JSON)."""
        try:
            return json.loads(self.section_bytes(SECTION_PARAMS))
        except json.JSONDecodeError as error:
            raise BuildError(
                f"{self.path}: params section is not valid JSON: {error}"
            ) from error

    def load_params(self):
        """The :class:`~repro.core.params.BackboneParams` stored here."""
        from repro.core.params import (
            AggressiveMode,
            BackboneParams,
            ClusteringStrategy,
            LabelScope,
            TreePolicy,
        )

        raw = self.params_document()["params"]
        return BackboneParams(
            m_max=raw["m_max"],
            m_min=raw["m_min"],
            p=raw["p"],
            p_ind=raw["p_ind"],
            aggressive=AggressiveMode(raw["aggressive"]),
            clustering=ClusteringStrategy(raw["clustering"]),
            tree_policy=TreePolicy(raw["tree_policy"]),
            label_scope=LabelScope(raw["label_scope"]),
            landmark_count=raw["landmark_count"],
            max_levels=raw["max_levels"],
            max_label_frontier=raw["max_label_frontier"],
        )

    def load_level(self, level: int) -> "LevelIndex":
        """Decode one level's label section."""
        from repro.core.labels import LevelIndex
        from repro.paths.path import Path

        reader = ByteReader(self.section_bytes(level_section_tag(level)))
        index = LevelIndex()
        node = 0
        for _ in range(reader.uvarint()):
            node += reader.svarint()
            entrance = 0
            for _ in range(reader.uvarint()):
                entrance += reader.svarint()
                for _ in range(reader.uvarint()):
                    length = reader.uvarint()
                    nodes = reader.deltas(length)
                    cost = reader.floats(self.dim)
                    index.add_path(node, entrance, Path(nodes, cost))
        return index

    def load_top_graph(self) -> "MultiCostGraph":
        """Decode the most abstracted graph G_L."""
        from repro.graph.mcrn import MultiCostGraph

        reader = ByteReader(self.section_bytes(SECTION_TOP_GRAPH))
        node_count = reader.uvarint()
        nodes = reader.deltas(node_count)
        directed = bool(reader.uvarint())
        graph = MultiCostGraph(self.dim, directed=directed)
        for n in nodes:
            graph.add_node(n)
        u = 0
        for _ in range(reader.uvarint()):
            u += reader.svarint()
            v = u + reader.svarint()
            graph.add_edge(u, v, reader.floats(self.dim))
        return graph

    def load_landmarks(self, top_graph: "MultiCostGraph"):
        """Restore the landmark index from its persisted tables.

        No Dijkstra runs here — the tables come back exactly as built,
        so the restored bounds are bit-identical to the saved ones.
        """
        from repro.search.landmark import LandmarkIndex

        reader = ByteReader(self.section_bytes(SECTION_LANDMARKS))
        landmark_count = reader.uvarint()
        dim = reader.uvarint()
        if dim != self.dim:
            raise BuildError(
                f"{self.path}: landmark section dim {dim} != header {self.dim}"
            )
        ids = [reader.svarint() for _ in range(landmark_count)]
        tables: list[list[dict[int, float]]] = []
        for _ in range(landmark_count):
            per_landmark: list[dict[int, float]] = []
            for _ in range(dim):
                size = reader.uvarint()
                keys = reader.deltas(size)
                values = reader.floats(size)
                per_landmark.append(dict(zip(keys, values)))
            tables.append(per_landmark)
        return LandmarkIndex.from_tables(dim, ids, tables)

    def load_csr(self):
        """Decode the persisted CSR snapshot of G_L, or None if absent.

        Files written before the flat engine existed simply lack the
        section; the index then rebuilds the snapshot on first use.
        """
        if SECTION_CSR not in self.sections:
            return None
        from repro.accel.csr import CSRSnapshot

        return CSRSnapshot.from_payload(self.section_bytes(SECTION_CSR))

    def load_provenance(self) -> dict:
        """Decode the shortcut provenance map, insertion order intact."""
        reader = ByteReader(self.section_bytes(SECTION_PROVENANCE))
        provenance: dict = {}
        for _ in range(reader.uvarint()):
            u = reader.svarint()
            v = reader.svarint()
            cost = reader.floats(self.dim)
            length = reader.uvarint()
            provenance[(u, v, cost)] = tuple(reader.deltas(length))
        return provenance

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def load(
        self,
        original_graph: "MultiCostGraph",
        *,
        lazy: bool = False,
        tracer: Tracer | None = None,
    ) -> "BackboneIndex":
        """Assemble a queryable :class:`BackboneIndex` from this store."""
        from repro.core.index import BackboneIndex, BuildStats

        tracer = resolve_tracer(tracer)
        with tracer.span(
            "store.load", path=str(self.path), lazy=lazy
        ) as span:
            params = self.load_params()
            top_graph = self.load_top_graph()
            landmarks = self.load_landmarks(top_graph)
            provenance = self.load_provenance()
            if lazy:
                levels: Sequence = LazyLevelList(self, self.level_count)
            else:
                levels = [self.load_level(i) for i in range(self.level_count)]
            index = BackboneIndex(
                original_graph=original_graph,
                params=params,
                levels=levels,  # type: ignore[arg-type]
                top_graph=top_graph,
                landmarks=landmarks,
                provenance=provenance,
                build_stats=BuildStats(),
            )
            snapshot = self.load_csr()
            if snapshot is not None:
                index.install_csr_top(snapshot)
            if span.enabled:
                span.set(
                    bytes=self._size,
                    levels=self.level_count,
                    materialized=0 if lazy else self.level_count,
                )
        return index

    def info(self) -> dict:
        """A JSON-friendly summary of the store file."""
        return {
            "path": str(self.path),
            "format": "repro-backbone-store",
            "version": self.version,
            "dim": self.dim,
            "levels": self.level_count,
            "file_bytes": self._size,
            "sections": [
                self.sections[tag].as_dict() for tag in self.sections
            ],
            "params": self.params_document(),
        }


class LazyLevelList(Sequence):
    """A list of :class:`LevelIndex` that faults sections in on access.

    Supports everything query evaluation does with ``index.levels`` —
    indexing, slicing, iteration, ``reversed``, ``len`` — while only
    touching disk for the levels actually visited.  Fault-in is
    guarded by a lock so concurrent serving threads load each section
    at most once.
    """

    def __init__(self, store: IndexStore, count: int) -> None:
        self._store = store
        self._count = count
        self._cache: list["LevelIndex | None"] = [None] * count
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self._materialize(i) for i in range(*item.indices(self._count))]
        index = item
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(item)
        return self._materialize(index)

    def _materialize(self, index: int) -> "LevelIndex":
        level = self._cache[index]
        if level is None:
            with self._lock:
                level = self._cache[index]
                if level is None:
                    level = self._store.load_level(index)
                    self._cache[index] = level
        return level

    def materialized_count(self) -> int:
        """How many levels have been faulted in so far."""
        return sum(1 for level in self._cache if level is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyLevelList({self.materialized_count()}/{self._count} "
            f"materialized from {self._store.path})"
        )


def load_index(
    path: FilePath | str,
    original_graph: "MultiCostGraph",
    *,
    lazy: bool = False,
    tracer: Tracer | None = None,
) -> "BackboneIndex":
    """Open a store file and assemble the index it contains."""
    return IndexStore(path).load(original_graph, lazy=lazy, tracer=tracer)


def inspect_store(path: FilePath | str) -> dict:
    """Header, section table, and params of a store file, as a dict."""
    return IndexStore(path).info()
