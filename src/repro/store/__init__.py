"""repro.store — binary index persistence and warm-start support.

The paper's economics ("build once, query forever") only hold in a
serving deployment if a built backbone index can be persisted and
reloaded far faster than it can be rebuilt.  This package provides:

* a **versioned, checksummed binary format** — a struct-packed header,
  a section table, and per-section payloads with varint/delta-encoded
  node ids, ``array``-packed cost floats, optional zlib compression,
  and a CRC32 per section (:mod:`repro.store.format`,
  :mod:`repro.store.writer`, :mod:`repro.store.reader`);
* **landmark table persistence** — the serialized index includes the
  landmark lower-bound tables, so a loaded index produces bit-identical
  bounds without re-running a Dijkstra per landmark;
* **lazy section loading** — :func:`load_index` with ``lazy=True``
  restores the top graph, landmarks, and provenance immediately and
  faults per-level label sections in on first access, which is what a
  serving warm start wants (:class:`~repro.store.reader.LazyLevelList`);
* a **generation-aware snapshotter** for
  :class:`~repro.core.maintenance.MaintainableIndex` — atomic
  tmp-file + ``os.replace`` writes, retention of the last K snapshots,
  and recovery that skips corrupt or truncated files
  (:mod:`repro.store.snapshot`).

:meth:`repro.core.index.BackboneIndex.save` and ``.load`` delegate
here; the verbose JSON dump remains readable as a legacy format.
"""

from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    SECTION_LANDMARKS,
    SECTION_PARAMS,
    SECTION_PROVENANCE,
    SECTION_TOP_GRAPH,
    level_section_tag,
)
from repro.store.reader import (
    IndexStore,
    LazyLevelList,
    inspect_store,
    is_store_file,
    load_index,
)
from repro.store.snapshot import Snapshotter
from repro.store.writer import save_index, serialize_index

__all__ = [
    "FORMAT_VERSION",
    "IndexStore",
    "LazyLevelList",
    "MAGIC",
    "SECTION_LANDMARKS",
    "SECTION_PARAMS",
    "SECTION_PROVENANCE",
    "SECTION_TOP_GRAPH",
    "Snapshotter",
    "inspect_store",
    "is_store_file",
    "level_section_tag",
    "load_index",
    "save_index",
    "serialize_index",
]
