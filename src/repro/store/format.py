"""On-disk layout constants for the binary index store.

A store file is::

    header   | <4s H H H H I>: magic, version, flags, dim,
             |                 level_count, section_count
    table    | section_count entries, each <12s H H Q Q Q I>:
             |   tag, flags, reserved, offset, stored_len, raw_len, crc32
    sections | concatenated payloads, one per table entry

Offsets are absolute file offsets.  ``stored_len`` is the on-disk byte
count (after optional zlib), ``raw_len`` the decompressed payload size,
and ``crc32`` covers the *stored* bytes so corruption is detected
before decompression.  All integers are little-endian.

The format carries a single version number; readers reject unknown
versions outright rather than guessing (a versioned header is cheap,
silent misparses are not).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

MAGIC = b"RBIX"
FORMAT_VERSION = 1

HEADER_STRUCT = struct.Struct("<4sHHHHI")
SECTION_STRUCT = struct.Struct("<12sHHQQQI")

# Section payload flags.
SECTION_FLAG_ZLIB = 0x1

# Well-known section tags (ASCII, at most 12 bytes).
SECTION_PARAMS = "params"
SECTION_TOP_GRAPH = "topgraph"
SECTION_LANDMARKS = "landmarks"
SECTION_PROVENANCE = "provenance"
# CSR snapshot of G_L (repro.accel); absent in files written before the
# flat engine existed — readers treat it as optional.
SECTION_CSR = "csr"
# The same snapshot as a raw array pack (repro.accel.blob), written
# uncompressed so multi-process readers can mmap the section and attach
# zero-copy (repro.mp).  Optional like ``csr``; decoded readers prefer
# ``csr`` (smaller), mapping readers require ``csrraw``.
SECTION_CSR_RAW = "csrraw"

# Sections that must stay byte-verbatim on disk (mmap attach targets);
# the writer never compresses them.
RAW_SECTIONS = frozenset({SECTION_CSR_RAW})

# Guard against a corrupt header driving a huge allocation loop.
MAX_SECTIONS = 100_000


def level_section_tag(level: int) -> str:
    """Tag of the label section for one index level."""
    return f"level:{level:04d}"


@dataclass(frozen=True)
class SectionInfo:
    """One section-table entry, as stored on disk."""

    tag: str
    flags: int
    offset: int
    stored_len: int
    raw_len: int
    crc32: int

    @property
    def compressed(self) -> bool:
        return bool(self.flags & SECTION_FLAG_ZLIB)

    def as_dict(self) -> dict:
        """A JSON-friendly view (used by ``repro index inspect``)."""
        return {
            "tag": self.tag,
            "offset": self.offset,
            "stored_bytes": self.stored_len,
            "raw_bytes": self.raw_len,
            "compressed": self.compressed,
            "crc32": f"{self.crc32:08x}",
        }


def pack_tag(tag: str) -> bytes:
    """Encode a section tag into its fixed-width field."""
    raw = tag.encode("ascii")
    if len(raw) > 12:
        raise ValueError(f"section tag too long: {tag!r}")
    return raw.ljust(12, b"\x00")


def unpack_tag(raw: bytes) -> str:
    """Decode a fixed-width tag field."""
    return raw.rstrip(b"\x00").decode("ascii", errors="replace")
