"""Command-line interface for the backbone-index library.

Five subcommands cover the full workflow a downstream user needs::

    repro generate --nodes 2000 --out net          # net.gr + net.co
    repro build net.gr --out net.index.json
    repro query net.gr net.index.json --source 3 --target 907 --exact
    repro stats net.gr --index net.index.json
    repro datasets

Run ``python -m repro <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path as FilePath

from repro.core.builder import build_backbone_index
from repro.core.index import BackboneIndex
from repro.core.params import AggressiveMode, BackboneParams, ClusteringStrategy
from repro.errors import ReproError
from repro.eval.reporting import fmt_bytes, fmt_seconds, format_table
from repro.graph.costs import CostDistribution
from repro.graph.generators import road_network
from repro.graph.io import (
    read_dimacs_co,
    read_dimacs_gr,
    write_dimacs_co,
    write_dimacs_gr,
)
from repro.graph.mcrn import MultiCostGraph
from repro.graph.stats import graph_stats
from repro.search.bbs import skyline_paths


def _load_graph(gr_path: str) -> MultiCostGraph:
    graph = read_dimacs_gr(gr_path)
    co_path = FilePath(gr_path).with_suffix(".co")
    if co_path.exists():
        read_dimacs_co(graph, co_path)
    return graph


def _params_from(args: argparse.Namespace) -> BackboneParams:
    return BackboneParams(
        m_max=args.m_max,
        m_min=args.m_min,
        p=args.p,
        p_ind=args.p_ind,
        aggressive=AggressiveMode(args.variant),
        clustering=ClusteringStrategy(args.clustering),
        landmark_count=args.landmarks,
    )


def _add_param_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m-max", type=int, default=200, dest="m_max",
                        help="maximum dense-cluster size (default 200)")
    parser.add_argument("--m-min", type=int, default=30, dest="m_min",
                        help="minimum cluster size before merging (default 30)")
    parser.add_argument("--p", type=float, default=0.01,
                        help="per-level edge-removal quota (default 0.01)")
    parser.add_argument("--p-ind", type=float, default=0.3, dest="p_ind",
                        help="condensing-threshold percentage (default 0.3)")
    parser.add_argument("--variant", choices=[m.value for m in AggressiveMode],
                        default="normal",
                        help="aggressive-summarization policy (default normal)")
    parser.add_argument("--clustering",
                        choices=[c.value for c in ClusteringStrategy],
                        default="dense",
                        help="local-unit discovery (default dense)")
    parser.add_argument("--landmarks", type=int, default=8,
                        help="landmark count over G_L (default 8)")


def cmd_generate(args: argparse.Namespace) -> int:
    graph = road_network(
        args.nodes,
        dim=args.dim,
        style=args.style,
        distribution=CostDistribution(args.distribution),
        seed=args.seed,
    )
    gr_path = f"{args.out}.gr"
    co_path = f"{args.out}.co"
    write_dimacs_gr(graph, gr_path, comment=f"synthetic {args.style} network")
    write_dimacs_co(graph, co_path, comment=f"synthetic {args.style} network")
    print(
        f"generated {graph.num_nodes} nodes / {graph.num_edges} edges "
        f"({args.dim} costs) -> {gr_path}, {co_path}"
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    started = time.perf_counter()
    index = build_backbone_index(graph, _params_from(args))
    elapsed = time.perf_counter() - started
    index.save(args.out)
    stats = index.stats()
    print(
        f"built backbone index in {fmt_seconds(elapsed)}: "
        f"L={stats['height']}, |G_L.V|={stats['top_graph_nodes']}, "
        f"{stats['label_paths']} label paths, "
        f"{fmt_bytes(stats['size_bytes'])} -> {args.out}"
    )
    if args.verify:
        from repro.core.verify import verify_index

        report = verify_index(index)
        if report.ok:
            print(
                f"verification ok: {report.labels_checked} labels, "
                f"{report.paths_checked} paths, "
                f"{report.shortcuts_checked} shortcuts"
            )
        else:
            print(f"verification FAILED: {len(report.problems)} problems",
                  file=sys.stderr)
            for line in report.problems[:10]:
                print(f"  {line}", file=sys.stderr)
            return 2
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    index = BackboneIndex.load(args.index, graph)
    started = time.perf_counter()
    result = index.query_detailed(args.source, args.target)
    elapsed = time.perf_counter() - started
    print(
        f"{len(result.paths)} approximate skyline paths "
        f"in {fmt_seconds(elapsed)}:"
    )
    for path in sorted(result.paths, key=lambda p: sum(p.cost))[: args.limit]:
        costs = ", ".join(f"{c:g}" for c in path.cost)
        print(f"  ({costs})  [{path.length} hops]")
    if args.exact:
        started = time.perf_counter()
        exact = skyline_paths(
            graph, args.source, args.target, time_budget=args.exact_budget
        )
        elapsed = time.perf_counter() - started
        suffix = " (timed out)" if exact.stats.timed_out else ""
        print(
            f"exact BBS: {len(exact.paths)} skyline paths "
            f"in {fmt_seconds(elapsed)}{suffix}"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    stats = graph_stats(graph, FilePath(args.graph).stem)
    rows = [stats.as_row()]
    print(
        format_table(
            ["name", "nodes", "edges", "avg deg", "max deg", "size"],
            rows,
            title="graph",
        )
    )
    if args.index:
        index = BackboneIndex.load(args.index, graph)
        info = index.stats()
        print(
            format_table(
                ["levels", "label paths", "G_L nodes", "G_L edges", "size"],
                [
                    [
                        info["height"],
                        info["label_paths"],
                        info["top_graph_nodes"],
                        info["top_graph_edges"],
                        fmt_bytes(info["size_bytes"]),
                    ]
                ],
                title="index",
            )
        )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets import dataset_info, list_datasets

    rows = []
    for name in list_datasets():
        spec = dataset_info(name)
        rows.append(
            [
                name,
                spec.description,
                f"{spec.scaled_nodes:,}",
                f"{spec.paper_nodes:,}",
                f"{spec.edge_ratio:.2f}",
            ]
        )
    print(
        format_table(
            ["name", "description", "stand-in nodes", "paper nodes", "|E|/|V|"],
            rows,
            title="catalog stand-ins for the paper's nine networks",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backbone index for skyline path queries (EDBT 2022)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic road network as DIMACS files"
    )
    generate.add_argument("--nodes", type=int, default=2000)
    generate.add_argument("--dim", type=int, default=3)
    generate.add_argument("--style", choices=["delaunay", "grid"],
                          default="delaunay")
    generate.add_argument(
        "--distribution",
        choices=[d.value for d in CostDistribution],
        default="uniform",
    )
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", required=True,
                          help="output path prefix (writes .gr and .co)")
    generate.set_defaults(handler=cmd_generate)

    build = commands.add_parser("build", help="build a backbone index")
    build.add_argument("graph", help="DIMACS .gr file")
    build.add_argument("--out", required=True, help="index output (JSON)")
    build.add_argument("--verify", action="store_true",
                       help="run structural self-validation after building")
    _add_param_options(build)
    build.set_defaults(handler=cmd_build)

    query = commands.add_parser("query", help="answer a skyline path query")
    query.add_argument("graph", help="DIMACS .gr file")
    query.add_argument("index", help="index file from 'repro build'")
    query.add_argument("--source", type=int, required=True)
    query.add_argument("--target", type=int, required=True)
    query.add_argument("--limit", type=int, default=10,
                       help="max paths to print (default 10)")
    query.add_argument("--exact", action="store_true",
                       help="also run the exact BBS baseline")
    query.add_argument("--exact-budget", type=float, default=900.0,
                       dest="exact_budget",
                       help="BBS time budget in seconds (default 900)")
    query.set_defaults(handler=cmd_query)

    stats = commands.add_parser("stats", help="print graph / index statistics")
    stats.add_argument("graph", help="DIMACS .gr file")
    stats.add_argument("--index", help="optional index file")
    stats.set_defaults(handler=cmd_stats)

    datasets = commands.add_parser(
        "datasets", help="list the catalog's synthetic stand-ins"
    )
    datasets.set_defaults(handler=cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
