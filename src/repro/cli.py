"""Command-line interface for the backbone-index library.

The subcommands cover the full workflow a downstream user needs::

    repro generate --nodes 2000 --out net          # net.gr + net.co
    repro build net.gr --out net.rbi
    repro query net.gr net.rbi --source 3 --target 907 --exact
    repro trace net.gr --source 3 --target 907 --out trace.json
    repro serve-batch net.gr --store net.rbi --queries q.txt
    repro status /tmp/status.json                  # or http://host:port
    repro warm net.gr --out net.rbi
    repro index inspect net.rbi                    # also: save/load/snapshot
    repro stats net.gr --index net.rbi
    repro datasets
    repro bench net.gr --engine both               # flat vs python A/B
    repro qa fuzz --seeds 20                       # also: replay/shrink

Run ``python -m repro <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path as FilePath

from repro.core.builder import build_backbone_index
from repro.core.index import BackboneIndex
from repro.core.params import AggressiveMode, BackboneParams, ClusteringStrategy
from repro.errors import ReproError
from repro.eval.reporting import fmt_bytes, fmt_seconds, format_table
from repro.graph.costs import CostDistribution
from repro.graph.generators import road_network
from repro.graph.io import (
    read_dimacs_co,
    read_dimacs_gr,
    write_dimacs_co,
    write_dimacs_gr,
)
from repro.graph.mcrn import MultiCostGraph
from repro.graph.stats import graph_stats
from repro.search.bbs import skyline_paths


def _load_graph(gr_path: str) -> MultiCostGraph:
    graph = read_dimacs_gr(gr_path)
    co_path = FilePath(gr_path).with_suffix(".co")
    if co_path.exists():
        read_dimacs_co(graph, co_path)
    return graph


def _params_from(args: argparse.Namespace) -> BackboneParams:
    return BackboneParams(
        m_max=args.m_max,
        m_min=args.m_min,
        p=args.p,
        p_ind=args.p_ind,
        aggressive=AggressiveMode(args.variant),
        clustering=ClusteringStrategy(args.clustering),
        landmark_count=args.landmarks,
    )


def _add_param_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m-max", type=int, default=200, dest="m_max",
                        help="maximum dense-cluster size (default 200)")
    parser.add_argument("--m-min", type=int, default=30, dest="m_min",
                        help="minimum cluster size before merging (default 30)")
    parser.add_argument("--p", type=float, default=0.01,
                        help="per-level edge-removal quota (default 0.01)")
    parser.add_argument("--p-ind", type=float, default=0.3, dest="p_ind",
                        help="condensing-threshold percentage (default 0.3)")
    parser.add_argument("--variant", choices=[m.value for m in AggressiveMode],
                        default="normal",
                        help="aggressive-summarization policy (default normal)")
    parser.add_argument("--clustering",
                        choices=[c.value for c in ClusteringStrategy],
                        default="dense",
                        help="local-unit discovery (default dense)")
    parser.add_argument("--landmarks", type=int, default=8,
                        help="landmark count over G_L (default 8)")


def cmd_generate(args: argparse.Namespace) -> int:
    graph = road_network(
        args.nodes,
        dim=args.dim,
        style=args.style,
        distribution=CostDistribution(args.distribution),
        seed=args.seed,
    )
    gr_path = f"{args.out}.gr"
    co_path = f"{args.out}.co"
    write_dimacs_gr(graph, gr_path, comment=f"synthetic {args.style} network")
    write_dimacs_co(graph, co_path, comment=f"synthetic {args.style} network")
    print(
        f"generated {graph.num_nodes} nodes / {graph.num_edges} edges "
        f"({args.dim} costs) -> {gr_path}, {co_path}"
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    started = time.perf_counter()
    index = build_backbone_index(
        graph,
        _params_from(args),
        engine=args.build_engine,
        build_workers=args.build_workers,
    )
    elapsed = time.perf_counter() - started
    index.save(args.out, format=args.format)
    stats = index.stats()
    print(
        f"built backbone index in {fmt_seconds(elapsed)}: "
        f"L={stats['height']}, |G_L.V|={stats['top_graph_nodes']}, "
        f"{stats['label_paths']} label paths, "
        f"{fmt_bytes(stats['size_bytes'])} -> {args.out}"
    )
    if args.verify:
        from repro.core.verify import verify_index

        report = verify_index(index)
        if report.ok:
            print(
                f"verification ok: {report.labels_checked} labels, "
                f"{report.paths_checked} paths, "
                f"{report.shortcuts_checked} shortcuts"
            )
        else:
            print(f"verification FAILED: {len(report.problems)} problems",
                  file=sys.stderr)
            for line in report.problems[:10]:
                print(f"  {line}", file=sys.stderr)
            return 2
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    index = BackboneIndex.load(args.index, graph)
    started = time.perf_counter()
    result = index.query_detailed(args.source, args.target)
    elapsed = time.perf_counter() - started
    print(
        f"{len(result.paths)} approximate skyline paths "
        f"in {fmt_seconds(elapsed)}:"
    )
    for path in sorted(result.paths, key=lambda p: sum(p.cost))[: args.limit]:
        costs = ", ".join(f"{c:g}" for c in path.cost)
        print(f"  ({costs})  [{path.length} hops]")
    if args.exact:
        started = time.perf_counter()
        exact = skyline_paths(
            graph, args.source, args.target, time_budget=args.exact_budget
        )
        elapsed = time.perf_counter() - started
        suffix = " (timed out)" if exact.stats.timed_out else ""
        print(
            f"exact BBS: {len(exact.paths)} skyline paths "
            f"in {fmt_seconds(elapsed)}{suffix}"
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.query import backbone_query
    from repro.obs import (
        Tracer,
        flat_spans,
        summarize_roots,
        use_tracer,
        write_chrome_trace,
    )

    graph = _load_graph(args.graph)
    tracer = Tracer()
    with use_tracer(tracer):
        if args.index:
            index = BackboneIndex.load(args.index, graph)
        else:
            index = build_backbone_index(graph, _params_from(args))
        result = backbone_query(
            index, args.source, args.target, time_budget=args.budget
        )
    out = FilePath(args.out)
    if args.format == "flat":
        out.write_text(json.dumps(flat_spans(tracer), indent=1))
    else:
        write_chrome_trace(tracer, out)
    suffix = (
        f" (truncated in {result.stats.truncated_phase})"
        if result.truncated
        else ""
    )
    print(
        f"{len(result.paths)} approximate skyline paths{suffix}; "
        f"trace -> {out}",
        file=sys.stderr,
    )
    for phase in ("grow_s", "grow_t", "connect_top"):
        seconds = result.stats.phase_seconds.get(phase)
        if seconds is not None:
            print(f"  {phase:12s} {fmt_seconds(seconds)}", file=sys.stderr)
    if args.summary:
        rollup = summarize_roots(tracer)
        for name in sorted(rollup):
            doc = rollup[name]
            print(
                f"  {name}: x{doc['count']} "
                f"{fmt_seconds(doc['total_seconds'])}",
                file=sys.stderr,
            )
    return 0


def _read_query_lines(source) -> list[tuple[int, int]]:
    """Parse ``source target`` pairs, one per line.

    Accepts whitespace- or comma-separated integers; blank lines and
    ``#`` comments are skipped.
    """
    from repro.errors import QueryError

    pairs: list[tuple[int, int]] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.replace(",", " ").split()
        if len(fields) != 2:
            raise QueryError(
                f"query line {lineno}: expected 'source target', got {raw!r}"
            )
        try:
            pairs.append((int(fields[0]), int(fields[1])))
        except ValueError as error:
            raise QueryError(f"query line {lineno}: {error}") from None
    return pairs


def _print_response_lines(responses) -> None:
    """One JSON line per served query (None = task failed upstream)."""
    for response in responses:
        if response is None:
            continue
        doc = {
            "source": response.source,
            "target": response.target,
            "mode": response.mode,
            "paths": len(response.paths),
            "costs": [list(p.cost) for p in response.paths],
            "truncated": response.truncated,
            "cache_hit": response.cache_hit,
            "latency_ms": round(response.elapsed_seconds * 1e3, 3),
            "generation": response.generation,
        }
        if response.worker_pid is not None:
            doc["worker_pid"] = response.worker_pid
        if response.trace_id is not None:
            doc["trace_id"] = response.trace_id
        if response.escalated:
            doc["escalated"] = True
        if response.quality is not None:
            doc["quality"] = response.quality.as_dict()
        print(json.dumps(doc))


def _response_origin(response) -> str:
    """Provenance suffix for verify reports (who computed the answer)."""
    if response is None or response.worker_pid is None:
        return ""
    origin = (
        f" [worker_pid={response.worker_pid} "
        f"generation={response.generation}"
    )
    if response.trace_id is not None:
        origin += f" trace_id={response.trace_id}"
    return origin + "]"


def _obs_from_args(args: argparse.Namespace, registry, events):
    """The optional LiveStatus (+ HTTP server) the serve flags ask for."""
    if args.status_file is None and args.status_port is None:
        return None, None
    from repro.obs import LiveStatus

    live = LiveStatus(
        interval_seconds=args.status_interval,
        status_file=args.status_file,
        registry=registry,
        events=events,
    ).start()
    http_server = None
    if args.status_port is not None:
        http_server = live.serve_http(args.status_port)
        print(
            f"status endpoints at {http_server.url} "
            f"(/health /status /metrics /events)",
            file=sys.stderr,
        )
    return live, http_server


def _obs_teardown(live, http_server, events) -> None:
    """Final status write, HTTP shutdown, event-sink close."""
    if http_server is not None:
        http_server.close()
    if live is not None:
        live.stop()  # flushes one last status document
        if live.status_file is not None:
            print(f"status file at {live.status_file}", file=sys.stderr)
    if events is not None:
        events.close()


def _serve_batch_mp(args: argparse.Namespace, graph, index, pairs,
                    tracer, events) -> int:
    """serve-batch with ``--engine mp``: a forked worker cohort."""
    from repro.mp import MPBatchServer, MPQueryError

    if args.kernel == "python":
        print(
            "error: --engine mp serves from the shared CSR snapshot; "
            "--kernel python is thread-only",
            file=sys.stderr,
        )
        return 1
    server = MPBatchServer(
        graph,
        index=index,
        params=_params_from(args),
        workers=args.workers,
        cache_size=args.cache_size,
        default_time_budget=args.budget,
        corridor_radius=args.corridor_radius,
        quality_target=args.quality_target,
        search_engine="batch" if args.kernel == "batch" else "flat",
        tracer=tracer,
        events=events,
    )
    live, http_server = _obs_from_args(args, server.metrics, events)
    if live is not None:
        server.attach_live(live)
        server.engine.attach_live(live)

    def run() -> int:
        if args.store:
            timings = server.engine.warm_from_store(args.store)
            print(
                f"warm-started from {timings['source']} in "
                f"{fmt_seconds(timings['store_load_seconds'])}",
                file=sys.stderr,
            )
        server.start()
        try:
            outcome = server.submit(
                pairs,
                mode=args.mode,
                time_budget=args.budget,
                fail_fast=args.fail_fast,
            )
        except MPQueryError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
        _print_response_lines(outcome.responses)
        for error in outcome.errors:
            print(f"error: {error}", file=sys.stderr)
        print(
            f"served {len(outcome.responses)} queries "
            f"({outcome.unique_queries} unique, {outcome.tasks} tasks, "
            f"{outcome.workers} workers, generation "
            f"{outcome.generation}) in "
            f"{fmt_seconds(outcome.elapsed_seconds)} — "
            f"{outcome.queries_per_second:.1f} q/s",
            file=sys.stderr,
        )
        if args.verify:
            from repro.qa.invariants import identical_answer_errors
            from repro.service.batch import execute_batch as _execute

            baseline = _execute(
                server.engine, pairs, max_workers=1, mode=args.mode,
                time_budget=args.budget, use_cache=False,
            )
            mismatches = 0
            for pair, single, multi in zip(
                pairs, baseline.responses, outcome.responses
            ):
                if multi is None:
                    mismatches += 1
                    continue
                for detail in identical_answer_errors(
                    "single-process", single.paths, "mp", multi.paths
                ):
                    mismatches += 1
                    print(
                        f"verify {pair}: {detail}"
                        f"{_response_origin(multi)}",
                        file=sys.stderr,
                    )
            if mismatches:
                print(
                    f"verification FAILED: {mismatches} queries disagree "
                    f"with single-process serving",
                    file=sys.stderr,
                )
                return 4
            print(
                f"verification ok: {len(pairs)} answers bit-identical to "
                f"single-process serving",
                file=sys.stderr,
            )
        if args.metrics:
            server.flush_metrics()
            print(server.metrics.to_text(), file=sys.stderr)
        return 3 if outcome.errors else 0

    try:
        code = run()
    finally:
        # Stop before exporting the trace: retirement drains the final
        # worker replies, whose span dumps complete the merged picture.
        server.stop()
    if tracer is not None and args.trace:
        from repro.obs import write_merged_trace

        dumps = server.trace_dumps()
        path = write_merged_trace(dumps, args.trace)
        print(
            f"merged trace written to {path} "
            f"({len(dumps)} processes)",
            file=sys.stderr,
        )
    _obs_teardown(live, http_server, events)
    return code


def cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.core.index import BackboneIndex as _Index
    from repro.service import SkylineQueryEngine, execute_batch

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    events = None
    if args.events:
        from repro.obs import EventLog

        events = EventLog(sink=args.events)
    graph = _load_graph(args.graph)
    index = None
    if args.index:
        index = _Index.load(args.index, graph)
    if args.queries == "-":
        pairs = _read_query_lines(sys.stdin)
    else:
        with open(args.queries) as handle:
            pairs = _read_query_lines(handle)
    if not pairs:
        print("error: no queries to serve", file=sys.stderr)
        return 1
    if args.serve_engine == "mp":
        return _serve_batch_mp(args, graph, index, pairs, tracer, events)
    engine = SkylineQueryEngine(
        graph,
        index=index,
        params=_params_from(args),
        cache_size=args.cache_size,
        default_time_budget=args.budget,
        corridor_radius=args.corridor_radius,
        quality_target=args.quality_target,
        engine=args.kernel,
        tracer=tracer,
        events=events,
    )
    live, http_server = _obs_from_args(args, engine.metrics, events)
    if live is not None:
        engine.attach_live(live)
    if args.store:
        timings = engine.warm_from_store(args.store)
        generation = timings.get("snapshot_generation")
        suffix = f" (snapshot g{generation})" if generation is not None else ""
        print(
            f"warm-started from {timings['source']}{suffix} in "
            f"{fmt_seconds(timings['store_load_seconds'])}",
            file=sys.stderr,
        )
    if args.warm:
        timings = engine.warm()
        print(
            f"warmed engine in "
            f"{fmt_seconds(sum(timings.values()))}",
            file=sys.stderr,
        )

    outcome = execute_batch(
        engine,
        pairs,
        max_workers=args.workers,
        mode=args.mode,
        time_budget=args.budget,
        tracer=tracer,
    )
    _print_response_lines(outcome.responses)
    cache = engine.cache.snapshot()
    print(
        f"served {len(outcome.responses)} queries "
        f"({outcome.unique_queries} unique, "
        f"{outcome.source_groups} source groups) in "
        f"{fmt_seconds(outcome.elapsed_seconds)} — "
        f"{outcome.queries_per_second:.1f} q/s, "
        f"cache hit rate {cache['hit_rate']:.0%}",
        file=sys.stderr,
    )
    if tracer is not None:
        from repro.obs import write_chrome_trace

        path = write_chrome_trace(tracer, args.trace)
        print(f"trace written to {path}", file=sys.stderr)
    if args.metrics:
        print(engine.metrics.to_text(), file=sys.stderr)
    _obs_teardown(live, http_server, events)
    return 0


def _load_status_doc(source: str, timeout: float) -> dict:
    """A live-status document from a file path or a status-server URL."""
    if source.startswith(("http://", "https://")):
        import urllib.request

        url = source.rstrip("/")
        if not url.endswith("/status"):
            url += "/status"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.load(response)
    return json.loads(FilePath(source).read_text(encoding="utf-8"))


def cmd_status(args: argparse.Namespace) -> int:
    """Pretty-print a live-status document (file or running server)."""
    try:
        doc = _load_status_doc(args.source, args.http_timeout)
    except OSError as error:
        print(f"error: {args.source}: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(f"error: {args.source}: not JSON ({error})", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if doc.get("format") != "repro-live-status":
        print(
            f"error: {args.source}: not a repro live-status document",
            file=sys.stderr,
        )
        return 1
    age = time.time() - doc.get("written_at_unix", 0.0)
    print(
        f"pid {doc.get('pid')}  "
        f"uptime {fmt_seconds(doc.get('uptime_seconds', 0.0))}  "
        f"written {age:.1f}s ago  "
        f"writes {doc.get('status_writes', 0)} "
        f"(+{doc.get('status_write_failures', 0)} failed)"
    )
    windows = doc.get("windows", {})
    if windows:
        rows = [
            [
                name,
                window.get("count", 0),
                f"{window.get('mean', 0.0):.6g}",
                f"{window.get('p50', 0.0):.6g}",
                f"{window.get('p95', 0.0):.6g}",
                f"{window.get('p99', 0.0):.6g}",
            ]
            for name, window in sorted(windows.items())
        ]
        seconds = next(iter(windows.values())).get("window_seconds", 0)
        print(
            format_table(
                ["series", "n", "mean", "p50", "p95", "p99"],
                rows,
                title=f"rolling windows (last {seconds:g}s)",
            )
        )
    sources = doc.get("sources", {})
    mp = sources.get("mp")
    if mp is not None:
        print(
            f"mp: generation {mp.get('generation')} "
            f"(lag {mp.get('generation_lag', 0)}), "
            f"inflight {mp.get('inflight', 0)}/{mp.get('max_inflight', 0)}, "
            f"workers {mp.get('live_workers', 0)}/{mp.get('workers', 0)} "
            f"live, {mp.get('admission_stalls', 0)} admission stalls"
        )
        processes = mp.get("worker_processes", [])
        if processes:
            rows = [
                [
                    worker.get("worker"),
                    worker.get("pid"),
                    "up" if worker.get("alive") else "DOWN",
                    worker.get("generation"),
                ]
                for worker in processes
            ]
            print(
                format_table(
                    ["worker", "pid", "state", "generation"],
                    rows,
                    title="worker processes",
                )
            )
    engine_doc = sources.get("engine")
    if engine_doc is not None:
        cache = engine_doc.get("cache", {})
        print(
            f"engine: generation {engine_doc.get('generation')}, "
            f"{engine_doc.get('queries_total', 0)} queries served, "
            f"cache hit rate {cache.get('hit_rate', 0.0):.0%} "
            f"({cache.get('size', 0)}/{cache.get('capacity', 0)} entries)"
        )
    for name, body in sorted(sources.items()):
        if name in ("mp", "engine"):
            continue
        print(f"{name}: {json.dumps(body, sort_keys=True)}")
    events = doc.get("events")
    if events is not None:
        print(
            f"events: {events.get('total_emitted', 0)} emitted, "
            f"last {len(events.get('events', []))}:"
        )
        for event in events.get("events", []):
            attrs = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.get("attrs", {}).items())
            )
            print(f"  #{event.get('seq'):<5} {event.get('kind'):<28} {attrs}")
    return 0


def cmd_warm(args: argparse.Namespace) -> int:
    from repro.service import SkylineQueryEngine

    graph = _load_graph(args.graph)
    engine = SkylineQueryEngine(graph, params=_params_from(args))
    timings = engine.warm()
    index = engine.index
    assert index is not None
    index.save(args.out)
    stats = index.stats()
    print(
        f"warmed: index built in {fmt_seconds(timings['index_seconds'])} "
        f"(L={stats['height']}, {stats['label_paths']} label paths, "
        f"{fmt_bytes(stats['size_bytes'])}), landmarks primed in "
        f"{fmt_seconds(timings['landmark_seconds'])} -> {args.out}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    stats = graph_stats(graph, FilePath(args.graph).stem)
    rows = [stats.as_row()]
    print(
        format_table(
            ["name", "nodes", "edges", "avg deg", "max deg", "size"],
            rows,
            title="graph",
        )
    )
    if args.index:
        index = BackboneIndex.load(args.index, graph)
        info = index.stats()
        print(
            format_table(
                ["levels", "label paths", "G_L nodes", "G_L edges", "size"],
                [
                    [
                        info["height"],
                        info["label_paths"],
                        info["top_graph_nodes"],
                        info["top_graph_edges"],
                        fmt_bytes(info["size_bytes"]),
                    ]
                ],
                title="index",
            )
        )
    return 0


def cmd_index_save(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    started = time.perf_counter()
    index = BackboneIndex.load(args.index, graph)
    load_seconds = time.perf_counter() - started
    started = time.perf_counter()
    index.save(args.out, format=args.format, compress=not args.no_compress)
    save_seconds = time.perf_counter() - started
    size = FilePath(args.out).stat().st_size
    print(
        f"loaded {args.index} in {fmt_seconds(load_seconds)}, "
        f"saved {args.format} ({fmt_bytes(size)}) in "
        f"{fmt_seconds(save_seconds)} -> {args.out}"
    )
    return 0


def cmd_index_load(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    started = time.perf_counter()
    index = BackboneIndex.load(args.index, graph, lazy=args.lazy)
    elapsed = time.perf_counter() - started
    stats = index.stats()
    lazy_note = " (lazy: label levels deferred)" if args.lazy else ""
    print(
        f"loaded index in {fmt_seconds(elapsed)}{lazy_note}: "
        f"L={stats['height']}, |G_L.V|={stats['top_graph_nodes']}, "
        f"{len(index.landmarks.landmarks)} landmarks restored"
    )
    return 0


def cmd_index_inspect(args: argparse.Namespace) -> int:
    from repro.store import inspect_store, is_store_file

    if is_store_file(args.index):
        print(json.dumps(inspect_store(args.index), indent=2))
        return 0
    with open(args.index) as handle:
        document = json.load(handle)
    if document.get("format") != "repro-backbone-index":
        print(f"error: {args.index}: not a backbone index file",
              file=sys.stderr)
        return 1
    print(
        json.dumps(
            {
                "path": args.index,
                "format": document.get("format"),
                "version": document.get("version"),
                "dim": document.get("dim"),
                "levels": len(document.get("levels", [])),
                "file_bytes": FilePath(args.index).stat().st_size,
                "params": document.get("params"),
                "landmarks_persisted": "landmarks" in document,
            },
            indent=2,
        )
    )
    return 0


def cmd_index_snapshot(args: argparse.Namespace) -> int:
    from repro.store import Snapshotter

    graph = _load_graph(args.graph)
    snapshotter = Snapshotter(args.dir, retain=args.retain)
    if args.index:
        index = BackboneIndex.load(args.index, graph)
    else:
        index = build_backbone_index(graph, _params_from(args))
    generation = args.generation
    if generation is None:
        existing = snapshotter.snapshots()
        generation = existing[0][0] + 1 if existing else 0
    path = snapshotter.snapshot(index, generation)
    kept = snapshotter.snapshots()
    print(
        f"snapshot g{generation} ({fmt_bytes(path.stat().st_size)}) -> "
        f"{path}; {len(kept)} snapshot(s) retained "
        f"(newest g{kept[0][0]}, retain {args.retain})"
    )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    from repro.datasets import dataset_info, list_datasets

    rows = []
    for name in list_datasets():
        spec = dataset_info(name)
        rows.append(
            [
                name,
                spec.description,
                f"{spec.scaled_nodes:,}",
                f"{spec.paper_nodes:,}",
                f"{spec.edge_ratio:.2f}",
            ]
        )
    print(
        format_table(
            ["name", "description", "stand-in nodes", "paper nodes", "|E|/|V|"],
            rows,
            title="catalog stand-ins for the paper's nine networks",
        )
    )
    return 0


def _qa_config(args: argparse.Namespace):
    from repro.qa import QAConfig

    return QAConfig(
        rac_bound=args.rac_bound,
        check_store=not args.no_store,
        check_engine=not args.no_engine,
        check_updates=not args.no_updates,
        check_metamorphic=not args.no_metamorphic,
        check_batch=not getattr(args, "no_batch", False),
        check_corridor=getattr(args, "corridor", False),
    )


def _print_case_report(report, *, verbose: bool) -> None:
    status = "ok" if report.ok else f"{len(report.discrepancies)} DISCREPANCIES"
    print(
        f"seed {report.spec.seed:>4}  {report.spec.style:<8} "
        f"d={report.spec.dim}  queries={report.queries_checked} "
        f"variants={report.variants_checked} "
        f"updates={report.updates_applied}  {status}"
    )
    if verbose or not report.ok:
        for discrepancy in report.discrepancies:
            print(f"  {discrepancy}")


def cmd_bench(args: argparse.Namespace) -> int:
    """A/B the search engines on one graph with a random workload."""
    import statistics

    from repro.eval import random_queries

    graph = _load_graph(args.graph)
    queries = random_queries(
        graph, args.queries, seed=args.seed, min_hops=args.min_hops
    )
    if args.engine == "both":
        engines = ["python", "flat"]
    elif args.engine == "all":
        engines = ["python", "flat", "batch"]
    else:
        engines = [args.engine]

    snapshot = None
    if {"flat", "batch"} & set(engines):
        from repro.accel.csr import CSRSnapshot

        started = time.perf_counter()
        snapshot = CSRSnapshot.from_graph(graph)
        print(f"CSR snapshot built in {fmt_seconds(time.perf_counter() - started)}")

    timings: dict[str, list[float]] = {}
    answers: dict[str, list] = {}
    for _ in range(args.rounds):
        for engine in engines:
            per_engine = timings.setdefault(engine, [])
            collected = []
            for query in queries:
                started = time.perf_counter()
                result = skyline_paths(
                    graph,
                    query.source,
                    query.target,
                    engine=engine,
                    snapshot=snapshot if engine != "python" else None,
                    time_budget=args.budget,
                )
                per_engine.append(time.perf_counter() - started)
                collected.append([(p.nodes, p.cost) for p in result.paths])
            answers[engine] = collected

    # python vs flat is the bit-identity tier: answers must match in
    # order and multiplicity.  batch is the answer-set tier: the same
    # path sets, possibly in a different order.
    if "python" in answers and "flat" in answers:
        if answers["python"] != answers["flat"]:
            print("error: engines returned different answers", file=sys.stderr)
            return 2
    if "batch" in answers and len(engines) > 1:
        reference = "flat" if "flat" in answers else "python"
        for ref_paths, batch_paths in zip(answers[reference], answers["batch"]):
            if sorted(ref_paths) != sorted(batch_paths):
                print(
                    "error: batch engine answer set differs from "
                    f"{reference}", file=sys.stderr,
                )
                return 2

    baseline = statistics.mean(timings[engines[0]])
    rows = []
    for engine in engines:
        mean = statistics.mean(timings[engine])
        rows.append(
            [
                engine,
                fmt_seconds(mean),
                fmt_seconds(max(timings[engine])),
                f"{baseline / mean:.2f}x",
            ]
        )
    print(
        format_table(
            ["engine", "mean query", "max query", "speed-up"],
            rows,
            title=(
                f"{len(queries)} queries x {args.rounds} rounds on "
                f"{graph.num_nodes}-node graph"
            ),
        )
    )
    if len(engines) > 1:
        if "batch" in engines:
            print(
                "answers: bit-identical (python/flat), "
                "answer-set-equal (batch)"
            )
        else:
            print("answers: bit-identical across engines")

    if args.mp_workers:
        from repro.mp.benchmark import measure_mp, measure_single_process

        try:
            cohort_sizes = [
                int(field) for field in args.mp_workers.split(",") if field
            ]
        except ValueError:
            print(f"error: --mp-workers expects integers, got "
                  f"{args.mp_workers!r}", file=sys.stderr)
            return 1
        pairs = [(q.source, q.target) for q in queries]
        while len(pairs) < args.mp_batch:
            pairs.extend(pairs)
        pairs = pairs[: args.mp_batch]
        baseline = measure_single_process(
            graph, pairs, rounds=args.rounds, time_budget=args.budget
        )
        rows = [[
            "single", 1, f"{baseline['qps']:.1f}",
            fmt_seconds(baseline["best_seconds"]), "1.00x",
        ]]
        mismatched = False
        for size in cohort_sizes:
            doc = measure_mp(
                graph, pairs, workers=size, rounds=args.rounds,
                time_budget=args.budget,
            )
            if doc["signature"] != baseline["signature"]:
                mismatched = True
            rows.append([
                "mp", size, f"{doc['qps']:.1f}",
                fmt_seconds(doc["best_seconds"]),
                f"{doc['qps'] / baseline['qps']:.2f}x"
                if baseline["qps"] else "n/a",
            ])
        print(
            format_table(
                ["variant", "workers", "q/s", "best batch", "vs single"],
                rows,
                title=(
                    f"mp batch throughput: {len(pairs)} queries x "
                    f"{args.rounds} rounds ({os.cpu_count()} cpu)"
                ),
            )
        )
        if mismatched:
            print("error: mp answers differ from single-process",
                  file=sys.stderr)
            return 2
        print("answers: answer-set-identical across worker counts")
    return 0


def _numeric_leaves(doc, prefix: str = ""):
    """Flatten a telemetry document into (dotted-metric, value) pairs.

    Numbers and booleans are leaves; dicts recurse; a list of dicts
    keys each element by its ``name`` field when present (the shape of
    pytest-benchmark timing rows), by position otherwise.  Strings and
    metadata fields stay out of the metric table.
    """
    skip = {"module", "workload_seed", "exit_status"}
    if isinstance(doc, dict):
        for key in sorted(doc):
            if not prefix and key in skip:
                continue
            dotted = f"{prefix}.{key}" if prefix else key
            yield from _numeric_leaves(doc[key], dotted)
    elif isinstance(doc, list):
        for position, item in enumerate(doc):
            label = (
                item.get("name", str(position))
                if isinstance(item, dict)
                else str(position)
            )
            yield from _numeric_leaves(item, f"{prefix}.{label}")
    elif isinstance(doc, bool):
        yield prefix, int(doc)
    elif isinstance(doc, (int, float)):
        yield prefix, doc


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Merge committed BENCH_*.json dumps into one trajectory table."""
    import datetime

    root = FilePath(args.dir)
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json files under {root}", file=sys.stderr)
        return 1
    rows = []
    for path in files:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: {path.name}: {error}", file=sys.stderr)
            continue
        module = doc.get("module", path.stem.removeprefix("BENCH_"))
        run_date = datetime.datetime.fromtimestamp(
            path.stat().st_mtime
        ).strftime("%Y-%m-%d %H:%M")
        for metric, value in _numeric_leaves(doc):
            if not args.spans and metric.startswith("span_aggregates"):
                continue
            if args.filter and args.filter not in f"{module}.{metric}":
                continue
            rows.append([module, metric, value, run_date])
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "module": module,
                        "metric": metric,
                        "value": value,
                        "run_date": run_date,
                    }
                    for module, metric, value, run_date in rows
                ],
                indent=2,
            )
        )
        return 0
    if not rows:
        print("no metrics matched", file=sys.stderr)
        return 1
    rendered = [
        [
            module,
            metric,
            f"{value:.6g}" if isinstance(value, float) else str(value),
            run_date,
        ]
        for module, metric, value, run_date in rows
    ]
    print(
        format_table(
            ["module", "metric", "value", "run date"],
            rendered,
            title=f"benchmark trajectory ({len(files)} telemetry dumps)",
        )
    )
    return 0


def cmd_qa_mpload(args: argparse.Namespace) -> int:
    from repro.qa import MPLoadConfig, fuzz_mp

    started = time.perf_counter()
    report = fuzz_mp(
        range(args.start, args.start + args.seeds),
        MPLoadConfig(workers=args.workers),
        n_nodes=args.nodes,
        n_queries=args.queries,
        n_updates=args.updates,
        on_case=lambda case: _print_case_report(case, verbose=args.verbose),
    )
    elapsed = time.perf_counter() - started
    total = len(report.discrepancies)
    print(
        f"{len(report.cases)} cases, "
        f"{sum(c.queries_checked for c in report.cases)} responses checked, "
        f"{total} discrepancies in {fmt_seconds(elapsed)}"
    )
    return 1 if total else 0


def cmd_qa_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import fuzz

    started = time.perf_counter()
    report = fuzz(
        range(args.start, args.start + args.seeds),
        _qa_config(args),
        n_nodes=args.nodes,
        n_queries=args.queries,
        n_updates=args.updates,
        on_case=lambda case: _print_case_report(case, verbose=args.verbose),
    )
    elapsed = time.perf_counter() - started
    total = len(report.discrepancies)
    print(
        f"{len(report.cases)} cases, "
        f"{sum(c.queries_checked for c in report.cases)} queries, "
        f"{total} discrepancies in {fmt_seconds(elapsed)}"
    )
    return 1 if total else 0


def cmd_qa_quality(args: argparse.Namespace) -> int:
    from repro.qa import run_quality_tripwire

    started = time.perf_counter()
    report = run_quality_tripwire(
        range(args.start, args.start + args.seeds),
        radius=args.radius,
        n_nodes=args.nodes,
        n_queries=args.queries,
        on_case=lambda case: _print_case_report(case, verbose=args.verbose),
    )
    elapsed = time.perf_counter() - started
    total = len(report.discrepancies)
    print(
        f"{len(report.cases)} cases, "
        f"{sum(c.queries_checked for c in report.cases)} queries, "
        f"{total} discrepancies in {fmt_seconds(elapsed)}"
    )
    return 1 if total else 0


def cmd_qa_replay(args: argparse.Namespace) -> int:
    from repro.qa import CaseSpec, run_case

    spec = CaseSpec.from_seed(
        args.seed,
        n_nodes=args.nodes,
        n_queries=args.queries,
        n_updates=args.updates,
    )
    report = run_case(spec, _qa_config(args))
    _print_case_report(report, verbose=True)
    return 1 if report.discrepancies else 0


def cmd_qa_shrink(args: argparse.Namespace) -> int:
    from repro.qa import CaseSpec, emit_fixture, shrink_case
    from repro.qa.workload import build_case

    spec = CaseSpec.from_seed(
        args.seed,
        n_nodes=args.nodes,
        n_queries=args.queries,
        n_updates=args.updates,
    )
    case = build_case(spec)
    queries = (
        [(args.source, args.target)]
        if args.source is not None and args.target is not None
        else case.queries
    )
    for source, target in queries:
        shrunk = shrink_case(case.graph, source, target)
        if shrunk is None:
            print(f"({source}, {target}): no static discrepancy to shrink")
            continue
        print(
            f"({source}, {target}): reduced to {len(shrunk.edges)} edges / "
            f"{len(shrunk.nodes)} nodes in {shrunk.trials} trials"
        )
        print(f"  reproduces: {shrunk.problems[0]}")
        fixture = emit_fixture(shrunk, seed=args.seed)
        if args.out:
            FilePath(args.out).write_text(fixture)
            print(f"  fixture written to {args.out}")
        else:
            print(fixture)
        return 0
    print("nothing shrinkable: no query reproduces statically")
    return 1


def _add_qa_case_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=70,
                        help="nodes per random network (default 70)")
    parser.add_argument("--queries", type=int, default=5,
                        help="queries per case (default 5)")
    parser.add_argument("--updates", type=int, default=3,
                        help="structural updates per case (default 3)")
    parser.add_argument("--rac-bound", type=float, default=16.0,
                        dest="rac_bound",
                        help="per-query RAC quality tripwire (default 16)")
    parser.add_argument("--no-store", action="store_true",
                        help="skip the binary-store round-trip variants")
    parser.add_argument("--no-engine", action="store_true",
                        help="skip the cached service-engine variants")
    parser.add_argument("--no-updates", action="store_true",
                        help="skip the maintenance-update variants")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip swap/permutation/scaling relations")
    parser.add_argument("--no-batch", action="store_true",
                        help="skip the batch-kernel answer-set variant")
    parser.add_argument("--corridor", action="store_true",
                        help="also run the corridor-tier engine variant")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backbone index for skyline path queries (EDBT 2022)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic road network as DIMACS files"
    )
    generate.add_argument("--nodes", type=int, default=2000)
    generate.add_argument("--dim", type=int, default=3)
    generate.add_argument("--style", choices=["delaunay", "grid"],
                          default="delaunay")
    generate.add_argument(
        "--distribution",
        choices=[d.value for d in CostDistribution],
        default="uniform",
    )
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", required=True,
                          help="output path prefix (writes .gr and .co)")
    generate.set_defaults(handler=cmd_generate)

    build = commands.add_parser("build", help="build a backbone index")
    build.add_argument("graph", help="DIMACS .gr file")
    build.add_argument("--out", required=True, help="index output file")
    build.add_argument("--format", choices=["binary", "json"],
                       default="binary",
                       help="binary store (default) or legacy JSON")
    build.add_argument("--verify", action="store_true",
                       help="run structural self-validation after building")
    build.add_argument("--engine", choices=["python", "flat", "batch"],
                       default="python", dest="build_engine",
                       help="construction pipeline: python (scalar "
                            "reference, default) or flat/batch (CSR "
                            "one-to-all label kernel + flat fast paths; "
                            "identical index, measured ~1.9x faster)")
    build.add_argument("--build-workers", type=int, default=1,
                       dest="build_workers",
                       help="label-construction processes; >1 fans "
                            "independent clusters over a forked pool "
                            "(default 1)")
    _add_param_options(build)
    build.set_defaults(handler=cmd_build)

    query = commands.add_parser("query", help="answer a skyline path query")
    query.add_argument("graph", help="DIMACS .gr file")
    query.add_argument("index", help="index file from 'repro build'")
    query.add_argument("--source", type=int, required=True)
    query.add_argument("--target", type=int, required=True)
    query.add_argument("--limit", type=int, default=10,
                       help="max paths to print (default 10)")
    query.add_argument("--exact", action="store_true",
                       help="also run the exact BBS baseline")
    query.add_argument("--exact-budget", type=float, default=900.0,
                       dest="exact_budget",
                       help="BBS time budget in seconds (default 900)")
    query.set_defaults(handler=cmd_query)

    trace = commands.add_parser(
        "trace",
        help="answer one query with tracing on and export the spans",
        description=(
            "Run one backbone query (building the index first when no "
            "--index is given, also traced) with the tracer enabled, "
            "then write the span tree as Chrome trace_event JSON — load "
            "it in chrome://tracing or https://ui.perfetto.dev.  The "
            "three query phases (grow_s / grow_t / connect_top) appear "
            "as nested spans with search-internals counters attached."
        ),
    )
    trace.add_argument("graph", help="DIMACS .gr file")
    trace.add_argument("--index",
                       help="saved index (built on demand when omitted)")
    trace.add_argument("--source", type=int, required=True)
    trace.add_argument("--target", type=int, required=True)
    trace.add_argument("--out", required=True,
                       help="trace output path (JSON)")
    trace.add_argument("--format", choices=["chrome", "flat"],
                       default="chrome",
                       help="chrome trace_event JSON (default) or a flat "
                            "span list")
    trace.add_argument("--budget", type=float, default=None,
                       help="query time budget in seconds")
    trace.add_argument("--summary", action="store_true",
                       help="print per-span-name rollups to stderr")
    _add_param_options(trace)
    trace.set_defaults(handler=cmd_trace)

    serve = commands.add_parser(
        "serve-batch",
        help="serve a batch of skyline queries as JSON lines",
        description=(
            "Read 'source target' pairs from a file or stdin, serve them "
            "through the query engine (planner + cache + shared grow-S "
            "batching), and emit one JSON line per query with latency and "
            "cache status.  A summary goes to stderr."
        ),
    )
    serve.add_argument("graph", help="DIMACS .gr file")
    serve.add_argument("--index",
                       help="saved index from 'repro build'/'repro warm' "
                            "(built on demand when omitted)")
    serve.add_argument("--store",
                       help="warm-start source: an index file (binary or "
                            "JSON) or a snapshot directory, in which case "
                            "the newest valid snapshot is recovered")
    serve.add_argument("--queries", default="-",
                       help="query file, or '-' for stdin (default)")
    serve.add_argument("--workers", type=int, default=4,
                       help="batch executor thread count, or worker "
                            "process count with --engine mp (default 4)")
    serve.add_argument("--engine", choices=["thread", "mp"],
                       default="thread", dest="serve_engine",
                       help="batch executor: in-process threads (default) "
                            "or a forked worker-process cohort sharing "
                            "one zero-copy CSR snapshot")
    serve.add_argument("--kernel",
                       choices=["auto", "flat", "batch", "python"],
                       default="auto",
                       help="search-kernel tier: auto (default; flat, "
                            "escalating to the bucket-vectorized batch "
                            "kernel above the measured node crossover), "
                            "or pin flat/batch/python; with --engine mp "
                            "only flat and batch apply (auto means flat)")
    serve.add_argument("--fail-fast", action="store_true", dest="fail_fast",
                       help="with --engine mp: abort the batch on the "
                            "first worker error (exit code 3)")
    serve.add_argument("--verify", action="store_true",
                       help="with --engine mp: re-serve the batch "
                            "single-process and require bit-identical "
                            "answers (exit code 4 on mismatch)")
    serve.add_argument("--mode",
                       choices=["auto", "exact", "approx", "corridor"],
                       default="auto",
                       help="planner mode (default auto)")
    serve.add_argument("--budget", type=float, default=None,
                       help="per-query time budget in seconds "
                            "(partial results are flagged truncated)")
    serve.add_argument("--corridor-radius", type=int, default=2,
                       dest="corridor_radius",
                       help="k-hop corridor width around the backbone "
                            "answer for mode=corridor (default 2)")
    serve.add_argument("--quality-target", type=float, default=None,
                       dest="quality_target",
                       help="minimum hypervolume retention for corridor "
                            "answers; a provably-missed target escalates "
                            "to exact within the remaining budget")
    serve.add_argument("--cache-size", type=int, default=1024,
                       dest="cache_size",
                       help="LRU result-cache capacity (default 1024)")
    serve.add_argument("--warm", action="store_true",
                       help="prime index and landmarks before serving")
    serve.add_argument("--metrics", action="store_true",
                       help="print the plaintext metrics export to stderr")
    serve.add_argument("--trace", metavar="FILE",
                       help="enable tracing and write a Chrome trace_event "
                            "JSON of the whole batch to FILE; with "
                            "--engine mp the file merges dispatcher and "
                            "every worker process onto one timeline")
    serve.add_argument("--status-file", metavar="FILE", dest="status_file",
                       default=None,
                       help="continuously write an atomic live-status JSON "
                            "document to FILE (read it with 'repro status')")
    serve.add_argument("--status-port", type=int, metavar="PORT",
                       dest="status_port", default=None,
                       help="serve /health /status /metrics /events over "
                            "HTTP on 127.0.0.1:PORT (0 picks a free port)")
    serve.add_argument("--status-interval", type=float, default=1.0,
                       dest="status_interval",
                       help="seconds between status-file writes (default 1)")
    serve.add_argument("--events", metavar="FILE", default=None,
                       help="record operational events (cohort swaps, "
                            "worker lifecycle, cache invalidation) as JSON "
                            "lines appended to FILE")
    _add_param_options(serve)
    serve.set_defaults(handler=cmd_serve_batch)

    status = commands.add_parser(
        "status",
        help="pretty-print a live-status document (file or URL)",
        description=(
            "Read the JSON document a serving process publishes via "
            "--status-file (a path) or --status-port (an http:// URL) "
            "and render it: rolling-window latency percentiles, worker "
            "liveness and generation lag, cache hit rate, and the "
            "recent operational events."
        ),
    )
    status.add_argument("source",
                        help="status file path, or http://host:port of a "
                             "process started with --status-port")
    status.add_argument("--json", action="store_true",
                        help="dump the raw JSON document instead of the "
                             "rendered summary")
    status.add_argument("--http-timeout", type=float, default=5.0,
                        dest="http_timeout",
                        help="HTTP fetch timeout in seconds (default 5)")
    status.set_defaults(handler=cmd_status)

    warm = commands.add_parser(
        "warm",
        help="build and save an index, priming the engine's warm state",
    )
    warm.add_argument("graph", help="DIMACS .gr file")
    warm.add_argument("--out", required=True, help="index output file")
    _add_param_options(warm)
    warm.set_defaults(handler=cmd_warm)

    index_cmd = commands.add_parser(
        "index",
        help="persist, inspect, and snapshot index stores",
        description=(
            "Maintenance commands for persisted indexes: convert between "
            "the binary store and legacy JSON formats, time a warm-start "
            "load, dump a store file's header and section table, and "
            "write retention-pruned generation snapshots."
        ),
    )
    index_sub = index_cmd.add_subparsers(dest="index_command", required=True)

    index_save = index_sub.add_parser(
        "save", help="re-save an index in another format"
    )
    index_save.add_argument("graph", help="DIMACS .gr file")
    index_save.add_argument("index", help="existing index file (any format)")
    index_save.add_argument("--out", required=True, help="output index file")
    index_save.add_argument("--format", choices=["binary", "json"],
                            default="binary",
                            help="output format (default binary)")
    index_save.add_argument("--no-compress", action="store_true",
                            dest="no_compress",
                            help="disable zlib section compression")
    index_save.set_defaults(handler=cmd_index_save)

    index_load = index_sub.add_parser(
        "load", help="load an index and report warm-start timing"
    )
    index_load.add_argument("graph", help="DIMACS .gr file")
    index_load.add_argument("index", help="index file (any format)")
    index_load.add_argument("--lazy", action="store_true",
                            help="defer label levels to first access "
                                 "(binary stores only)")
    index_load.set_defaults(handler=cmd_index_load)

    index_inspect = index_sub.add_parser(
        "inspect", help="dump an index file's header and sections as JSON"
    )
    index_inspect.add_argument("index", help="index file (any format)")
    index_inspect.set_defaults(handler=cmd_index_inspect)

    index_snapshot = index_sub.add_parser(
        "snapshot", help="write a generation snapshot of an index"
    )
    index_snapshot.add_argument("graph", help="DIMACS .gr file")
    index_snapshot.add_argument("--index",
                                help="index file to snapshot (built on "
                                     "demand when omitted)")
    index_snapshot.add_argument("--dir", required=True,
                                help="snapshot directory")
    index_snapshot.add_argument("--generation", type=int, default=None,
                                help="generation number (default: newest "
                                     "on disk + 1)")
    index_snapshot.add_argument("--retain", type=int, default=3,
                                help="snapshots to keep (default 3)")
    _add_param_options(index_snapshot)
    index_snapshot.set_defaults(handler=cmd_index_snapshot)

    stats = commands.add_parser("stats", help="print graph / index statistics")
    stats.add_argument("graph", help="DIMACS .gr file")
    stats.add_argument("--index", help="optional index file")
    stats.set_defaults(handler=cmd_stats)

    datasets = commands.add_parser(
        "datasets", help="list the catalog's synthetic stand-ins"
    )
    datasets.set_defaults(handler=cmd_datasets)

    bench_cmd = commands.add_parser(
        "bench",
        help="time the search engines, or report committed telemetry",
        description=(
            "'bench run GRAPH' times the search engines on a random "
            "workload ('bench GRAPH' still works); 'bench report' "
            "merges the committed BENCH_*.json telemetry dumps into "
            "one trajectory table."
        ),
    )
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)

    bench_report = bench_sub.add_parser(
        "report",
        help="merge BENCH_*.json telemetry dumps into one table",
        description=(
            "Flatten every BENCH_<module>.json at the repo root (or "
            "--dir) into one (module, metric, value, run date) table — "
            "the committed performance trajectory across sessions.  "
            "Values are the numeric leaves of each dump, dotted by "
            "their JSON path; run dates come from file modification "
            "times."
        ),
    )
    bench_report.add_argument("--dir", default=".",
                              help="directory holding BENCH_*.json "
                                   "(default: current directory)")
    bench_report.add_argument("--filter", default=None,
                              help="only metrics whose 'module.metric' "
                                   "path contains this substring")
    bench_report.add_argument("--spans", action="store_true",
                              help="include the span_aggregates rollups "
                                   "(bulky; hidden by default)")
    bench_report.add_argument("--json", action="store_true",
                              help="emit the rows as JSON instead of a "
                                   "table")
    bench_report.set_defaults(handler=cmd_bench_report)

    bench = bench_sub.add_parser(
        "run",
        help="time the search engines (python vs flat vs batch kernels) "
        "on a random workload",
    )
    bench.add_argument("graph", help="DIMACS .gr file")
    bench.add_argument("--engine",
                       choices=["both", "all", "flat", "python", "batch"],
                       default="both",
                       help="which engine(s) to time: both = python+flat "
                            "(default), all adds the bucket-vectorized "
                            "batch kernel, or a single engine")
    bench.add_argument("--queries", type=int, default=6,
                       help="workload size (default 6)")
    bench.add_argument("--rounds", type=int, default=3,
                       help="timing rounds over the workload (default 3)")
    bench.add_argument("--seed", type=int, default=88,
                       help="workload RNG seed (default 88)")
    bench.add_argument("--min-hops", type=int, default=10, dest="min_hops",
                       help="minimum query length in hops (default 10)")
    bench.add_argument("--budget", type=float, default=None,
                       help="per-query time budget in seconds")
    bench.add_argument("--mp-workers", default=None, dest="mp_workers",
                       metavar="N[,N...]",
                       help="also benchmark multi-process batch serving "
                            "at these cohort sizes (e.g. 1,2,4)")
    bench.add_argument("--mp-batch", type=int, default=64, dest="mp_batch",
                       help="batch size per mp throughput round "
                            "(default 64)")
    bench.set_defaults(handler=cmd_bench)

    qa = commands.add_parser(
        "qa",
        help="differential correctness harness (fuzz / replay / shrink)",
    )
    qa_sub = qa.add_subparsers(dest="qa_command", required=True)

    qa_fuzz = qa_sub.add_parser(
        "fuzz",
        help="cross-check exact BBS, index, store, engine, and "
        "maintenance on seeded random cases",
    )
    qa_fuzz.add_argument("--seeds", type=int, default=20,
                         help="number of seeded cases (default 20)")
    qa_fuzz.add_argument("--start", type=int, default=0,
                         help="first seed (default 0)")
    qa_fuzz.add_argument("--verbose", action="store_true",
                         help="print every discrepancy as cases finish")
    _add_qa_case_options(qa_fuzz)
    qa_fuzz.set_defaults(handler=cmd_qa_fuzz)

    qa_mpload = qa_sub.add_parser(
        "mpload",
        help="fuzz multi-process serving under concurrent maintenance "
        "(every response bit-matched against its stamped generation)",
    )
    qa_mpload.add_argument("--seeds", type=int, default=10,
                           help="number of seeded cases (default 10)")
    qa_mpload.add_argument("--start", type=int, default=0,
                           help="first seed (default 0)")
    qa_mpload.add_argument("--workers", type=int, default=2,
                           help="worker processes per cohort (default 2)")
    qa_mpload.add_argument("--verbose", action="store_true",
                           help="print every discrepancy as cases finish")
    _add_qa_case_options(qa_mpload)
    qa_mpload.set_defaults(handler=cmd_qa_mpload)

    qa_quality = qa_sub.add_parser(
        "quality",
        help="corridor quality tripwire: answers valid, non-dominated, "
        "dominance-consistent with exact, never reported better than "
        "exact",
    )
    qa_quality.add_argument("--seeds", type=int, default=20,
                            help="number of seeded cases (default 20)")
    qa_quality.add_argument("--start", type=int, default=0,
                            help="first seed (default 0)")
    qa_quality.add_argument("--radius", type=int, default=2,
                            help="corridor k-hop radius (default 2)")
    qa_quality.add_argument("--nodes", type=int, default=70,
                            help="nodes per random network (default 70)")
    qa_quality.add_argument("--queries", type=int, default=5,
                            help="queries per case (default 5)")
    qa_quality.add_argument("--verbose", action="store_true",
                            help="print every discrepancy as cases finish")
    qa_quality.set_defaults(handler=cmd_qa_quality)

    qa_replay = qa_sub.add_parser(
        "replay", help="re-run one seeded case with full detail"
    )
    qa_replay.add_argument("--seed", type=int, required=True,
                           help="case seed to replay")
    _add_qa_case_options(qa_replay)
    qa_replay.set_defaults(handler=cmd_qa_replay)

    qa_shrink = qa_sub.add_parser(
        "shrink",
        help="delta-debug a failing case into a regression fixture",
    )
    qa_shrink.add_argument("--seed", type=int, required=True,
                           help="case seed to shrink")
    qa_shrink.add_argument("--source", type=int, default=None,
                           help="pin the failing query's source node")
    qa_shrink.add_argument("--target", type=int, default=None,
                           help="pin the failing query's target node")
    qa_shrink.add_argument("--out", default=None,
                           help="write the pytest fixture to this file")
    _add_qa_case_options(qa_shrink)
    qa_shrink.set_defaults(handler=cmd_qa_shrink)
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Backward compatibility: 'repro bench GRAPH ...' predates the
    # bench subcommands and still reads naturally, so a first argument
    # that is not a subcommand selects 'bench run'.
    if len(argv) > 1 and argv[0] == "bench":
        if argv[1] not in ("run", "report", "-h", "--help"):
            argv.insert(1, "run")
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
