"""repro — Backbone Index for Skyline Path Queries over Multi-cost Road Networks.

A faithful, pure-Python reproduction of the EDBT 2022 paper by Gong and
Cao.  The package provides:

* :mod:`repro.graph` — the multi-cost road network substrate,
  generators, and DIMACS I/O;
* :mod:`repro.paths` — paths, dominance, Pareto frontiers;
* :mod:`repro.search` — exact algorithms (Dijkstra, landmarks, BBS,
  m_BBS, one-to-all skyline);
* :mod:`repro.core` — the backbone index (construction, querying,
  maintenance), the paper's primary contribution;
* :mod:`repro.baselines` — GTree and CH adapted to skyline paths, plus
  BFS partitioning, the paper's comparison methods;
* :mod:`repro.eval` — quality metrics (RAC, goodness), workloads,
  experiment harness;
* :mod:`repro.datasets` — named synthetic stand-ins for the paper's
  nine road networks;
* :mod:`repro.obs` — zero-dependency tracing (nested spans, Chrome
  trace export, span->metrics aggregation) over build, query, search,
  and serving;
* :mod:`repro.service` — the serving layer (warm engine, result
  cache, batch executor, metrics);
* :mod:`repro.store` — binary index persistence (checksummed
  sectioned format, lazy loading, generation snapshots) for fast
  warm starts.

Quickstart::

    from repro import road_network, build_backbone_index, skyline_paths

    graph = road_network(2000, dim=3, seed=7)
    index = build_backbone_index(graph)
    nodes = list(graph.nodes())
    approx = index.query(nodes[0], nodes[-1])
    exact = skyline_paths(graph, nodes[0], nodes[-1]).paths
"""

from repro.core import (
    AggressiveMode,
    BackboneIndex,
    BackboneParams,
    ClusteringStrategy,
    backbone_one_to_all,
    backbone_query,
    build_backbone_index,
)
from repro.core.directed import DirectedBackboneIndex
from repro.core.maintenance import MaintainableIndex
from repro.errors import (
    BuildError,
    DimensionMismatchError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
    QueryError,
    ReproError,
    SearchTimeoutError,
)
from repro.eval import goodness, rac, random_queries
from repro.graph import (
    CostDistribution,
    MultiCostGraph,
    assign_costs,
    bfs_subgraph,
    graph_stats,
    road_network,
)
from repro.obs import Tracer, get_tracer, set_tracer, use_tracer
from repro.paths import Path, PathSet, dominates, skyline_of
from repro.search import (
    LandmarkIndex,
    many_to_many_skyline,
    one_to_all_skyline,
    skyline_paths,
)
from repro.store import Snapshotter, load_index, save_index

__version__ = "1.0.0"

__all__ = [
    "AggressiveMode",
    "BackboneIndex",
    "BackboneParams",
    "BuildError",
    "ClusteringStrategy",
    "CostDistribution",
    "DirectedBackboneIndex",
    "DimensionMismatchError",
    "EdgeNotFoundError",
    "GraphError",
    "LandmarkIndex",
    "MaintainableIndex",
    "MultiCostGraph",
    "NodeNotFoundError",
    "Path",
    "PathSet",
    "QueryError",
    "ReproError",
    "SearchTimeoutError",
    "Snapshotter",
    "Tracer",
    "assign_costs",
    "backbone_one_to_all",
    "backbone_query",
    "bfs_subgraph",
    "build_backbone_index",
    "dominates",
    "get_tracer",
    "goodness",
    "graph_stats",
    "load_index",
    "many_to_many_skyline",
    "one_to_all_skyline",
    "rac",
    "random_queries",
    "road_network",
    "save_index",
    "set_tracer",
    "skyline_of",
    "skyline_paths",
    "use_tracer",
]
