"""Shared search-label machinery for skyline searches.

A *label* is a partial path: the node it ends at, the accumulated cost
vector, and a parent link for O(length) path materialization.  Every
skyline search in the library (BBS, m_BBS, one-to-all) manages one
Pareto frontier of labels per node; a label dominated-or-equalled at its
node can never extend into a new skyline path, so it is pruned.

Keeping one label per *distinct* cost per node is the standard
multi-objective search compromise: equal-cost alternatives that diverge
and re-merge at a node are collapsed, while equal-cost paths through
different nodes all survive.
"""

from __future__ import annotations

from repro.paths.dominance import CostVector, dominates, dominates_or_equal
from repro.paths.path import Path


class Label:
    """A partial path ending at ``node`` with accumulated ``cost``."""

    __slots__ = ("node", "cost", "parent", "seed")

    def __init__(
        self,
        node: int,
        cost: CostVector,
        parent: "Label | None" = None,
        seed: object = None,
    ) -> None:
        self.node = node
        self.cost = cost
        self.parent = parent
        # Arbitrary payload threaded from the label's origin (m_BBS uses
        # it to remember which prefix path seeded the search).
        self.seed = seed if seed is not None or parent is None else parent.seed

    def to_path(self) -> Path:
        """Materialize the node sequence from the parent chain."""
        nodes = []
        label: Label | None = self
        while label is not None:
            nodes.append(label.node)
            label = label.parent
        nodes.reverse()
        return Path(nodes, self.cost)

    def ancestry(self) -> set[int]:
        """The set of nodes on the partial path (cycle checks)."""
        nodes = set()
        label: Label | None = self
        while label is not None:
            nodes.add(label.node)
            label = label.parent
        return nodes

    def __repr__(self) -> str:
        return f"Label(node={self.node}, cost={self.cost})"


class NodeFrontier:
    """Per-node Pareto frontier of label costs.

    ``try_add`` is the single admission point: it rejects a cost
    dominated-or-equalled by the node's frontier and evicts anything the
    new cost dominates.  ``is_current`` supports lazy heap deletion —
    a popped label whose cost has been evicted since its push is stale.
    """

    __slots__ = ("_costs",)

    def __init__(self) -> None:
        self._costs: list[CostVector] = []

    def try_add(self, cost: CostVector) -> bool:
        """Admit a cost to the frontier; return False if pruned."""
        costs = self._costs
        for kept in costs:
            if dominates_or_equal(kept, cost):
                return False
        self._costs = [kept for kept in costs if not dominates(cost, kept)]
        self._costs.append(cost)
        return True

    def is_current(self, cost: CostVector) -> bool:
        """True iff the cost is still on the frontier (not evicted)."""
        return cost in self._costs

    def __len__(self) -> int:
        return len(self._costs)
