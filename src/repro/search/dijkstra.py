"""Single-dimension shortest-path search over multi-cost graphs.

Dijkstra's algorithm [15] applied to one cost dimension at a time.
These routines power three things in the library: the BBS result-set
initialization (seed the skyline with each dimension's shortest path,
the improvement of [45]), the landmark index distances, and the paper's
"path hop" statistic (average length of the per-dimension shortest
paths).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.errors import NodeNotFoundError, QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import add_costs, zero_cost
from repro.paths.path import Path

_INF = float("inf")


def _relax_neighbors(graph: MultiCostGraph, node: int, reverse: bool) -> set[int]:
    if reverse and graph.directed:
        return graph.in_neighbors(node)
    return graph.neighbors(node)


def _edge_weight(
    graph: MultiCostGraph, u: int, v: int, dim_index: int, reverse: bool
) -> float:
    if reverse and graph.directed:
        costs = graph.edge_costs(v, u)
    else:
        costs = graph.edge_costs(u, v)
    return min(cost[dim_index] for cost in costs)


def shortest_costs(
    graph: MultiCostGraph,
    source: int,
    dim_index: int,
    *,
    targets: Iterable[int] | None = None,
    reverse: bool = False,
) -> dict[int, float]:
    """Shortest distance on one dimension from ``source`` to every node.

    With ``targets`` the search stops once all targets are settled.
    ``reverse`` searches along incoming arcs (useful for directed
    lower bounds); it is a no-op on undirected graphs.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not 0 <= dim_index < graph.dim:
        raise QueryError(f"dimension index {dim_index} out of range [0, {graph.dim})")
    remaining = set(targets) if targets is not None else None
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor in _relax_neighbors(graph, node, reverse):
            weight = _edge_weight(graph, node, neighbor, dim_index, reverse)
            candidate = d + weight
            if candidate < dist.get(neighbor, _INF):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def shortest_path(
    graph: MultiCostGraph, source: int, target: int, dim_index: int
) -> Path | None:
    """The shortest path on one dimension, with its full cost vector.

    At every relaxation the parallel edge minimizing ``dim_index`` is
    used; the returned :class:`Path` carries the accumulated cost on
    *all* dimensions.  Returns None when target is unreachable.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return Path.trivial(source, graph.dim)
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        for neighbor in graph.neighbors(node):
            weight = _edge_weight(graph, node, neighbor, dim_index, reverse=False)
            candidate = d + weight
            if candidate < dist.get(neighbor, _INF):
                dist[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    if target not in settled:
        return None
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    cost = zero_cost(graph.dim)
    for u, v in zip(nodes, nodes[1:]):
        costs = graph.edge_costs(u, v)
        best = min(costs, key=lambda c: c[dim_index])
        cost = add_costs(cost, best)
    return Path(nodes, cost)


def per_dimension_shortest_paths(
    graph: MultiCostGraph, source: int, target: int
) -> list[Path]:
    """One shortest path per cost dimension (may contain duplicates)."""
    paths = []
    for dim_index in range(graph.dim):
        path = shortest_path(graph, source, target, dim_index)
        if path is not None:
            paths.append(path)
    return paths


def path_hops(graph: MultiCostGraph, source: int, target: int) -> float:
    """The paper's "path hop": mean length of per-dimension shortest paths.

    Returns ``inf`` when the target is unreachable.
    """
    paths = per_dimension_shortest_paths(graph, source, target)
    if not paths:
        return _INF
    return sum(path.length for path in paths) / len(paths)
