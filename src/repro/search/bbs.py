"""BBS — the exact Baseline Best-first Search for skyline path queries.

This is the paper's exact comparator (Section 6.1): the route-skyline
method of Kriegel et al. [29], sped up by seeding the result set with
the shortest path on each single dimension [45].  The search grows
partial paths best-first (ordered by the scalarized optimistic cost),
maintains a Pareto frontier of labels per node, and prunes a partial
path when its optimistic completion — accumulated cost plus a
per-dimension lower bound to the target — is already strictly dominated
by a found result.

Exactness: with admissible (never over-estimating) lower bounds every
pruned label can only extend into dominated paths, so the surviving
result set is exactly the skyline.  Equal-cost path multiplicity is
bounded per node (see :mod:`repro.search.labels`).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

from repro.errors import NodeNotFoundError, QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.frontier import PathSet
from repro.paths.path import Path
from repro.search.bounds import ExactBounds, LowerBoundProvider
from repro.search.dijkstra import per_dimension_shortest_paths
from repro.search.labels import Label, NodeFrontier

_INF = float("inf")


@dataclass
class SearchStats:
    """Counters describing one skyline search run."""

    expansions: int = 0
    pushes: int = 0
    pruned_by_frontier: int = 0
    pruned_by_bound: int = 0
    pruned_by_result: int = 0
    pruned_by_corridor: int = 0
    dominance_checks: int = 0
    max_heap_size: int = 0
    frontier_nodes: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    def as_span_counters(self) -> dict[str, float]:
        """The integer counters, keyed for span/metrics attachment."""
        return {
            "expansions": self.expansions,
            "pushes": self.pushes,
            "pruned_by_frontier": self.pruned_by_frontier,
            "pruned_by_bound": self.pruned_by_bound,
            "pruned_by_result": self.pruned_by_result,
            "pruned_by_corridor": self.pruned_by_corridor,
            "dominance_checks": self.dominance_checks,
            "max_heap_size": self.max_heap_size,
            "frontier_nodes": self.frontier_nodes,
        }


@dataclass
class SkylineResult:
    """The outcome of a skyline path search."""

    paths: list[Path] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


def resolve_search_engine(
    engine: str, snapshot, graph: MultiCostGraph, *, tracer: Tracer | None = None
):
    """Resolve an ``engine=`` option to ``("python"|"flat"|"batch", snapshot)``.

    ``"python"`` ignores any snapshot.  ``"flat"`` forces the scalar CSR
    kernel and ``"batch"`` the bucket-vectorized one, building (and
    tracing) a snapshot of ``graph`` when none is given.  ``"auto"``
    uses the flat kernel exactly when a snapshot is already available —
    it never pays a build on the query path and never changes the
    bit-identity tier (batch must be requested explicitly; the service
    planner does so above its measured crossover).
    """
    if engine == "python":
        return "python", None
    if engine in ("flat", "batch"):
        if snapshot is None:
            from repro.accel.csr import CSRSnapshot

            snapshot = CSRSnapshot.from_graph(graph, tracer=tracer)
        return engine, snapshot
    if engine == "auto":
        if snapshot is not None:
            return "flat", snapshot
        return "python", None
    raise QueryError(f"unknown search engine {engine!r}")


def restriction_mask(restrict_to, snapshot) -> list[bool]:
    """A dense boolean node mask over ``snapshot`` for a restriction.

    Objects exposing ``mask_for`` (e.g.
    :class:`repro.approx.corridor.Corridor`) supply their own memoized
    mask; any other node collection is materialized here.  Restriction
    members absent from the snapshot are ignored — they cannot be
    reached anyway.
    """
    mask_for = getattr(restrict_to, "mask_for", None)
    if mask_for is not None:
        return mask_for(snapshot)
    return snapshot.node_mask(restrict_to)


def skyline_paths(
    graph: MultiCostGraph,
    source: int,
    target: int,
    *,
    bounds: LowerBoundProvider | None = None,
    seed_with_shortest_paths: bool = True,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    tracer: Tracer | None = None,
    engine: str = "auto",
    snapshot=None,
    restrict_to=None,
    seed_paths=None,
) -> SkylineResult:
    """Exact skyline paths from ``source`` to ``target`` (Definition 3.2).

    Parameters
    ----------
    bounds:
        Lower-bound provider for pruning.  Defaults to exact reverse
        Dijkstra bounds from the target (the strongest choice).
    seed_with_shortest_paths:
        Initialize the result set with each dimension's shortest path —
        the cold-start fix of [45] adopted by the paper's BBS.
    restrict_to:
        Optional node-set restriction: expansion never pushes a
        neighbor outside it (anything supporting ``in``, e.g. a set of
        node ids or a :class:`repro.approx.corridor.Corridor`).  The
        restriction must contain ``target`` (and normally ``source``)
        to produce any result; within the restricted subgraph the
        search stays exact.  Full-graph lower bounds remain admissible
        under restriction, only looser.
    seed_paths:
        Extra paths pre-loaded into the result skyline (e.g. a
        corridor's unpacked backbone answer).  Each must be a real
        source-to-target path with an achievable cost; dominated seeds
        are absorbed by the Pareto frontier.
    time_budget:
        Optional wall-clock limit in seconds.  On expiry the search
        stops and returns the results found so far with
        ``stats.timed_out`` set (mirroring the paper's 15-minute cap).
    max_expansions:
        Optional cap on label expansions, also reported as a timeout.
    tracer:
        Observability hook; defaults to the process-wide tracer.  When
        enabled the whole search runs inside one ``search.bbs`` span
        carrying the :class:`SearchStats` counters.
    engine:
        ``"python"`` runs the dict-based loop, ``"flat"`` the scalar CSR
        kernel of :mod:`repro.accel` (building ``snapshot`` on demand),
        ``"batch"`` the bucket-vectorized kernel, and ``"auto"``
        (default) picks flat exactly when ``snapshot`` is provided.
        ``python``/``flat`` results are bit-identical (counters
        included); ``batch`` returns the same answer set but its
        counters and expansion order differ (see
        :mod:`repro.accel.batch_kernel`).
    snapshot:
        Optional pre-built :class:`~repro.accel.csr.CSRSnapshot` of
        ``graph``, typically cached by the caller.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return SkylineResult(paths=[Path.trivial(source, graph.dim)])

    tracer = resolve_tracer(tracer)
    resolved, snapshot = resolve_search_engine(
        engine, snapshot, graph, tracer=tracer
    )
    with tracer.span(
        "search.bbs",
        source=source,
        target=target,
        engine=resolved,
        restricted=restrict_to is not None,
    ) as span:
        if resolved in ("flat", "batch"):
            if resolved == "batch":
                from repro.accel.batch_kernel import (
                    batch_skyline_paths as kernel,
                )
            else:
                from repro.accel.bbs_kernel import (
                    flat_skyline_paths as kernel,
                )

            node_mask = (
                restriction_mask(restrict_to, snapshot)
                if restrict_to is not None
                else None
            )
            result = kernel(
                graph,
                snapshot,
                source,
                target,
                bounds=bounds,
                seed_with_shortest_paths=seed_with_shortest_paths,
                time_budget=time_budget,
                max_expansions=max_expansions,
                node_mask=node_mask,
                seed_paths=seed_paths,
            )
        else:
            result = _skyline_paths_impl(
                graph,
                source,
                target,
                bounds=bounds,
                seed_with_shortest_paths=seed_with_shortest_paths,
                time_budget=time_budget,
                max_expansions=max_expansions,
                restrict_to=restrict_to,
                seed_paths=seed_paths,
            )
        if span.enabled:
            span.counters.update(result.stats.as_span_counters())
            span.set(
                paths=len(result.paths), timed_out=result.stats.timed_out
            )
    return result


def _skyline_paths_impl(
    graph: MultiCostGraph,
    source: int,
    target: int,
    *,
    bounds: LowerBoundProvider | None,
    seed_with_shortest_paths: bool,
    time_budget: float | None,
    max_expansions: int | None,
    restrict_to=None,
    seed_paths=None,
) -> SkylineResult:
    start_time = time.perf_counter()
    stats = SearchStats()
    if time_budget is not None and time_budget <= 0:
        # Bail before paying for bound construction or seeding: an
        # already-expired budget means an empty, timed-out result.
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return SkylineResult(stats=stats)
    if bounds is None:
        bounds = ExactBounds(graph, [target])

    results = PathSet()
    if seed_with_shortest_paths:
        results.add_all(per_dimension_shortest_paths(graph, source, target))
    if seed_paths is not None:
        results.add_all(seed_paths)

    frontiers: dict[int, NodeFrontier] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push(label: Label) -> None:
        bound = bounds.bound(label.node)
        projected = tuple(c + b for c, b in zip(label.cost, bound))
        if _INF in projected:
            stats.pruned_by_bound += 1
            return
        stats.dominance_checks += 1
        if results.dominates_candidate(projected):
            stats.pruned_by_result += 1
            return
        frontier = frontiers.get(label.node)
        if frontier is None:
            frontier = frontiers[label.node] = NodeFrontier()
        if not frontier.try_add(label.cost):
            stats.pruned_by_frontier += 1
            return
        stats.pushes += 1
        heapq.heappush(heap, (sum(projected), next(tie_breaker), label))
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    push(Label(source, (0.0,) * graph.dim))

    # The budget check is gated on a monotone *loop-iteration* counter,
    # not on ``stats.expansions``: stale or pruned pops never increment
    # expansions, so a long run of them would otherwise freeze the gate
    # at a non-multiple of the interval and starve the wall-clock check
    # indefinitely.  Overshoot is bounded to 512 heap pops.
    loop_count = 0
    while heap:
        if loop_count & 511 == 0:
            if time_budget is not None and (
                time.perf_counter() - start_time > time_budget
            ):
                stats.timed_out = True
                break
        loop_count += 1
        if max_expansions is not None and stats.expansions >= max_expansions:
            stats.timed_out = True
            break

        _, _, label = heapq.heappop(heap)
        frontier = frontiers[label.node]
        if not frontier.is_current(label.cost):
            continue  # evicted since push: stale heap entry
        bound = bounds.bound(label.node)
        projected = tuple(c + b for c, b in zip(label.cost, bound))
        stats.dominance_checks += 1
        if results.dominates_candidate(projected):
            stats.pruned_by_result += 1
            continue
        stats.expansions += 1

        if label.node == target:
            results.add(label.to_path())
            continue

        # Ascending-id neighbor order keeps the push sequence — and with
        # it equal-cost tie resolution — identical to the flat kernel's
        # CSR slot order.  The restriction check runs before any cost
        # arithmetic on both engines, so restricted runs stay
        # bit-identical too; the prune count matches the flat kernel's
        # per-slot count by charging one prune per parallel edge.
        for neighbor in graph.sorted_neighbors(label.node):
            if restrict_to is not None and neighbor not in restrict_to:
                stats.pruned_by_corridor += len(
                    graph.edge_costs(label.node, neighbor)
                )
                continue
            for edge_cost in graph.edge_costs(label.node, neighbor):
                extended = tuple(
                    c + w for c, w in zip(label.cost, edge_cost)
                )
                push(Label(neighbor, extended, parent=label))

    stats.elapsed_seconds = time.perf_counter() - start_time
    stats.frontier_nodes = len(frontiers)
    # Seeded shortest paths may have been superseded; PathSet already
    # keeps the final set mutually non-dominated.
    return SkylineResult(paths=results.paths(), stats=stats)


def brute_force_skyline(
    graph: MultiCostGraph,
    source: int,
    target: int,
    *,
    max_length: int | None = None,
) -> list[Path]:
    """Skyline by exhaustive simple-path enumeration (testing oracle).

    Exponential; only usable on tiny graphs.  ``max_length`` optionally
    caps the number of edges per enumerated path.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return [Path.trivial(source, graph.dim)]
    if graph.num_nodes > 64:
        raise QueryError(
            "brute_force_skyline is a testing oracle for tiny graphs "
            f"(got {graph.num_nodes} nodes)"
        )
    results = PathSet()
    limit = max_length if max_length is not None else graph.num_nodes

    def extend(nodes: list[int], cost: tuple[float, ...], visited: set[int]) -> None:
        head = nodes[-1]
        if head == target:
            results.add(Path(nodes, cost))
            return
        if len(nodes) - 1 >= limit:
            return
        for neighbor in graph.neighbors(head):
            if neighbor in visited:
                continue
            for edge_cost in graph.edge_costs(head, neighbor):
                visited.add(neighbor)
                nodes.append(neighbor)
                extend(nodes, tuple(c + w for c, w in zip(cost, edge_cost)), visited)
                nodes.pop()
                visited.remove(neighbor)

    extend([source], (0.0,) * graph.dim, {source})
    return results.paths()
