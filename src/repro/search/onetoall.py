"""One-to-all skyline path search.

A label-correcting best-first search that computes, from one source,
the Pareto-skyline paths to *every* reachable node.  Two callers rely
on it:

* backbone-index label construction — each cluster node needs its
  skyline paths (over the cluster's removed edges) to every highway
  entrance, which is exactly a one-to-all run on a small restricted
  subgraph (Section 4.3.1);
* the paper's one-to-all SPQ extension (Section 5, "Support to other
  types of queries").

Like the point-to-point searches, the hot loop has engine tiers:
``engine="flat"`` runs the bit-identical scalar CSR loop and
``engine="batch"`` the bucket-vectorized numpy tier of
:mod:`repro.accel.onetoall_kernel` (answer-set-equal, counters and
equal-cost witnesses may differ).  ``"auto"`` upgrades to flat exactly
when a snapshot is already in hand.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Iterable

from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.search.labels import Label, NodeFrontier


def one_to_all_skyline(
    graph: MultiCostGraph,
    source: int,
    *,
    targets: Iterable[int] | None = None,
    max_frontier: int | None = None,
    time_budget: float | None = None,
    stats=None,
    engine: str = "python",
    snapshot=None,
) -> dict[int, list[Path]]:
    """Skyline paths from ``source`` to every node (or just ``targets``).

    Parameters
    ----------
    targets:
        When given, only these nodes appear in the result map (the
        search itself still explores everything reachable — any node can
        lie on a skyline path to a target).
    max_frontier:
        Optional cap on the number of skyline labels kept per node.  A
        cap turns the search into an under-approximation; the backbone
        builder exposes it as a guard against pathological clusters.
    time_budget:
        Optional wall-clock budget in seconds.  Checked on a monotone
        iteration counter (every 512 pops) so a pathological cluster
        cannot hang the builder; a timed-out search returns the partial
        skyline found so far and flags ``stats.timed_out``.
    stats:
        Optional :class:`repro.search.bbs.SearchStats` filled in place.
    engine / snapshot:
        Kernel tier selection via
        :func:`repro.search.bbs.resolve_search_engine` — ``"python"``
        (default), ``"flat"`` (scalar CSR, bit-identical), ``"batch"``
        (bucket-vectorized, answer-set-equal), or ``"auto"``.

    Returns a map ``node -> skyline paths``; the source maps to its
    trivial path.  Unreachable nodes are absent.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if engine != "python" or snapshot is not None:
        from repro.search.bbs import resolve_search_engine

        kind, snapshot = resolve_search_engine(engine, snapshot, graph)
        if kind != "python":
            from repro.accel.batch_kernel import DEFAULT_BUCKET_SIZE
            from repro.accel.onetoall_kernel import flat_one_to_all

            return flat_one_to_all(
                snapshot,
                source,
                targets=targets,
                max_frontier=max_frontier,
                time_budget=time_budget,
                stats=stats,
                bucket_size=None if kind == "flat" else DEFAULT_BUCKET_SIZE,
            )

    from repro.search.bbs import SearchStats

    if stats is None:
        stats = SearchStats()
    start_time = time.perf_counter()
    wanted = set(targets) if targets is not None else None
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return {}

    frontiers: dict[int, NodeFrontier] = {}
    best_labels: dict[int, list[Label]] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push(label: Label) -> None:
        frontier = frontiers.get(label.node)
        if frontier is None:
            frontier = frontiers[label.node] = NodeFrontier()
        if max_frontier is not None and len(frontier) >= max_frontier:
            return
        if not frontier.try_add(label.cost):
            stats.pruned_by_frontier += 1
            return
        stats.pushes += 1
        heapq.heappush(heap, (sum(label.cost), next(tie_breaker), label))

    push(Label(source, (0.0,) * graph.dim))

    loop_count = 0
    while heap:
        if (
            time_budget is not None
            and loop_count & 511 == 0
            and time.perf_counter() - start_time > time_budget
        ):
            stats.timed_out = True
            break
        loop_count += 1
        _, _, label = heapq.heappop(heap)
        frontier = frontiers[label.node]
        if not frontier.is_current(label.cost):
            continue
        stats.expansions += 1
        kept = best_labels.setdefault(label.node, [])
        kept[:] = [old for old in kept if frontier.is_current(old.cost)]
        kept.append(label)
        cost = label.cost
        # Sorted neighbor order keeps expansion — and therefore
        # tie-breaking among equal-cost labels — identical to the CSR
        # slot order the flat kernel walks.
        for neighbor in graph.sorted_neighbors(label.node):
            for edge_cost in graph.edge_costs(label.node, neighbor):
                extended = tuple(c + w for c, w in zip(cost, edge_cost))
                push(Label(neighbor, extended, parent=label))
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    stats.frontier_nodes = len(frontiers)
    stats.elapsed_seconds = time.perf_counter() - start_time

    result: dict[int, list[Path]] = {}
    for node, labels in best_labels.items():
        if wanted is not None and node not in wanted:
            continue
        frontier = frontiers[node]
        paths = [
            label.to_path() for label in labels if frontier.is_current(label.cost)
        ]
        if paths:
            result[node] = paths
    return result
