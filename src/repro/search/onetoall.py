"""One-to-all skyline path search.

A label-correcting best-first search that computes, from one source,
the Pareto-skyline paths to *every* reachable node.  Two callers rely
on it:

* backbone-index label construction — each cluster node needs its
  skyline paths (over the cluster's removed edges) to every highway
  entrance, which is exactly a one-to-all run on a small restricted
  subgraph (Section 4.3.1);
* the paper's one-to-all SPQ extension (Section 5, "Support to other
  types of queries").
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable

from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path
from repro.search.labels import Label, NodeFrontier


def one_to_all_skyline(
    graph: MultiCostGraph,
    source: int,
    *,
    targets: Iterable[int] | None = None,
    max_frontier: int | None = None,
) -> dict[int, list[Path]]:
    """Skyline paths from ``source`` to every node (or just ``targets``).

    Parameters
    ----------
    targets:
        When given, only these nodes appear in the result map (the
        search itself still explores everything reachable — any node can
        lie on a skyline path to a target).
    max_frontier:
        Optional cap on the number of skyline labels kept per node.  A
        cap turns the search into an under-approximation; the backbone
        builder exposes it as a guard against pathological clusters.

    Returns a map ``node -> skyline paths``; the source maps to its
    trivial path.  Unreachable nodes are absent.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    wanted = set(targets) if targets is not None else None

    frontiers: dict[int, NodeFrontier] = {}
    best_labels: dict[int, list[Label]] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push(label: Label) -> None:
        frontier = frontiers.get(label.node)
        if frontier is None:
            frontier = frontiers[label.node] = NodeFrontier()
        if max_frontier is not None and len(frontier) >= max_frontier:
            return
        if not frontier.try_add(label.cost):
            return
        heapq.heappush(heap, (sum(label.cost), next(tie_breaker), label))

    push(Label(source, (0.0,) * graph.dim))

    while heap:
        _, _, label = heapq.heappop(heap)
        frontier = frontiers[label.node]
        if not frontier.is_current(label.cost):
            continue
        kept = best_labels.setdefault(label.node, [])
        kept[:] = [old for old in kept if frontier.is_current(old.cost)]
        kept.append(label)
        for neighbor in graph.neighbors(label.node):
            for edge_cost in graph.edge_costs(label.node, neighbor):
                extended = tuple(c + w for c, w in zip(label.cost, edge_cost))
                push(Label(neighbor, extended, parent=label))

    result: dict[int, list[Path]] = {}
    for node, labels in best_labels.items():
        if wanted is not None and node not in wanted:
            continue
        frontier = frontiers[node]
        paths = [
            label.to_path() for label in labels if frontier.is_current(label.cost)
        ]
        if paths:
            result[node] = paths
    return result
