"""m_BBS — many-to-many skyline search over the abstracted graph.

The backbone query algorithm ends with partial paths from the source
reaching several nodes of the most abstracted graph G_L
(``S_possible``) and partial paths from the target reaching several
others (``D_possible``).  The paper's m_BBS (Section 5) modifies BBS to
accept *multiple* seeded sources and estimate lower bounds "to all the
possible destinations (not one destination)", so a single run replaces
one BBS run per (source, target) pair.

Each seed carries the cost of the partial path that reached it and a
payload identifying that partial path; result labels inherit the
payload, letting the caller stitch the full approximate path back
together.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.dominance import CostVector
from repro.paths.frontier import ParetoSet
from repro.paths.path import Path
from repro.search.bbs import SearchStats
from repro.search.bounds import LowerBoundProvider, ZeroBounds
from repro.search.labels import Label, NodeFrontier

_INF = float("inf")


@dataclass(frozen=True)
class Seed:
    """One starting point for the many-to-many search."""

    node: int
    cost: CostVector
    payload: object = None


@dataclass
class ManyToManyResult:
    """Skyline labels per reached target node.

    ``hits[t]`` is a Pareto set keyed by total cost (seed cost plus
    cost through the searched graph); payloads are ``(seed_payload,
    path_in_graph)`` pairs.
    """

    hits: dict[int, ParetoSet] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)


def many_to_many_skyline(
    graph: MultiCostGraph,
    seeds: Iterable[Seed],
    targets: Sequence[int],
    *,
    bounds: LowerBoundProvider | None = None,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    tracer: Tracer | None = None,
    engine: str = "auto",
    snapshot=None,
    restrict_to=None,
) -> ManyToManyResult:
    """Run one best-first skyline search from many seeds to many targets.

    ``bounds`` should lower-bound the cost from a node to the *nearest*
    target (:meth:`LandmarkIndex.lower_bound_to_any` wrapped in
    :class:`~repro.search.bounds.LandmarkLowerBounds`, or
    :class:`~repro.search.bounds.ExactBounds` built with all targets).
    ``tracer`` wraps the search in one ``search.mbbs`` span carrying
    the :class:`~repro.search.bbs.SearchStats` counters.  ``engine``
    and ``snapshot`` select the CSR kernel exactly as in
    :func:`repro.search.bbs.skyline_paths`; ``restrict_to`` limits
    expansion to a node set exactly as there (it must contain the
    targets a caller wants reached).
    """
    from repro.search.bbs import resolve_search_engine, restriction_mask

    seed_list = list(seeds)
    tracer = resolve_tracer(tracer)
    resolved, snapshot = resolve_search_engine(
        engine, snapshot, graph, tracer=tracer
    )
    with tracer.span(
        "search.mbbs",
        seeds=len(seed_list),
        targets=len(targets),
        engine=resolved,
        restricted=restrict_to is not None,
    ) as span:
        if resolved in ("flat", "batch"):
            if resolved == "batch":
                from repro.accel.batch_kernel import (
                    batch_many_to_many as kernel,
                )
            else:
                from repro.accel.bbs_kernel import (
                    flat_many_to_many as kernel,
                )

            node_mask = (
                restriction_mask(restrict_to, snapshot)
                if restrict_to is not None
                else None
            )
            result = kernel(
                graph,
                snapshot,
                seed_list,
                targets,
                bounds=bounds,
                time_budget=time_budget,
                max_expansions=max_expansions,
                node_mask=node_mask,
            )
        else:
            result = _many_to_many_impl(
                graph,
                seed_list,
                targets,
                bounds=bounds,
                time_budget=time_budget,
                max_expansions=max_expansions,
                restrict_to=restrict_to,
            )
        if span.enabled:
            span.counters.update(result.stats.as_span_counters())
            span.set(
                reached_targets=len(result.hits),
                timed_out=result.stats.timed_out,
            )
    return result


def _many_to_many_impl(
    graph: MultiCostGraph,
    seed_list: list[Seed],
    targets: Sequence[int],
    *,
    bounds: LowerBoundProvider | None,
    time_budget: float | None,
    max_expansions: int | None,
    restrict_to=None,
) -> ManyToManyResult:
    target_set = set(targets)
    for node in target_set:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    if bounds is None:
        bounds = ZeroBounds(graph.dim)

    start_time = time.perf_counter()
    stats = SearchStats()
    result = ManyToManyResult(stats=stats)
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return result
    frontiers: dict[int, NodeFrontier] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push(label: Label) -> None:
        bound = bounds.bound(label.node)
        projected = tuple(c + b for c, b in zip(label.cost, bound))
        if _INF in projected:
            stats.pruned_by_bound += 1
            return
        frontier = frontiers.get(label.node)
        if frontier is None:
            frontier = frontiers[label.node] = NodeFrontier()
        if not frontier.try_add(label.cost):
            stats.pruned_by_frontier += 1
            return
        stats.pushes += 1
        heapq.heappush(heap, (sum(projected), next(tie_breaker), label))
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    for seed in seed_list:
        if not graph.has_node(seed.node):
            raise NodeNotFoundError(seed.node)
        push(Label(seed.node, tuple(seed.cost), seed=seed))

    # Monotone loop counter for the budget gate: stale pops never bump
    # ``stats.expansions``, so gating on it can starve the wall-clock
    # check (see repro.search.bbs).
    loop_count = 0
    while heap:
        if time_budget is not None and loop_count & 511 == 0:
            if time.perf_counter() - start_time > time_budget:
                stats.timed_out = True
                break
        loop_count += 1
        if max_expansions is not None and stats.expansions >= max_expansions:
            stats.timed_out = True
            break

        _, _, label = heapq.heappop(heap)
        if not frontiers[label.node].is_current(label.cost):
            continue
        stats.expansions += 1

        if label.node in target_set:
            seed: Seed = label.seed  # type: ignore[assignment]
            hits = result.hits.get(label.node)
            if hits is None:
                hits = result.hits[label.node] = ParetoSet(keep_equal_costs=True)
            hits.add(label.cost, (seed.payload, _label_to_local_path(label, seed)))
            # Targets are ordinary nodes of G_L; keep expanding through
            # them — a skyline path may pass one target to reach another.

        # Ascending-id order: keeps push order identical to the flat
        # kernel's CSR slot order (see repro.accel.bbs_kernel).  The
        # restriction check precedes any cost arithmetic on both
        # engines; one prune is charged per parallel edge to match the
        # flat kernel's per-slot count.
        for neighbor in graph.sorted_neighbors(label.node):
            if restrict_to is not None and neighbor not in restrict_to:
                stats.pruned_by_corridor += len(
                    graph.edge_costs(label.node, neighbor)
                )
                continue
            for edge_cost in graph.edge_costs(label.node, neighbor):
                extended = tuple(c + w for c, w in zip(label.cost, edge_cost))
                push(Label(neighbor, extended, parent=label))

    stats.elapsed_seconds = time.perf_counter() - start_time
    stats.frontier_nodes = len(frontiers)
    return result


def _label_to_local_path(label: Label, seed: Seed) -> Path:
    """The path through the searched graph only (seed cost stripped)."""
    nodes = []
    walker: Label | None = label
    while walker is not None:
        nodes.append(walker.node)
        walker = walker.parent
    nodes.reverse()
    local_cost = tuple(c - s for c, s in zip(label.cost, seed.cost))
    # Guard against float drift producing tiny negative components.
    return Path(nodes, tuple(max(c, 0.0) for c in local_cost))
