"""A* search [23] on one cost dimension of a multi-cost graph.

The classic goal-directed companion to Dijkstra (paper Section 2.2).
With an admissible heuristic — landmark triangle bounds or Euclidean
distance for the spatial dimension — A* settles far fewer nodes than
Dijkstra on long queries.  The library uses it as a faster drop-in for
single-dimension shortest paths when a landmark index is available
(e.g., repeated workload generation on one graph).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

from repro.errors import NodeNotFoundError, QueryError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import add_costs, zero_cost
from repro.paths.path import Path
from repro.search.landmark import LandmarkIndex

_INF = float("inf")

Heuristic = Callable[[int], float]


def euclidean_heuristic(graph: MultiCostGraph, target: int) -> Heuristic:
    """Straight-line distance to the target — admissible for the
    spatial dimension (dimension 0 of generated networks) whenever edge
    costs are at least the Euclidean distance between endpoints."""
    target_coord = graph.coord(target)
    if target_coord is None:
        raise QueryError(f"node {target} has no coordinate for the heuristic")

    def heuristic(node: int) -> float:
        coord = graph.coord(node)
        if coord is None:
            return 0.0
        return math.dist(coord, target_coord)

    return heuristic


def landmark_heuristic(
    index: LandmarkIndex, target: int, dim_index: int
) -> Heuristic:
    """ALT heuristic: landmark triangle bound on one dimension."""

    def heuristic(node: int) -> float:
        return index.lower_bound(node, target)[dim_index]

    return heuristic


def astar_path(
    graph: MultiCostGraph,
    source: int,
    target: int,
    dim_index: int,
    *,
    heuristic: Heuristic | None = None,
) -> tuple[Path | None, int]:
    """A* shortest path on one dimension, with its full cost vector.

    Returns ``(path, settled_count)``; the settled count is the
    efficiency measure A* is chosen for.  ``heuristic`` must never
    overestimate the remaining distance on ``dim_index``; ``None``
    degrades to Dijkstra (zero heuristic).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if not 0 <= dim_index < graph.dim:
        raise QueryError(f"dimension index {dim_index} out of range [0, {graph.dim})")
    if heuristic is None:
        heuristic = lambda node: 0.0  # noqa: E731 - intentional tiny lambda
    if source == target:
        return Path.trivial(source, graph.dim), 0

    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    while heap:
        _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        base = dist[node]
        for neighbor in graph.neighbors(node):
            weight = min(
                cost[dim_index] for cost in graph.edge_costs(node, neighbor)
            )
            candidate = base + weight
            if candidate < dist.get(neighbor, _INF):
                dist[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate + heuristic(neighbor), neighbor))

    if target not in settled:
        return None, len(settled)
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    cost = zero_cost(graph.dim)
    for u, v in zip(nodes, nodes[1:]):
        best = min(graph.edge_costs(u, v), key=lambda c: c[dim_index])
        cost = add_costs(cost, best)
    return Path(nodes, cost), len(settled)
