"""Lower-bound providers for skyline search pruning.

BBS prunes a partial path when ``cost(partial) + lower_bound(node)`` is
already dominated by a found result.  The tighter the bound, the more
pruning.  Three providers cover the trade-offs:

* :class:`ExactBounds` — per-dimension reverse Dijkstra from the target
  (exact bound; the initialization strategy of [45]).  Costs d Dijkstra
  runs per query but prunes best; the library's default for BBS.
* :class:`LandmarkLowerBounds` — triangle-inequality bounds from a
  pre-built :class:`~repro.search.landmark.LandmarkIndex` [28, 29];
  zero per-query setup once the index exists.
* :class:`ZeroBounds` — no pruning information; the correctness
  baseline for tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import CostVector
from repro.search.dijkstra import shortest_costs
from repro.search.landmark import LandmarkIndex

_INF = float("inf")


class LowerBoundProvider(Protocol):
    """Anything that can lower-bound the remaining cost to the target(s)."""

    def bound(self, node: int) -> CostVector:
        """Per-dimension lower bound from ``node`` to the target set."""
        ...


class ZeroBounds:
    """The trivial all-zero bound (disables cost-to-go pruning)."""

    def __init__(self, dim: int) -> None:
        self._zero = (0.0,) * dim

    def bound(self, node: int) -> CostVector:
        return self._zero


class ExactBounds:
    """Exact per-dimension bounds via reverse Dijkstra from the targets.

    For multiple targets the bound on each dimension is the minimum over
    targets — optimistic, as required.  Unreachable nodes get infinite
    bounds, which lets the search drop them immediately.
    """

    def __init__(self, graph: MultiCostGraph, targets: Sequence[int]) -> None:
        self._dim = graph.dim
        tables: list[dict[int, float]] = [{} for _ in range(graph.dim)]
        for target in targets:
            for i in range(graph.dim):
                for node, dist in shortest_costs(
                    graph, target, i, reverse=True
                ).items():
                    best = tables[i].get(node, _INF)
                    if dist < best:
                        tables[i][node] = dist
        self._tables = tables

    def bound(self, node: int) -> CostVector:
        return tuple(table.get(node, _INF) for table in self._tables)


class LandmarkLowerBounds:
    """Adapter exposing a landmark index as a bound provider."""

    def __init__(self, index: LandmarkIndex, targets: Sequence[int]) -> None:
        self._index = index
        self._targets = list(targets)

    @property
    def index(self) -> LandmarkIndex:
        """The underlying landmark index (read-only)."""
        return self._index

    @property
    def targets(self) -> list[int]:
        """The target node set the bounds point at."""
        return list(self._targets)

    def bound(self, node: int) -> CostVector:
        if len(self._targets) == 1:
            return self._index.lower_bound(node, self._targets[0])
        return self._index.lower_bound_to_any(node, self._targets)
