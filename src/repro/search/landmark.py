"""Landmark (ALT-style) lower bounds for multi-cost graphs [28].

A landmark index pre-computes, for a handful of landmark nodes, the
per-dimension shortest distances to every node.  The triangle
inequality then yields a per-dimension lower bound between any two
nodes::

    d_i(u, v) >= max_l |dist_i(l, u) - dist_i(l, v)|

The paper builds this index over the most abstracted graph G_L and uses
it inside BBS/m_BBS to prune partial paths whose optimistic completion
is already dominated.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import BuildError, NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.paths.dominance import CostVector
from repro.search.dijkstra import shortest_costs

_INF = float("inf")


def select_landmarks(
    graph: MultiCostGraph, count: int, *, dim_index: int = 0
) -> list[int]:
    """Pick landmarks by the farthest-point heuristic on one dimension.

    The first landmark is the node farthest from an arbitrary start;
    each subsequent landmark maximizes the minimum distance to the
    landmarks chosen so far.  This spreads landmarks to the periphery,
    which is where they yield the tightest triangle bounds.
    """
    if graph.num_nodes == 0:
        raise BuildError("cannot select landmarks from an empty graph")
    count = min(count, graph.num_nodes)
    start = next(iter(graph.nodes()))
    dist = shortest_costs(graph, start, dim_index)
    first = max(dist, key=dist.__getitem__)
    landmarks = [first]
    min_dist = dict(shortest_costs(graph, first, dim_index))
    while len(landmarks) < count:
        candidates = {
            node: d for node, d in min_dist.items() if node not in landmarks
        }
        if not candidates:
            break
        nxt = max(candidates, key=candidates.__getitem__)
        landmarks.append(nxt)
        for node, d in shortest_costs(graph, nxt, dim_index).items():
            if d < min_dist.get(node, _INF):
                min_dist[node] = d
    return landmarks


class LandmarkIndex:
    """Per-dimension landmark distances with triangle lower bounds.

    Parameters
    ----------
    graph:
        The graph to index (typically the most abstracted graph G_L).
    count:
        Number of landmarks.  A handful (4-16) suffices for the small
        abstracted graphs the backbone index produces.
    """

    def __init__(
        self,
        graph: MultiCostGraph,
        count: int = 8,
        *,
        tracer: Tracer | None = None,
        csr: object | None = None,
    ) -> None:
        if count < 1:
            raise BuildError(f"landmark count must be >= 1, got {count}")
        self._dim = graph.dim
        tracer = resolve_tracer(tracer)
        with tracer.span(
            "landmark.build", requested=count, nodes=graph.num_nodes
        ) as span:
            with tracer.span("landmark.select"):
                self._landmarks = select_landmarks(graph, count)
            # _dist[l][i][node] = per-dimension distances from landmark l
            with tracer.span("landmark.distances"):
                if csr is not None:
                    self._dist = _distances_via_csr(csr, self._landmarks)
                else:
                    self._dist: list[list[dict[int, float]]] = [
                        [
                            shortest_costs(graph, landmark, i)
                            for i in range(graph.dim)
                        ]
                        for landmark in self._landmarks
                    ]
            if span.enabled:
                span.set(
                    landmarks=len(self._landmarks),
                    entries=self.size_entries(),
                    csr_backed=csr is not None,
                )

    @classmethod
    def from_tables(
        cls,
        dim: int,
        landmarks: Sequence[int],
        tables: list[list[dict[int, float]]],
    ) -> "LandmarkIndex":
        """Restore an index from persisted distance tables.

        No graph and no Dijkstra: the tables are installed exactly as
        given, so the restored bounds are bit-identical to the saved
        index's.  This is the warm-start path used by
        :mod:`repro.store`.
        """
        if len(tables) != len(landmarks):
            raise BuildError(
                f"landmark table count {len(tables)} != "
                f"landmark count {len(landmarks)}"
            )
        for per_landmark in tables:
            if len(per_landmark) != dim:
                raise BuildError(
                    f"landmark tables carry {len(per_landmark)} dimensions, "
                    f"expected {dim}"
                )
        index = cls.__new__(cls)
        index._dim = dim
        index._landmarks = list(landmarks)
        index._dist = tables
        return index

    @property
    def landmarks(self) -> list[int]:
        """The selected landmark node ids."""
        return list(self._landmarks)

    def distance_tables(self) -> list[list[dict[int, float]]]:
        """The raw per-landmark, per-dimension distance tables.

        ``tables[l][i]`` maps node -> distance in dimension ``i`` from
        landmark ``l`` (aligned with :attr:`landmarks`).  Exposed for
        serialization; treat as read-only.
        """
        return self._dist

    @property
    def dim(self) -> int:
        """Number of cost dimensions covered."""
        return self._dim

    def lower_bound(self, u: int, v: int) -> CostVector:
        """Per-dimension lower bound on the cost of any u-v path."""
        if u == v:
            return (0.0,) * self._dim
        bound = [0.0] * self._dim
        for tables in self._dist:
            for i in range(self._dim):
                table = tables[i]
                du = table.get(u)
                dv = table.get(v)
                if du is None or dv is None:
                    continue
                estimate = abs(du - dv)
                if estimate > bound[i]:
                    bound[i] = estimate
        return tuple(bound)

    def lower_bound_to_any(self, u: int, targets: Sequence[int]) -> CostVector:
        """Per-dimension lower bound from ``u`` to its *nearest* target.

        This is the optimistic bound m_BBS needs: a partial path may
        still end at whichever target is cheapest, so each dimension
        takes the minimum bound over all targets.
        """
        if not targets:
            raise NodeNotFoundError("<empty target set>")
        bound = [
            _INF,
        ] * self._dim
        for target in targets:
            candidate = self.lower_bound(u, target)
            for i in range(self._dim):
                if candidate[i] < bound[i]:
                    bound[i] = candidate[i]
        return tuple(0.0 if b is _INF else b for b in bound)

    def to_arrays(self, node_order: Sequence[int]) -> "object":
        """The distance tables as one ``(L, dim, n)`` float64 array.

        ``node_order`` fixes the third axis (typically
        ``CSRSnapshot.node_ids``); missing entries become ``inf``.  The
        stored floats are copied verbatim, so array-backed bounds see
        exactly the values the dict lookups would.
        """
        import numpy as np

        node_list = [int(node) for node in node_order]
        out = np.full(
            (len(self._landmarks), self._dim, len(node_list)),
            _INF,
            dtype=np.float64,
        )
        for li, tables in enumerate(self._dist):
            for i, table in enumerate(tables):
                row = out[li, i]
                for j, node in enumerate(node_list):
                    dist = table.get(node)
                    if dist is not None:
                        row[j] = dist
        return out

    def size_entries(self) -> int:
        """Number of stored (landmark, dimension, node) distance entries."""
        return sum(len(table) for tables in self._dist for table in tables)


def _distances_via_csr(
    csr: object, landmarks: Sequence[int]
) -> list[list[dict[int, float]]]:
    """Landmark distance tables computed over a CSR snapshot.

    Bit-identical to the dict Dijkstra (distance values are
    accumulation-order-deterministic); unreachable nodes are dropped
    from the tables just like ``shortest_costs`` omits them.
    """
    from repro.accel.bounds import csr_shortest_costs

    node_ids = csr.node_ids.tolist()
    tables: list[list[dict[int, float]]] = []
    for landmark in landmarks:
        dense = csr.dense_of(landmark)
        per_dim: list[dict[int, float]] = []
        for i in range(csr.dim):
            dist = csr_shortest_costs(csr, [dense], i)
            per_dim.append(
                {
                    node: d
                    for node, d in zip(node_ids, dist)
                    if d != _INF
                }
            )
        tables.append(per_dim)
    return tables

