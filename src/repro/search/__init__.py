"""Exact search algorithms: Dijkstra, landmarks, BBS, m_BBS, one-to-all."""

from repro.search.astar import astar_path, euclidean_heuristic, landmark_heuristic
from repro.search.bbs import (
    SearchStats,
    SkylineResult,
    brute_force_skyline,
    skyline_paths,
)
from repro.search.bounds import (
    ExactBounds,
    LandmarkLowerBounds,
    LowerBoundProvider,
    ZeroBounds,
)
from repro.search.dijkstra import (
    path_hops,
    per_dimension_shortest_paths,
    shortest_costs,
    shortest_path,
)
from repro.search.landmark import LandmarkIndex, select_landmarks
from repro.search.mbbs import ManyToManyResult, Seed, many_to_many_skyline
from repro.search.onetoall import one_to_all_skyline

__all__ = [
    "ExactBounds",
    "LandmarkIndex",
    "LandmarkLowerBounds",
    "LowerBoundProvider",
    "ManyToManyResult",
    "SearchStats",
    "Seed",
    "SkylineResult",
    "ZeroBounds",
    "astar_path",
    "euclidean_heuristic",
    "brute_force_skyline",
    "landmark_heuristic",
    "many_to_many_skyline",
    "one_to_all_skyline",
    "path_hops",
    "per_dimension_shortest_paths",
    "select_landmarks",
    "shortest_costs",
    "shortest_path",
    "skyline_paths",
]
