"""Bucket-vectorized one-to-all skyline search over CSR snapshots.

The construction-side counterpart of :mod:`repro.accel.batch_kernel`:
one label-correcting search from a single source to every reachable
node, organized around the same cost-ordered bucket pipeline — pop the
``bucket_size`` smallest-key labels, gather all their out-slots with
one fancy-indexed pass, and resolve frontier admission with numpy
dominance masks instead of per-label python scans.

Two tiers live in this module, selected by ``bucket_size``:

* ``bucket_size=None`` — the *flat* scalar loop over the CSR python
  list mirrors.  Bit-identical to
  :func:`repro.search.onetoall.one_to_all_skyline` (same expansion
  order, same heap tie-breaking, same result iteration order); only
  the constant factors change.  The backbone builder pins this tier
  for cluster-label construction so a flat-pipeline build serves
  bit-identical answers to a scalar build.
* ``bucket_size=K`` — the bucket-mode numpy tier.  Answer-set-equal to
  the scalar engines (one-to-all has no bounds and no result-set
  pruning, so admission decisions evolve identically; equal-cost
  alternate *witness paths* and all counters are free to differ — the
  same contract as the batch query kernels).  Graphs below
  ``scalar_crossover`` nodes fall back to the flat loop, where the
  per-bucket numpy dispatch overhead exceeds the work it vectorizes.

``max_frontier`` caps are honored on both tiers, but a binding cap is
an order-dependent under-approximation (as documented on the scalar
search), so capped runs may keep different label subsets per tier.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Iterable

import numpy as np

from repro.accel.batch_kernel import (
    DEFAULT_BUCKET_SIZE,
    _BatchFrontier,
    _bucket_candidates,
    _FrontierBatch,
    _intra_bucket_reject,
    _to_original_path,
)
from repro.accel.csr import CSRSnapshot
from repro.errors import NodeNotFoundError
from repro.paths.dominance import dominates, dominates_or_equal
from repro.paths.path import Path
from repro.search.labels import Label, NodeFrontier

# Below this many nodes one bucket rarely fills and every numpy pass
# runs at dispatch-overhead grain; the flat scalar loop wins (measured
# on cluster-restricted subgraphs, see docs/acceleration.md).
ONETOALL_SCALAR_CROSSOVER = 96


def flat_one_to_all(
    snapshot: CSRSnapshot,
    source: int,
    *,
    targets: Iterable[int] | None = None,
    max_frontier: int | None = None,
    time_budget: float | None = None,
    stats=None,
    bucket_size: int | None = DEFAULT_BUCKET_SIZE,
    scalar_crossover: int = ONETOALL_SCALAR_CROSSOVER,
) -> dict[int, list[Path]]:
    """One-to-all skyline paths over a snapshot (see module docstring).

    ``source``/``targets`` are original node ids; the result maps
    original node ids to skyline paths exactly like
    :func:`repro.search.onetoall.one_to_all_skyline`.  ``stats``, when
    given, is a :class:`repro.search.bbs.SearchStats` filled in place.
    """
    from repro.search.bbs import SearchStats

    if stats is None:
        stats = SearchStats()
    start_time = time.perf_counter()
    src = snapshot.dense_of(source)
    wanted = set(targets) if targets is not None else None
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return {}
    if bucket_size is None or snapshot.num_nodes < scalar_crossover:
        result = _scalar_one_to_all(
            snapshot, src, wanted, max_frontier, time_budget, stats, start_time
        )
    else:
        result = _bucket_one_to_all(
            snapshot,
            src,
            wanted,
            max_frontier,
            time_budget,
            stats,
            start_time,
            bucket_size,
        )
    stats.elapsed_seconds = time.perf_counter() - start_time
    return result


def flat_label_rows(
    snapshot: CSRSnapshot,
    cluster_nodes: set[int],
    entrances: Iterable[int],
    max_frontier: int | None = None,
) -> list[tuple[int, int, Path]]:
    """All cluster-label rows for one condensed cluster, fused.

    Runs the flat tier once per entrance (in sorted order) over one
    shared snapshot and emits ``(node, entrance, path)`` rows with the
    path already reversed into label orientation (node -> entrance).
    Row content and order are bit-identical to calling
    :func:`flat_one_to_all` per entrance with ``bucket_size=None`` and
    reversing each returned path — this is the same search with the
    per-call scaffolding (stats, budget checks, forward-path
    materialization) stripped out and the dominance tests specialized
    by dimension.  Entrances missing from the snapshot are skipped,
    mirroring the scalar pipeline's ``has_node`` guard.
    """
    indptr, indices = snapshot.adjacency_lists()
    cost_rows = snapshot.cost_tuples()
    node_ids = snapshot.node_ids.tolist()
    n = snapshot.num_nodes
    dim = snapshot.dim
    heappush, heappop = heapq.heappush, heapq.heappop
    rows: list[tuple[int, int, Path]] = []

    for entrance in sorted(entrances):
        try:
            src = snapshot.dense_of(entrance)
        except NodeNotFoundError:
            continue
        # Per-node frontier = plain list of current cost tuples; the
        # admission/eviction discipline is NodeFrontier.try_add verbatim.
        fronts: list[list[tuple[float, ...]] | None] = [None] * n
        best: dict[int, list[tuple]] = {}
        heap: list[tuple[float, int, tuple]] = []
        tie = 0

        root_front = fronts[src] = []
        if max_frontier is None or len(root_front) < max_frontier:
            root_cost = (0.0,) * dim
            root_front.append(root_cost)
            heap.append((0.0, tie, (src, root_cost, None)))
            tie += 1

        while heap:
            _, _, label = heappop(heap)
            node = label[0]
            cost = label[1]
            fcosts = fronts[node]
            if cost not in fcosts:
                continue
            kept = best.get(node)
            if kept is None:
                kept = best[node] = []
            elif kept:
                kept[:] = [old for old in kept if old[1] in fcosts]
            kept.append(label)
            if dim == 3:
                c0, c1, c2 = cost
                for k in range(indptr[node], indptr[node + 1]):
                    w = cost_rows[k]
                    e0 = c0 + w[0]
                    e1 = c1 + w[1]
                    e2 = c2 + w[2]
                    neighbor = indices[k]
                    nf = fronts[neighbor]
                    if nf is None:
                        nf = fronts[neighbor] = []
                    if max_frontier is not None and len(nf) >= max_frontier:
                        continue
                    rejected = False
                    for kc in nf:
                        if kc[0] <= e0 and kc[1] <= e1 and kc[2] <= e2:
                            rejected = True
                            break
                    if rejected:
                        continue
                    ext = (e0, e1, e2)
                    if nf:
                        nf[:] = [
                            kc
                            for kc in nf
                            if not (
                                e0 <= kc[0]
                                and e1 <= kc[1]
                                and e2 <= kc[2]
                                and (e0 < kc[0] or e1 < kc[1] or e2 < kc[2])
                            )
                        ]
                    nf.append(ext)
                    heappush(heap, (e0 + e1 + e2, tie, (neighbor, ext, label)))
                    tie += 1
            elif dim == 2:
                c0, c1 = cost
                for k in range(indptr[node], indptr[node + 1]):
                    w = cost_rows[k]
                    e0 = c0 + w[0]
                    e1 = c1 + w[1]
                    neighbor = indices[k]
                    nf = fronts[neighbor]
                    if nf is None:
                        nf = fronts[neighbor] = []
                    if max_frontier is not None and len(nf) >= max_frontier:
                        continue
                    rejected = False
                    for kc in nf:
                        if kc[0] <= e0 and kc[1] <= e1:
                            rejected = True
                            break
                    if rejected:
                        continue
                    ext = (e0, e1)
                    if nf:
                        nf[:] = [
                            kc
                            for kc in nf
                            if not (
                                e0 <= kc[0]
                                and e1 <= kc[1]
                                and (e0 < kc[0] or e1 < kc[1])
                            )
                        ]
                    nf.append(ext)
                    heappush(heap, (e0 + e1, tie, (neighbor, ext, label)))
                    tie += 1
            else:
                for k in range(indptr[node], indptr[node + 1]):
                    ext = tuple(c + w for c, w in zip(cost, cost_rows[k]))
                    neighbor = indices[k]
                    nf = fronts[neighbor]
                    if nf is None:
                        nf = fronts[neighbor] = []
                    if max_frontier is not None and len(nf) >= max_frontier:
                        continue
                    if any(dominates_or_equal(kc, ext) for kc in nf):
                        continue
                    if nf:
                        nf[:] = [kc for kc in nf if not dominates(ext, kc)]
                    nf.append(ext)
                    heappush(heap, (sum(ext), tie, (neighbor, ext, label)))
                    tie += 1

        for node, labels in best.items():
            original = node_ids[node]
            if original == entrance or original not in cluster_nodes:
                continue
            fcosts = fronts[node]
            for label in labels:
                cost = label[1]
                if cost not in fcosts:
                    continue
                chain: list[int] = []
                cursor = label
                while cursor is not None:
                    chain.append(node_ids[cursor[0]])
                    cursor = cursor[2]
                rows.append((original, entrance, Path(chain, cost)))
    return rows


def _collect_results(
    best_labels: dict[int, list[Label]],
    frontiers: list,
    node_ids: list[int],
    wanted: set[int] | None,
) -> dict[int, list[Path]]:
    """Materialize surviving labels, preserving first-pop node order."""
    result: dict[int, list[Path]] = {}
    for node, labels in best_labels.items():
        original = node_ids[node]
        if wanted is not None and original not in wanted:
            continue
        frontier = frontiers[node]
        paths = [
            _to_original_path(label, node_ids)
            for label in labels
            if frontier.is_current(label.cost)
        ]
        if paths:
            result[original] = paths
    return result


def _scalar_one_to_all(
    snapshot: CSRSnapshot,
    src: int,
    wanted: set[int] | None,
    max_frontier: int | None,
    time_budget: float | None,
    stats,
    start_time: float,
) -> dict[int, list[Path]]:
    """The flat tier: the reference loop over CSR list mirrors.

    Statement-for-statement the same search as the python engine — CSR
    slot order equals ``sorted_neighbors`` × canonical parallel-cost
    order, so pushes, tie-breaker draws, and therefore every answer
    and witness are bit-identical.
    """
    indptr, indices = snapshot.adjacency_lists()
    cost_rows = snapshot.cost_tuples()
    node_ids = snapshot.node_ids.tolist()

    frontiers: list[NodeFrontier | None] = [None] * snapshot.num_nodes
    best_labels: dict[int, list[Label]] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push(label: Label) -> None:
        frontier = frontiers[label.node]
        if frontier is None:
            frontier = frontiers[label.node] = NodeFrontier()
        if max_frontier is not None and len(frontier) >= max_frontier:
            return
        if not frontier.try_add(label.cost):
            stats.pruned_by_frontier += 1
            return
        stats.pushes += 1
        heapq.heappush(heap, (sum(label.cost), next(tie_breaker), label))

    push(Label(src, (0.0,) * snapshot.dim))

    loop_count = 0
    while heap:
        if (
            time_budget is not None
            and loop_count & 511 == 0
            and time.perf_counter() - start_time > time_budget
        ):
            stats.timed_out = True
            break
        loop_count += 1
        _, _, label = heapq.heappop(heap)
        frontier = frontiers[label.node]
        if not frontier.is_current(label.cost):
            continue
        stats.expansions += 1
        kept = best_labels.setdefault(label.node, [])
        kept[:] = [old for old in kept if frontier.is_current(old.cost)]
        kept.append(label)
        cost = label.cost
        for k in range(indptr[label.node], indptr[label.node + 1]):
            extended = tuple(c + w for c, w in zip(cost, cost_rows[k]))
            push(Label(indices[k], extended, parent=label))
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    stats.frontier_nodes = sum(1 for f in frontiers if f is not None)
    return _collect_results(best_labels, frontiers, node_ids, wanted)


def _bucket_one_to_all(
    snapshot: CSRSnapshot,
    src: int,
    wanted: set[int] | None,
    max_frontier: int | None,
    time_budget: float | None,
    stats,
    start_time: float,
    bucket_size: int,
) -> dict[int, list[Path]]:
    """The bucket tier: numpy dominance masks, answer-set-equal."""
    dim = snapshot.dim
    n = snapshot.num_nodes
    indptr = snapshot.indptr.astype(np.int64, copy=False)
    indices = snapshot.indices.astype(np.int64, copy=False)
    cost_mat = snapshot.costs
    node_ids = snapshot.node_ids.tolist()

    frontiers: list[_BatchFrontier | None] = [None] * n
    best_labels: dict[int, list[Label]] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    root = Label(src, (0.0,) * dim)
    root_front = frontiers[src] = _BatchFrontier(dim)
    root_front.try_add(root.cost)
    stats.pushes += 1
    heapq.heappush(heap, (0.0, next(tie_breaker), root))
    stats.max_heap_size = max(stats.max_heap_size, 1)

    while heap:
        if time_budget is not None and (
            time.perf_counter() - start_time > time_budget
        ):
            stats.timed_out = True
            break

        bucket: list[Label] = []
        while heap and len(bucket) < bucket_size:
            _, _, label = heapq.heappop(heap)
            if frontiers[label.node].is_current(label.cost):
                bucket.append(label)
        if not bucket:
            continue
        stats.expansions += len(bucket)

        # Every current popped label is (for now) a skyline answer at
        # its node — same refresh bookkeeping as the scalar loop.
        for label in bucket:
            front = frontiers[label.node]
            kept = best_labels.setdefault(label.node, [])
            kept[:] = [old for old in kept if front.is_current(old.cost)]
            kept.append(label)

        nodes = np.fromiter(
            (label.node for label in bucket), dtype=np.int64, count=len(bucket)
        )
        costs = np.array([label.cost for label in bucket], dtype=np.float64)
        label_of, slots, cand_nodes = _bucket_candidates(indptr, indices, nodes)
        if not len(slots):
            continue
        extended = costs[label_of] + cost_mat[slots]

        batch_front = _FrontierBatch(frontiers, cand_nodes, dim)
        reject = batch_front.reject_mask(extended)
        reject |= _intra_bucket_reject(cand_nodes, extended)
        stats.pruned_by_frontier += int(reject.sum())
        keep_pos = np.nonzero(~reject)[0]
        if not len(keep_pos):
            continue

        keys = extended[keep_pos].sum(axis=1)
        ext_rows = extended[keep_pos].tolist()
        parents = label_of[keep_pos]
        for row, key, parent_i, neighbor in zip(
            ext_rows,
            keys.tolist(),
            parents.tolist(),
            cand_nodes[keep_pos].tolist(),
        ):
            ext = tuple(row)
            front = frontiers[neighbor]
            if front is None:
                front = frontiers[neighbor] = _BatchFrontier(dim)
            if max_frontier is not None and len(front.current) >= max_frontier:
                stats.pruned_by_frontier += 1
                continue
            front.append(ext)
            stats.pushes += 1
            heapq.heappush(
                heap,
                (key, next(tie_breaker), Label(neighbor, ext, parent=bucket[parent_i])),
            )
        batch_front.evict_dominated(keep_pos, extended[keep_pos])
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    stats.frontier_nodes = sum(1 for f in frontiers if f is not None)
    return _collect_results(best_labels, frontiers, node_ids, wanted)
