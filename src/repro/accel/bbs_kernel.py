"""Flat BBS / m_BBS hot loops over CSR snapshots.

These kernels re-run the exact label-setting searches of
:mod:`repro.search.bbs` and :mod:`repro.search.mbbs` with the dict
machinery swapped for flat, slot-indexed state:

* neighbor iteration walks CSR slot ranges — one list index per slot
  replaces the adjacency-dict and parallel-edge-dict lookups;
* lower bounds come from a dense ``(n, dim)`` matrix built once per
  search (:mod:`repro.accel.bounds`, array Dijkstra) and flattened to
  per-node tuples, so the two bound probes per label (push and pop)
  are list indexing instead of per-dimension dict probes;
* the result-set dominance prune runs as an inlined early-exit loop
  with a 2-D fast path, and labels are only allocated for candidates
  that survive every prune.

NumPy is deliberately kept *out* of the per-expansion path: road
networks average 2–3 outgoing slots per node, and dispatching array
operations on batches that small costs more than the python loop it
replaces (measured on the benchmark workloads).  The arrays earn their
keep building the bound matrices and landmark tables, where the batch
is the whole node set.

Bit-identity with the python engines is a hard requirement (enforced by
``repro.qa`` and the property tests): candidate costs are produced by
the same IEEE additions in the same association order, heap keys use the
builtin left-to-right ``sum``, and push order matches because both
engines expand neighbors in ascending id order with parallel slots in
the graph's canonical cost order.  Identical push order means identical
tie-breaker sequences, so even equal-cost label races resolve the same
way.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Sequence

from repro.accel.bounds import exact_bound_matrix, materialize_bound_matrix
from repro.accel.csr import CSRSnapshot
from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import dominates_or_equal
from repro.paths.frontier import ParetoSet, PathSet
from repro.paths.path import Path
from repro.search.bounds import LowerBoundProvider
from repro.search.dijkstra import per_dimension_shortest_paths
from repro.search.labels import Label, NodeFrontier

_INF = float("inf")


def _bound_rows(bound_mat) -> list[tuple[float, ...]]:
    """Flatten a dense bound matrix into per-node python tuples."""
    return [tuple(row) for row in bound_mat.tolist()]


def _to_original_path(label: Label, node_ids: list[int]) -> Path:
    """Materialize a dense-id label chain as an original-id path."""
    nodes = []
    walker: Label | None = label
    while walker is not None:
        nodes.append(node_ids[walker.node])
        walker = walker.parent
    nodes.reverse()
    return Path(nodes, label.cost)


def flat_skyline_paths(
    graph: MultiCostGraph,
    snapshot: CSRSnapshot,
    source: int,
    target: int,
    *,
    bounds: LowerBoundProvider | None = None,
    seed_with_shortest_paths: bool = True,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    node_mask: Sequence[bool] | None = None,
    seed_paths=None,
):
    """Exact BBS over the snapshot; mirrors ``_skyline_paths_impl``.

    The caller (:func:`repro.search.bbs.skyline_paths`) has already
    validated the endpoints and handled the trivial ``source == target``
    case; ``graph`` is only consulted for result seeding.  ``node_mask``
    is a dense boolean restriction over the snapshot's node space
    (corridor search); masked-out neighbors are skipped before any cost
    arithmetic — the same point the python engine applies its
    membership check — so restricted runs stay bit-identical.
    """
    from repro.search.bbs import SearchStats, SkylineResult

    start_time = time.perf_counter()
    stats = SearchStats()
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return SkylineResult(stats=stats)

    dim = snapshot.dim
    src = snapshot.dense_of(source)
    dst = snapshot.dense_of(target)
    if bounds is None:
        bound_rows = _bound_rows(exact_bound_matrix(snapshot, [dst]))
    else:
        bound_rows = _bound_rows(materialize_bound_matrix(bounds, snapshot))

    results = PathSet()
    if seed_with_shortest_paths:
        results.add_all(per_dimension_shortest_paths(graph, source, target))
    if seed_paths is not None:
        results.add_all(seed_paths)
    res_costs = results.costs()
    two_d = dim == 2
    three_d = dim == 3

    def res_dominates(projected: tuple[float, ...]) -> bool:
        # Same predicate as PathSet.dominates_candidate, inlined with
        # early-exit loops for the common road-network dimensionalities.
        if two_d:
            p0, p1 = projected
            for kept in res_costs:
                if kept[0] <= p0 and kept[1] <= p1:
                    return True
            return False
        if three_d:
            p0, p1, p2 = projected
            for kept in res_costs:
                if kept[0] <= p0 and kept[1] <= p1 and kept[2] <= p2:
                    return True
            return False
        return any(dominates_or_equal(kept, projected) for kept in res_costs)

    indptr, indices_list = snapshot.adjacency_lists()
    cost_tuples = snapshot.cost_tuples()
    node_ids = snapshot.node_ids.tolist()

    frontiers: dict[int, NodeFrontier] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    # Source push (scalar mirror of the python push()).
    source_label = Label(src, (0.0,) * dim)
    source_projected = tuple(
        c + b for c, b in zip(source_label.cost, bound_rows[src])
    )
    if _INF in source_projected:
        stats.pruned_by_bound += 1
    else:
        stats.dominance_checks += 1
        if res_dominates(source_projected):
            stats.pruned_by_result += 1
        else:
            frontier = frontiers[src] = NodeFrontier()
            frontier.try_add(source_label.cost)
            stats.pushes += 1
            heapq.heappush(
                heap, (sum(source_projected), next(tie_breaker), source_label)
            )
            stats.max_heap_size = 1

    # Monotone loop counter for the budget gate: gating on
    # ``stats.expansions`` starves the check across long runs of stale
    # or pruned pops (they never increment expansions).  Mirrors the
    # python engine; overshoot is bounded to 512 heap pops.
    loop_count = 0
    while heap:
        if loop_count & 511 == 0:
            if time_budget is not None and (
                time.perf_counter() - start_time > time_budget
            ):
                stats.timed_out = True
                break
        loop_count += 1
        if max_expansions is not None and stats.expansions >= max_expansions:
            stats.timed_out = True
            break

        _, _, label = heapq.heappop(heap)
        node = label.node
        if not frontiers[node].is_current(label.cost):
            continue  # evicted since push: stale heap entry
        lcost = label.cost
        brow = bound_rows[node]
        if two_d:
            projected = (lcost[0] + brow[0], lcost[1] + brow[1])
        elif three_d:
            projected = (
                lcost[0] + brow[0], lcost[1] + brow[1], lcost[2] + brow[2]
            )
        else:
            projected = tuple(c + b for c, b in zip(lcost, brow))
        stats.dominance_checks += 1
        if res_dominates(projected):
            stats.pruned_by_result += 1
            continue
        stats.expansions += 1

        if node == dst:
            if results.add(_to_original_path(label, node_ids)):
                res_costs = results.costs()
            continue

        for slot in range(indptr[node], indptr[node + 1]):
            neighbor = indices_list[slot]
            if node_mask is not None and not node_mask[neighbor]:
                stats.pruned_by_corridor += 1
                continue
            w = cost_tuples[slot]
            brow = bound_rows[neighbor]
            # Same association order as the python engine: extend first,
            # then add the bound — (c + w) + b, bit for bit.
            if two_d:
                extended = (lcost[0] + w[0], lcost[1] + w[1])
                projected = (extended[0] + brow[0], extended[1] + brow[1])
            elif three_d:
                extended = (lcost[0] + w[0], lcost[1] + w[1], lcost[2] + w[2])
                projected = (
                    extended[0] + brow[0],
                    extended[1] + brow[1],
                    extended[2] + brow[2],
                )
            else:
                extended = tuple(c + e for c, e in zip(lcost, w))
                projected = tuple(c + b for c, b in zip(extended, brow))
            if _INF in projected:
                stats.pruned_by_bound += 1
                continue
            stats.dominance_checks += 1
            if res_dominates(projected):
                stats.pruned_by_result += 1
                continue
            frontier = frontiers.get(neighbor)
            if frontier is None:
                frontier = frontiers[neighbor] = NodeFrontier()
            if not frontier.try_add(extended):
                stats.pruned_by_frontier += 1
                continue
            stats.pushes += 1
            heapq.heappush(
                heap,
                (
                    sum(projected),
                    next(tie_breaker),
                    Label(neighbor, extended, parent=label),
                ),
            )
            if len(heap) > stats.max_heap_size:
                stats.max_heap_size = len(heap)

    stats.elapsed_seconds = time.perf_counter() - start_time
    stats.frontier_nodes = len(frontiers)
    return SkylineResult(paths=results.paths(), stats=stats)


def flat_many_to_many(
    graph: MultiCostGraph,
    snapshot: CSRSnapshot,
    seeds: Sequence,
    targets: Sequence[int],
    *,
    bounds: LowerBoundProvider | None = None,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    node_mask: Sequence[bool] | None = None,
):
    """m_BBS over the snapshot; mirrors ``_many_to_many_impl``.

    ``node_mask`` restricts expansion exactly as in
    :func:`flat_skyline_paths`.
    """
    from repro.search.bbs import SearchStats
    from repro.search.mbbs import ManyToManyResult, Seed

    target_set = set(targets)
    for node in target_set:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)

    start_time = time.perf_counter()
    stats = SearchStats()
    result = ManyToManyResult(stats=stats)
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return result

    dim = snapshot.dim
    if bounds is None:
        # Mirrors ZeroBounds: the addition still runs so projected costs
        # match the python engine bit for bit.
        bound_rows: list = [(0.0,) * dim] * snapshot.num_nodes
        bound_provider = None
    else:
        # m_BBS searches on G_L touch a small slice of the node set but
        # aim at many targets, so dense up-front materialization loses;
        # rows fault in per node through the provider instead — the
        # exact tuples the python engine sees, computed once per node
        # rather than once per push.
        bound_rows = [None] * snapshot.num_nodes
        bound_provider = bounds

    indptr, indices_list = snapshot.adjacency_lists()
    cost_tuples = snapshot.cost_tuples()
    node_ids = snapshot.node_ids.tolist()
    dense_targets = {snapshot.dense_of(node) for node in target_set}
    two_d = dim == 2
    three_d = dim == 3

    frontiers: dict[int, NodeFrontier] = {}
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push_scalar(label: Label) -> None:
        brow = bound_rows[label.node]
        if brow is None:
            brow = bound_rows[label.node] = tuple(
                bound_provider.bound(node_ids[label.node])
            )
        projected = tuple(c + b for c, b in zip(label.cost, brow))
        if _INF in projected:
            stats.pruned_by_bound += 1
            return
        frontier = frontiers.get(label.node)
        if frontier is None:
            frontier = frontiers[label.node] = NodeFrontier()
        if not frontier.try_add(label.cost):
            stats.pruned_by_frontier += 1
            return
        stats.pushes += 1
        heapq.heappush(heap, (sum(projected), next(tie_breaker), label))
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    for seed in seeds:
        if not graph.has_node(seed.node):
            raise NodeNotFoundError(seed.node)
        push_scalar(Label(snapshot.dense_of(seed.node), tuple(seed.cost), seed=seed))

    # Monotone loop counter for the budget gate (see flat_skyline_paths).
    loop_count = 0
    while heap:
        if time_budget is not None and loop_count & 511 == 0:
            if time.perf_counter() - start_time > time_budget:
                stats.timed_out = True
                break
        loop_count += 1
        if max_expansions is not None and stats.expansions >= max_expansions:
            stats.timed_out = True
            break

        _, _, label = heapq.heappop(heap)
        node = label.node
        if not frontiers[node].is_current(label.cost):
            continue
        stats.expansions += 1

        if node in dense_targets:
            seed: Seed = label.seed  # type: ignore[assignment]
            original = node_ids[node]
            hits = result.hits.get(original)
            if hits is None:
                hits = result.hits[original] = ParetoSet(keep_equal_costs=True)
            hits.add(
                label.cost,
                (seed.payload, _label_to_local_path(label, seed, node_ids)),
            )
            # Targets are ordinary nodes; keep expanding through them.

        lcost = label.cost
        for slot in range(indptr[node], indptr[node + 1]):
            neighbor = indices_list[slot]
            if node_mask is not None and not node_mask[neighbor]:
                stats.pruned_by_corridor += 1
                continue
            w = cost_tuples[slot]
            brow = bound_rows[neighbor]
            if brow is None:
                brow = bound_rows[neighbor] = tuple(
                    bound_provider.bound(node_ids[neighbor])
                )
            if two_d:
                extended = (lcost[0] + w[0], lcost[1] + w[1])
                projected = (extended[0] + brow[0], extended[1] + brow[1])
            elif three_d:
                extended = (lcost[0] + w[0], lcost[1] + w[1], lcost[2] + w[2])
                projected = (
                    extended[0] + brow[0],
                    extended[1] + brow[1],
                    extended[2] + brow[2],
                )
            else:
                extended = tuple(c + e for c, e in zip(lcost, w))
                projected = tuple(c + b for c, b in zip(extended, brow))
            if _INF in projected:
                stats.pruned_by_bound += 1
                continue
            frontier = frontiers.get(neighbor)
            if frontier is None:
                frontier = frontiers[neighbor] = NodeFrontier()
            if not frontier.try_add(extended):
                stats.pruned_by_frontier += 1
                continue
            stats.pushes += 1
            heapq.heappush(
                heap,
                (
                    sum(projected),
                    next(tie_breaker),
                    Label(neighbor, extended, parent=label),
                ),
            )
            if len(heap) > stats.max_heap_size:
                stats.max_heap_size = len(heap)

    stats.elapsed_seconds = time.perf_counter() - start_time
    stats.frontier_nodes = len(frontiers)
    return result


def _label_to_local_path(label: Label, seed, node_ids: list[int]) -> Path:
    """The path through the searched graph only (seed cost stripped)."""
    nodes = []
    walker: Label | None = label
    while walker is not None:
        nodes.append(node_ids[walker.node])
        walker = walker.parent
    nodes.reverse()
    local_cost = tuple(c - s for c, s in zip(label.cost, seed.cost))
    # Guard against float drift producing tiny negative components.
    return Path(nodes, tuple(max(c, 0.0) for c in local_cost))
