"""Dense lower-bound matrices over CSR snapshots.

The python engines probe a :class:`~repro.search.bounds.LowerBoundProvider`
per push; the flat kernel instead materializes one ``(n, dim)`` float64
matrix up front so every bound lookup is an indexed load.  Matrices hold
the exact same values the corresponding providers would return:

* :func:`exact_bound_matrix` runs the per-dimension reverse Dijkstra
  directly over the CSR arrays (multi-source from the target set, which
  equals the per-target minimum), matching
  :class:`~repro.search.bounds.ExactBounds` bit for bit — Dijkstra
  distances are accumulation-order-deterministic and relaxing parallel
  slots independently equals relaxing their per-dimension minimum.
* :func:`landmark_bound_matrix` vectorizes the ALT triangle bound of
  :class:`~repro.search.landmark.LandmarkIndex` (abs/max/min are exact
  IEEE operations, so values again match the dict implementation).
* :func:`materialize_bound_matrix` dispatches any provider, falling back
  to one ``bound()`` probe per node for unknown provider types.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from heapq import heappop, heappush

import numpy as np

from repro.accel.csr import CSRSnapshot
from repro.search.bounds import (
    LandmarkLowerBounds,
    LowerBoundProvider,
    ZeroBounds,
)
from repro.search.landmark import LandmarkIndex

_INF = float("inf")


def csr_shortest_costs(
    snapshot: CSRSnapshot,
    sources: Sequence[int],
    dim_index: int,
    *,
    reverse: bool = False,
) -> list[float]:
    """Single-dimension (multi-source) Dijkstra over the CSR arrays.

    Returns a dense list of distances (``inf`` for unreachable nodes).
    Multi-source start gives the minimum distance from any source, which
    is exactly the per-target minimum a bound provider needs.
    """
    indptr, indices = snapshot.adjacency_lists(reverse=reverse)
    weights = snapshot.weight_lists(reverse=reverse)[dim_index]
    dist = [_INF] * snapshot.num_nodes
    heap: list[tuple[float, int]] = []
    for source in sources:
        if dist[source] > 0.0:
            dist[source] = 0.0
            heappush(heap, (0.0, source))
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for k in range(indptr[u], indptr[u + 1]):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist


def exact_bound_matrix(
    snapshot: CSRSnapshot, dense_targets: Sequence[int]
) -> np.ndarray:
    """Exact reverse-Dijkstra bounds to the nearest target, per dimension."""
    matrix = np.empty((snapshot.num_nodes, snapshot.dim), dtype=np.float64)
    for i in range(snapshot.dim):
        matrix[:, i] = csr_shortest_costs(
            snapshot, dense_targets, i, reverse=True
        )
    return matrix


def landmark_distance_arrays(
    index: LandmarkIndex, snapshot: CSRSnapshot
) -> np.ndarray:
    """The landmark tables as one ``(L, dim, n)`` array (``inf`` = missing)."""
    return index.to_arrays(snapshot.node_ids)


def landmark_bound_matrix(
    index: LandmarkIndex,
    snapshot: CSRSnapshot,
    dense_targets: Sequence[int],
) -> np.ndarray:
    """ALT triangle bounds to the nearest target, per dimension.

    Matches ``LandmarkIndex.lower_bound_to_any`` (and ``lower_bound``
    for a single target): landmarks missing either endpoint contribute
    nothing, a node that *is* a target gets a zero bound.
    """
    n = snapshot.num_nodes
    distances = landmark_distance_arrays(index, snapshot)  # (L, dim, n)
    best = np.full((n, snapshot.dim), _INF, dtype=np.float64)
    finite = np.isfinite(distances)
    for target in dense_targets:
        target_col = distances[:, :, target][:, :, None]  # (L, dim, 1)
        valid = finite & np.isfinite(target_col)
        with np.errstate(invalid="ignore"):
            raw = np.abs(distances - target_col)
        contrib = np.where(valid, raw, 0.0)
        if len(contrib):
            per_target = contrib.max(axis=0)  # (dim, n)
        else:
            per_target = np.zeros((snapshot.dim, n), dtype=np.float64)
        per_target[:, target] = 0.0
        np.minimum(best, per_target.T, out=best)
    # With at least one target every entry is finite; an empty target
    # set is a caller error the python provider also rejects.
    return best


def pareto_prep_bound_matrix(
    snapshot: CSRSnapshot, dense_targets: Sequence[int]
) -> np.ndarray:
    """All-dimension lower bounds in ONE backward pass (ParetoPrep).

    The bound-computation phase of ParetoPrep: a backward
    label-correcting relaxation (SPFA over the reverse adjacency) that
    relaxes every cost dimension jointly while traversing each edge
    once per queue visit, instead of running ``dim`` independent
    reverse Dijkstras.  At the fixpoint each dimension's entry is the
    per-dimension shortest distance to the nearest target — the same
    minimum over left-accumulated path sums Dijkstra converges to, so
    the matrix equals :func:`exact_bound_matrix` bit for bit
    (non-negative weights; both algorithms admit exactly the same set
    of accumulated values and keep the strict minimum).

    Returns an ``(n, dim)`` float64 matrix, ``inf`` for nodes that
    cannot reach any target.
    """
    indptr, indices = snapshot.adjacency_lists(reverse=True)
    weight_lists = snapshot.weight_lists(reverse=True)
    dim = snapshot.dim
    n = snapshot.num_nodes
    dist: list[list[float]] = [[_INF] * dim for _ in range(n)]
    queue: deque[int] = deque()
    queued = [False] * n
    for target in dense_targets:
        row = dist[target]
        for i in range(dim):
            row[i] = 0.0
        if not queued[target]:
            queued[target] = True
            queue.append(target)
    while queue:
        u = queue.popleft()
        queued[u] = False
        du = dist[u]
        for k in range(indptr[u], indptr[u + 1]):
            v = indices[k]
            dv = dist[v]
            improved = False
            for i in range(dim):
                nd = du[i] + weight_lists[i][k]
                if nd < dv[i]:
                    dv[i] = nd
                    improved = True
            if improved and not queued[v]:
                queued[v] = True
                queue.append(v)
    return np.array(dist, dtype=np.float64)


class ParetoPrepBounds:
    """Bound provider backed by :func:`pareto_prep_bound_matrix`.

    Same values as :class:`~repro.search.bounds.ExactBounds` for the
    same target set (exact per-dimension shortest distances), computed
    in one traversal rather than ``dim``.  Carries its snapshot so the
    flat-kernel warm path can hand the matrix over without re-deriving
    it; :meth:`bound` serves the python engines' per-push probes.
    """

    def __init__(self, snapshot: CSRSnapshot, targets: Sequence[int]) -> None:
        self._snapshot = snapshot
        self._targets = list(targets)
        dense_targets = [snapshot.dense_of(t) for t in self._targets]
        self._matrix = pareto_prep_bound_matrix(snapshot, dense_targets)

    @property
    def targets(self) -> list[int]:
        """The target node set the bounds point at."""
        return list(self._targets)

    def matrix_for(self, snapshot: CSRSnapshot) -> np.ndarray:
        """The bound matrix aligned to ``snapshot``'s dense ids."""
        if snapshot is self._snapshot:
            return self._matrix
        dense_targets = [snapshot.dense_of(t) for t in self._targets]
        return pareto_prep_bound_matrix(snapshot, dense_targets)

    def bound(self, node: int) -> tuple[float, ...]:
        return tuple(self._matrix[self._snapshot.dense_of(node)])


def materialize_bound_matrix(
    provider: LowerBoundProvider, snapshot: CSRSnapshot
) -> np.ndarray:
    """One ``(n, dim)`` matrix holding ``provider.bound(node)`` per node."""
    if isinstance(provider, ZeroBounds):
        return np.zeros((snapshot.num_nodes, snapshot.dim), dtype=np.float64)
    if isinstance(provider, ParetoPrepBounds):
        return provider.matrix_for(snapshot)
    if isinstance(provider, LandmarkLowerBounds):
        dense_targets = [snapshot.dense_of(t) for t in provider.targets]
        return landmark_bound_matrix(provider.index, snapshot, dense_targets)
    # ExactBounds and unknown providers: the tables are already paid
    # for, so one bound() probe per node is both cheap and guaranteed
    # to reproduce the provider's values exactly.
    matrix = np.empty((snapshot.num_nodes, snapshot.dim), dtype=np.float64)
    for dense, orig in enumerate(snapshot.node_ids.tolist()):
        matrix[dense] = provider.bound(orig)
    return matrix
