"""A zero-copy codec for named numpy arrays in one contiguous buffer.

The multi-process serving layer needs the flat CSR arrays (and any
other dense matrix) to live in a single shareable buffer — a
``multiprocessing.shared_memory`` segment or an mmap'd store section —
that readers can *attach* to without materializing anything.  This
module defines that layout:

::

    magic 'RABF' | u16 version | u16 reserved | u32 header_len
    header       | UTF-8 JSON: {"meta": {...}, "arrays": [
                 |   {"name", "dtype", "shape", "offset", "nbytes"}, ...]}
    padding      | zeros to the first 8-byte boundary
    blocks       | one little-endian C-contiguous block per array,
                 | each starting on an 8-byte boundary

Offsets are relative to the start of the pack, so the same bytes decode
identically from a ``bytes`` object, a shared-memory buffer, or a
memory-mapped file slice.  :func:`read_pack` hands back numpy views
*into* the supplied buffer — no copies — flagged read-only, because a
pack is by construction shared state.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import BuildError

PACK_MAGIC = b"RABF"
PACK_VERSION = 1

_PREFIX = struct.Struct("<4sHHI")  # magic, version, reserved, header_len


def _pad8(n: int) -> int:
    """Round up to the next multiple of 8."""
    return (n + 7) & ~7


def _le_dtype(array: np.ndarray) -> np.dtype:
    """The array's dtype forced to little-endian byte order."""
    dtype = array.dtype
    if dtype.byteorder == ">":  # pragma: no cover - big-endian hosts only
        return dtype.newbyteorder("<")
    return dtype.newbyteorder("<") if dtype.byteorder != "<" else dtype


def _layout(arrays: dict[str, np.ndarray], meta: dict) -> tuple[bytes, list[int], int]:
    """Compute the serialized header plus per-array offsets and total size."""
    entries = []
    offsets: list[int] = []
    # Two-pass: entry offsets depend on the header length, which depends
    # on the offsets' digit count.  Iterate until the layout fixes.
    header_len = 0
    while True:
        entries = []
        offsets = []
        cursor = _pad8(_PREFIX.size + header_len)
        for name, array in arrays.items():
            offsets.append(cursor)
            entries.append(
                {
                    "name": name,
                    "dtype": _le_dtype(array).str,
                    "shape": list(array.shape),
                    "offset": cursor,
                    "nbytes": int(array.nbytes),
                }
            )
            cursor = _pad8(cursor + array.nbytes)
        header = json.dumps(
            {"meta": meta, "arrays": entries}, sort_keys=True
        ).encode("utf-8")
        if len(header) == header_len:
            return header, offsets, cursor
        header_len = len(header)


def pack_nbytes(arrays: dict[str, np.ndarray], meta: dict | None = None) -> int:
    """The exact byte size :func:`write_pack` needs for these arrays."""
    _header, _offsets, total = _layout(arrays, meta or {})
    return total


def write_pack(
    buffer, arrays: dict[str, np.ndarray], meta: dict | None = None
) -> int:
    """Serialize ``arrays`` into ``buffer`` (writable, large enough).

    Returns the number of bytes written.  Array data is copied exactly
    once — from each source array into its block — which is the one
    unavoidable copy when *publishing* into shared memory; attaching
    back with :func:`read_pack` is copy-free.
    """
    header, offsets, total = _layout(arrays, meta or {})
    view = memoryview(buffer)
    if len(view) < total:
        raise BuildError(
            f"array pack needs {total} bytes, buffer has {len(view)}"
        )
    view[: _PREFIX.size] = _PREFIX.pack(
        PACK_MAGIC, PACK_VERSION, 0, len(header)
    )
    view[_PREFIX.size : _PREFIX.size + len(header)] = header
    # Zero the padding so packs are byte-deterministic.
    pad_start = _PREFIX.size + len(header)
    first_block = _pad8(pad_start)
    view[pad_start:first_block] = b"\x00" * (first_block - pad_start)
    for offset, array in zip(offsets, arrays.values()):
        data = np.ascontiguousarray(array, dtype=_le_dtype(array))
        block = view[offset : offset + data.nbytes]
        block[:] = data.tobytes() if data.nbytes else b""
        tail = view[offset + data.nbytes : _pad8(offset + data.nbytes)]
        if len(tail) and offset + data.nbytes < total:
            tail[:] = b"\x00" * len(tail)
    return total


def pack_bytes(arrays: dict[str, np.ndarray], meta: dict | None = None) -> bytes:
    """Serialize ``arrays`` to a standalone ``bytes`` pack."""
    out = bytearray(pack_nbytes(arrays, meta))
    write_pack(out, arrays, meta)
    return bytes(out)


def read_pack(buffer) -> tuple[dict, dict[str, np.ndarray]]:
    """Decode a pack as ``(meta, arrays)`` of zero-copy read-only views.

    The returned arrays keep the buffer alive through their ``base``
    chain, so callers may drop their own reference to it.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX.size:
        raise BuildError("array pack truncated: no prefix")
    magic, version, _reserved, header_len = _PREFIX.unpack(
        view[: _PREFIX.size]
    )
    if magic != PACK_MAGIC:
        raise BuildError("not an array pack (bad magic)")
    if version != PACK_VERSION:
        raise BuildError(f"unsupported array pack version {version}")
    if _PREFIX.size + header_len > len(view):
        raise BuildError("array pack truncated: header overruns buffer")
    try:
        document = json.loads(
            bytes(view[_PREFIX.size : _PREFIX.size + header_len])
        )
    except json.JSONDecodeError as error:
        raise BuildError(f"array pack header is not valid JSON: {error}") from error
    arrays: dict[str, np.ndarray] = {}
    for entry in document["arrays"]:
        offset, nbytes = entry["offset"], entry["nbytes"]
        if offset + nbytes > len(view):
            raise BuildError(
                f"array pack truncated: block {entry['name']!r} overruns"
            )
        dtype = np.dtype(entry["dtype"])
        count = nbytes // dtype.itemsize if dtype.itemsize else 0
        array = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
        array = array.reshape(entry["shape"])
        if array.flags.writeable:
            array.flags.writeable = False
        arrays[entry["name"]] = array
    return document["meta"], arrays
