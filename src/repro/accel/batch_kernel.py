"""Bucket-mode BBS / m_BBS: numpy-vectorized batch kernels.

The flat kernels of :mod:`repro.accel.bbs_kernel` expand one label at a
time and deliberately keep numpy out of the per-expansion path — at
road-network degrees (2–3 out-slots per node) array dispatch on a
single label loses to plain python.  These kernels change the unit of
work instead: the heap is popped in *buckets* of the ``bucket_size``
smallest-key labels, and everything per-label the flat kernel does in
python runs as a handful of numpy operations over the whole bucket:

* bound projection and result-skyline dominance pruning (one
  broadcasted ``<=`` against the :class:`VectorParetoSet` mirror);
* candidate generation over every out-slot of every popped label
  (the CSR repeat/cumsum gather) plus corridor masking;
* **per-node frontier admission**, the hottest scalar loop of the flat
  kernel: each touched node's Pareto frontier is mirrored as a small
  cost matrix, the matrices of all nodes a bucket touches are
  concatenated once, and one segment-aligned comparison decides every
  candidate's dominated-or-equal rejection in a single pass — followed
  by one deferred, equally vectorized eviction sweep for the rows the
  admitted candidates strictly dominate.

The result skyline lives in two synchronized containers: the
authoritative :class:`~repro.paths.frontier.PathSet` (which keeps
equal-cost alternate paths, as the sequential engines do) and a
:class:`~repro.paths.vector_frontier.VectorParetoSet` mirror holding
only the cost front as a contiguous matrix.  The mirror is what the
bucket prune compares against — one broadcasted ``<=`` per bucket
instead of one python dominance scan per candidate.  Equal-cost
duplicates add no pruning power, so the two containers always agree on
``dominates_candidate``.

Correctness tier — answers equal, counters may differ
-----------------------------------------------------

Unlike the flat kernels, bucket mode is **not** bit-identical to the
python engines and does not try to be: popping B labels before any of
their children can enter the heap reorders expansions, so every counter
in :class:`~repro.search.bbs.SearchStats` (and the heap tie-breaker
sequence) diverges.  What is preserved is the *answer set*: the final
skyline is the Pareto filter of all target-reaching paths found, and

* candidate costs are produced by the same IEEE float64 additions in
  the same association order (``(c + w) + b``, element-wise — numpy and
  python scalar float64 addition are the same operation), so every path
  the two tiers both find has a bit-identical cost vector;
* pruning differs only in *when* a frontier or the result skyline is
  consulted, never in what it may prune: every rejection criterion is
  the sequential one (dominated-or-equal by a node frontier, or an
  admissible optimistic projection dominated-or-equal by an
  already-found real path), which can never remove the last witness of
  a skyline cost;
* within a bucket, labels are processed in ascending key order and
  checked against results discovered earlier in the same bucket, so a
  bucket never expands a label the sequential engine would have pruned
  by a result found at a smaller key.

Equal-cost alternate paths are the one visible divergence: which of
several equal-cost witnesses survives depends on expansion order.  The
qa harness therefore checks batch answers for *path-set equality* on
tie-free workloads and cost-front equality always
(:func:`repro.qa.invariants.answer_set_errors`,
:func:`repro.qa.invariants.cost_skyline_errors`).

The wall-clock budget is checked once per bucket (≤ ``bucket_size``
pops), a tighter gate than the 512-pop interval of the scalar loops.
``max_expansions`` is likewise enforced at bucket granularity, so a run
may overshoot it by at most one bucket.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Sequence

import numpy as np

from repro.accel.bounds import exact_bound_matrix, materialize_bound_matrix
from repro.accel.csr import CSRSnapshot
from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.paths.dominance import dominates, dominates_or_equal
from repro.paths.frontier import ParetoSet, PathSet
from repro.paths.path import Path
from repro.paths.vector_frontier import VectorParetoSet
from repro.search.bounds import LowerBoundProvider
from repro.search.dijkstra import per_dimension_shortest_paths
from repro.search.labels import Label

DEFAULT_BUCKET_SIZE = 64

# The fused many-query kernel amortizes each bucket's numpy passes
# across every query in the batch, so it wants buckets several times
# larger than the per-query kernels: on the fig10 serving workload
# (ny~1200, 6 queries) 256 beats both 128 and 512 by 10-20%.
FUSED_BUCKET_SIZE = 256

_EMPTY = np.empty(0, dtype=np.int64)


class _BatchFrontier:
    """Per-node Pareto frontier with a numpy mirror for bulk admission.

    Same semantics as :class:`repro.search.labels.NodeFrontier` — a
    cost dominated-or-equalled by the frontier is rejected, anything a
    new cost strictly dominates is evicted, one label per distinct
    cost — but organized for the bucket pipeline:

    * ``matrix()`` exposes the frontier as a ``k×d`` float64 view of an
      append-only buffer (amortized doubling), so a whole bucket's
      rejection test runs as one concatenated comparison with *no*
      per-bucket rebuild;
    * ``append`` is scan-free: the vectorized passes
      (:meth:`_FrontierBatch.reject_mask` against the bucket-start
      rows, :func:`_intra_bucket_reject` among the bucket's own
      candidates) have already decided admission, so the scalar loop
      only records the cost and pushes the heap entry;
    * eviction is *logical*: a strictly dominated cost is only removed
      from ``current`` (killing its heap label at pop time) while its
      buffer row stays.  Leaving dead rows in the rejection matrix is
      sound by transitivity — a dead row ``D`` was strictly dominated
      by some live admitted cost ``A``, so any candidate ``c`` with
      ``D <= c`` also has ``A <= c`` and is rejected by a live row
      regardless.  This keeps every row index stable forever and makes
      admission allocation-free;
    * ``current`` is a set, making the stale-pop check O(1) instead of
      a list scan.
    """

    __slots__ = ("tuples", "current", "_buf", "_len")

    def __init__(self, dim: int) -> None:
        self.tuples: list[tuple[float, ...]] = []
        self.current: set[tuple[float, ...]] = set()
        self._buf = np.empty((4, dim), dtype=np.float64)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def matrix(self) -> np.ndarray:
        return self._buf[: self._len]

    def _push_row(self, cost: tuple[float, ...]) -> None:
        if self._len == len(self._buf):
            grown = np.empty(
                (2 * len(self._buf), self._buf.shape[1]), dtype=np.float64
            )
            grown[: self._len] = self._buf
            self._buf = grown
        self._buf[self._len] = cost
        self._len += 1
        self.tuples.append(cost)
        self.current.add(cost)

    def try_add(self, cost: tuple[float, ...]) -> bool:
        """Full scalar admission (source/seed pushes, outside buckets).

        The dominated-or-equal scan may consult dead rows; that is the
        same transitivity argument as the class note.
        """
        for kept in self.tuples:
            if dominates_or_equal(kept, cost):
                return False
        for kept in [k for k in self.current if dominates(cost, k)]:
            self.current.discard(kept)
        self._push_row(cost)
        return True

    def append(self, cost: tuple[float, ...]) -> None:
        """Record an admission the vectorized passes already decided."""
        self._push_row(cost)

    def kill_rows(self, rows: list[int]) -> None:
        """Logically evict rows strictly dominated by this bucket's
        admitted costs: their heap labels die at pop time, their buffer
        rows stay (see class note).  When dead rows outnumber live
        ones the buffer is compacted — safe here because row indices
        are only ever consumed within the bucket that computed them."""
        for i in rows:
            self.current.discard(self.tuples[i])
        if self._len >= 16 and 2 * len(self.current) < self._len:
            live = [t for t in self.tuples if t in self.current]
            self.tuples = live
            self._len = len(live)
            if live:
                self._buf[: self._len] = live

    def is_current(self, cost: tuple[float, ...]) -> bool:
        return cost in self.current


def _seed_paths_from_bounds(
    snapshot: CSRSnapshot,
    bound_mat: np.ndarray,
    src: int,
    dst: int,
    node_ids: list[int],
) -> list[Path]:
    """Per-dimension shortest paths read off an exact bound matrix.

    The exact reverse-Dijkstra bound matrix already encodes every
    per-dimension shortest-path tree: from any node ``u``, the next hop
    of dimension ``k``'s shortest path is the out-slot minimizing
    ``w_k(u, v) + B[v, k]`` (Bellman optimality), and with positive
    edge costs ``B[·, k]`` strictly decreases along the walk, so the
    descent reaches ``dst`` in at most ``n`` hops.  This replaces the
    three python-dict Dijkstras of
    :func:`~repro.search.dijkstra.per_dimension_shortest_paths` with a
    ~path-length walk over arrays — the bound matrix is needed anyway.

    The returned cost vectors accumulate edge costs in walk order with
    float64 adds, bit-identical to what the search itself would compute
    for the same walk.  Tie-breaking among equally short walks may
    differ from the dict Dijkstra — an equal-cost-alternate divergence
    the batch tier's contract already permits.
    """
    dim = snapshot.dim
    n = snapshot.num_nodes
    indptr = snapshot.indptr
    indices = snapshot.indices
    cost_mat = snapshot.costs
    paths: list[Path] = []
    for k in range(dim):
        if not np.isfinite(bound_mat[src, k]):
            continue
        walk = [node_ids[src]]
        total = np.zeros(dim, dtype=np.float64)
        u = src
        for _ in range(n):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if lo == hi:
                break
            weights = cost_mat[lo:hi]
            slot = int(
                np.argmin(weights[:, k] + bound_mat[indices[lo:hi], k])
            )
            total += weights[slot]
            u = int(indices[lo + slot])
            walk.append(node_ids[u])
            if u == dst:
                paths.append(Path(walk, tuple(total.tolist())))
                break
        # A walk that ran out of hops (possible only with zero-cost
        # cycles) is dropped: seeds are a pruning aid, never required
        # for correctness.
    return paths


def _to_original_path(label: Label, node_ids: list[int]) -> Path:
    """Materialize a dense-id label chain as an original-id path."""
    nodes = []
    walker: Label | None = label
    while walker is not None:
        nodes.append(node_ids[walker.node])
        walker = walker.parent
    nodes.reverse()
    return Path(nodes, label.cost)


def _all_le(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise ``(a <= b).all(axis=1)``, dimension-unrolled.

    At skyline dimensions (2–3) the per-column AND chain beats the
    generic axis reduction by skipping the ufunc-reduce machinery.
    """
    out = a[:, 0] <= b[:, 0]
    for j in range(1, a.shape[1]):
        out &= a[:, j] <= b[:, j]
    return out


def _all_eq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise ``(a == b).all(axis=1)``, dimension-unrolled."""
    out = a[:, 0] == b[:, 0]
    for j in range(1, a.shape[1]):
        out &= a[:, j] == b[:, j]
    return out


def _all_finite(a: np.ndarray) -> np.ndarray:
    """Row-wise ``isfinite(a).all(axis=1)``, dimension-unrolled."""
    out = np.isfinite(a[:, 0])
    for j in range(1, a.shape[1]):
        out &= np.isfinite(a[:, j])
    return out


def _segment_pairs(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-owner segment counts into (owner, within) pair rows.

    The repeat/cumsum gather shared by candidate generation and
    frontier admission: owner ``i`` contributes ``counts[i]`` rows,
    each tagged with its index within the segment.
    """
    total = int(counts.sum())
    if not total:
        return _EMPTY, _EMPTY
    owner = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        cum - counts, counts
    )
    return owner, within


def _intra_bucket_reject(nodes_sub: np.ndarray, ext_sub: np.ndarray):
    """Dominance resolution *among* one bucket's surviving candidates.

    Two candidates landing on the same node in the same bucket
    interact exactly as sequential pushes would: a strictly dominated
    cost can never reach the frontier (the dominator evicts it whether
    it comes earlier or later), and of exactly equal costs only the
    first — smallest heap key — survives (one label per distinct cost).
    Rejecting the loser *before* the push loop also saves the wasted
    heap entry the sequential engines pay for a push that is evicted
    later in the same bucket.

    Returns a boolean reject mask aligned with ``nodes_sub``.
    """
    reject = np.zeros(len(nodes_sub), dtype=bool)
    if len(nodes_sub) < 2:
        return reject
    order = np.argsort(nodes_sub, kind="stable")
    sorted_nodes = nodes_sub[order]
    boundary = np.empty(len(sorted_nodes), dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_nodes[1:] != sorted_nodes[:-1]
    seg_id = np.cumsum(boundary) - 1
    seg_sizes = np.bincount(seg_id)
    if seg_sizes.max() < 2:
        return reject
    # All (candidate, other-candidate) pairs within each node segment.
    counts = seg_sizes[seg_id]
    owner, within = _segment_pairs(counts)
    seg_start = np.concatenate(([0], np.cumsum(seg_sizes)[:-1]))
    other = seg_start[seg_id[owner]] + within
    valid = other != owner
    owner, other = owner[valid], other[valid]
    mine = ext_sub[order[owner]]
    theirs = ext_sub[order[other]]
    dom_or_eq = _all_le(theirs, mine)
    equal = _all_eq(theirs, mine)
    # Strict dominators kill regardless of order; exact ties keep the
    # earlier (smaller-key) candidate.
    loses = dom_or_eq & (~equal | (other < owner))
    sorted_reject = np.zeros(len(sorted_nodes), dtype=bool)
    sorted_reject[owner[loses]] = True
    reject[order] = sorted_reject
    return reject


def _bucket_candidates(indptr, indices, nodes):
    """Gather every out-slot of every bucket label, vectorized.

    Returns ``(label_of, slots, cand_nodes)``: for each candidate row,
    the index of its parent in ``owners``, its CSR slot, and its dense
    neighbor id.  Empty arrays when no label has out-edges.
    """
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    label_of, within = _segment_pairs(counts)
    if not len(label_of):
        return _EMPTY, _EMPTY, _EMPTY
    slots = starts[label_of] + within
    return label_of, slots, indices[slots]


class _FrontierBatch:
    """One bucket's gathered frontier state for vectorized admission.

    Concatenates the frontier matrices of every node the candidate
    batch touches (in sorted-unique order) and exposes the two bulk
    passes over them: ``reject_mask`` (dominated-or-equal rejection for
    every candidate at once) and ``evict_dominated`` (the deferred
    eviction sweep for the admitted costs).
    """

    __slots__ = ("uniq", "uidx", "sizes", "seg_start", "rows", "fronts")

    def __init__(self, frontiers: list, cand_nodes: np.ndarray, dim: int):
        self.uniq, self.uidx = np.unique(cand_nodes, return_inverse=True)
        sizes = np.zeros(len(self.uniq), dtype=np.int64)
        mats = []
        fronts = []
        for k, node in enumerate(self.uniq.tolist()):
            front = frontiers[node]
            fronts.append(front)
            if front is not None and len(front):
                sizes[k] = len(front)
                mats.append(front.matrix())
        self.sizes = sizes
        self.seg_start = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        self.rows = (
            np.concatenate(mats) if mats else np.empty((0, dim), np.float64)
        )
        self.fronts = fronts

    def _pairs(self, positions: np.ndarray):
        """(owner, frontier-row) pairs for subset positions.

        ``positions`` index into the candidate subset this batch was
        built over (``cand_nodes[members]`` at construction), not into
        the full candidate arrays.
        """
        uidx = self.uidx[positions]
        owner, within = _segment_pairs(self.sizes[uidx])
        if not len(owner):
            return owner, owner
        return owner, self.seg_start[uidx[owner]] + within

    def reject_mask(self, ext: np.ndarray) -> np.ndarray:
        """True where a bucket-start frontier row dominates-or-equals
        the candidate's extended cost (the ``try_add`` reject rule);
        one entry per subset row."""
        reject = np.zeros(len(self.uidx), dtype=bool)
        owner, rows = self._pairs(np.arange(len(self.uidx), dtype=np.int64))
        if len(owner):
            dom = _all_le(self.rows[rows], ext[owner])
            reject[owner[dom]] = True
        return reject

    def evict_dominated(self, positions: np.ndarray, ext: np.ndarray) -> None:
        """Evict every bucket-start row strictly dominated by an
        admitted cost, grouped per node in one sweep."""
        owner, rows = self._pairs(positions)
        if not len(owner):
            return
        kept_rows = self.rows[rows]
        cand = ext[owner]
        doomed = _all_le(cand, kept_rows) & ~_all_eq(cand, kept_rows)
        if not doomed.any():
            return
        dead = np.unique(rows[doomed])
        segment = np.searchsorted(self.seg_start, dead, side="right") - 1
        local = dead - self.seg_start[segment]
        by_node: dict[int, list[int]] = {}
        for seg, row in zip(segment.tolist(), local.tolist()):
            by_node.setdefault(seg, []).append(row)
        for seg, locals_ in by_node.items():
            self.fronts[seg].kill_rows(locals_)


def batch_skyline_paths(
    graph: MultiCostGraph,
    snapshot: CSRSnapshot,
    source: int,
    target: int,
    *,
    bounds: LowerBoundProvider | None = None,
    seed_with_shortest_paths: bool = True,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    node_mask: Sequence[bool] | None = None,
    seed_paths=None,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
):
    """Bucket-mode BBS over the snapshot (answer-set-equal tier).

    Same call surface as
    :func:`repro.accel.bbs_kernel.flat_skyline_paths`; the caller has
    validated endpoints and handled ``source == target``.  Answers match
    the flat/python engines as path sets (equal-cost alternates may
    differ); counters and heap order do not — see the module docstring.
    """
    from repro.search.bbs import SearchStats, SkylineResult

    start_time = time.perf_counter()
    stats = SearchStats()
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return SkylineResult(stats=stats)

    dim = snapshot.dim
    src = snapshot.dense_of(source)
    dst = snapshot.dense_of(target)
    if bounds is None:
        bound_mat = exact_bound_matrix(snapshot, [dst])
    else:
        bound_mat = materialize_bound_matrix(bounds, snapshot)

    results = PathSet()
    if seed_with_shortest_paths:
        results.add_all(per_dimension_shortest_paths(graph, source, target))
    if seed_paths is not None:
        results.add_all(seed_paths)
    # Vectorized mirror of the result cost front (equal-cost duplicates
    # carry no pruning power, so the keep_equal_costs=False semantics
    # agree with PathSet.dominates_candidate exactly).
    res_sky: VectorParetoSet[None] = VectorParetoSet(dim)
    for cost in results.costs():
        res_sky.add(cost, None)

    indptr = snapshot.indptr.astype(np.int64, copy=False)
    indices = snapshot.indices.astype(np.int64, copy=False)
    cost_mat = snapshot.costs
    node_ids = snapshot.node_ids.tolist()
    mask_arr = (
        np.asarray(node_mask, dtype=bool) if node_mask is not None else None
    )

    frontiers: list[_BatchFrontier | None] = [None] * snapshot.num_nodes
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    # Source push (scalar; mirrors the flat kernel).
    source_label = Label(src, (0.0,) * dim)
    source_projected = tuple(
        c + b for c, b in zip(source_label.cost, bound_mat[src].tolist())
    )
    if float("inf") in source_projected:
        stats.pruned_by_bound += 1
    else:
        stats.dominance_checks += 1
        if res_sky.dominates_candidate(source_projected):
            stats.pruned_by_result += 1
        else:
            frontier = frontiers[src] = _BatchFrontier(dim)
            frontier.try_add(source_label.cost)
            stats.pushes += 1
            heapq.heappush(
                heap, (sum(source_projected), next(tie_breaker), source_label)
            )
            stats.max_heap_size = 1

    while heap:
        # One clock read per bucket: at most bucket_size pops of
        # overshoot, tighter than the scalar loops' 512-pop interval.
        if time_budget is not None and (
            time.perf_counter() - start_time > time_budget
        ):
            stats.timed_out = True
            break
        if max_expansions is not None and stats.expansions >= max_expansions:
            stats.timed_out = True
            break

        # --- pop a bucket of current labels, smallest keys first ----
        bucket: list[Label] = []
        while heap and len(bucket) < bucket_size:
            _, _, label = heapq.heappop(heap)
            if frontiers[label.node].is_current(label.cost):
                bucket.append(label)
        if not bucket:
            continue

        nodes = np.fromiter(
            (label.node for label in bucket), dtype=np.int64, count=len(bucket)
        )
        costs = np.array([label.cost for label in bucket], dtype=np.float64)
        projected = costs + bound_mat[nodes]
        stats.dominance_checks += len(bucket)
        dominated = res_sky.dominance_mask(projected)

        # Process survivors in key order so a target hit early in the
        # bucket still prunes later bucket members, exactly as the
        # sequential engines would.
        fresh_costs: list[tuple[float, ...]] = []
        expand: list[int] = []
        for i, label in enumerate(bucket):
            if dominated[i]:
                stats.pruned_by_result += 1
                continue
            if fresh_costs:
                proj_i = tuple(projected[i].tolist())
                if any(
                    dominates_or_equal(f, proj_i) for f in fresh_costs
                ):
                    stats.pruned_by_result += 1
                    continue
            stats.expansions += 1
            if label.node == dst:
                path = _to_original_path(label, node_ids)
                if results.add(path):
                    res_sky.add(path.cost, None)
                    fresh_costs.append(path.cost)
                continue
            expand.append(i)
        if not expand:
            continue

        # --- vectorized candidate generation over every out-slot ----
        expand_arr = np.asarray(expand, dtype=np.int64)
        label_of, slots, cand_nodes = _bucket_candidates(
            indptr, indices, nodes[expand_arr]
        )
        if not len(slots):
            continue
        if mask_arr is not None:
            alive = mask_arr[cand_nodes]
            stats.pruned_by_corridor += int(len(alive) - alive.sum())
            label_of, slots, cand_nodes = (
                label_of[alive], slots[alive], cand_nodes[alive]
            )
            if not len(slots):
                continue
        # Same association order as the scalar engines: (c + w) + b.
        extended = costs[expand_arr[label_of]] + cost_mat[slots]
        cand_projected = extended + bound_mat[cand_nodes]
        finite = _all_finite(cand_projected)
        stats.pruned_by_bound += int(len(finite) - finite.sum())
        stats.dominance_checks += int(finite.sum())
        cand_dominated = res_sky.dominance_mask(cand_projected)
        stats.pruned_by_result += int((finite & cand_dominated).sum())
        admit = finite & ~cand_dominated
        if not admit.any():
            continue

        # --- vectorized frontier admission over the survivors -------
        members = np.nonzero(admit)[0]
        batch_front = _FrontierBatch(frontiers, cand_nodes[members], dim)
        reject = batch_front.reject_mask(extended[members])
        intra = _intra_bucket_reject(cand_nodes[members], extended[members])
        reject |= intra
        stats.pruned_by_frontier += int(reject.sum())
        keep_pos = np.nonzero(~reject)[0]
        members = members[keep_pos]
        if not len(members):
            continue

        keys = cand_projected[members].sum(axis=1)
        ext_rows = extended[members].tolist()
        parents = expand_arr[label_of[members]]
        for row, key, parent_i, neighbor in zip(
            ext_rows, keys.tolist(), parents.tolist(),
            cand_nodes[members].tolist(),
        ):
            ext = tuple(row)
            frontier = frontiers[neighbor]
            if frontier is None:
                frontier = frontiers[neighbor] = _BatchFrontier(dim)
            frontier.append(ext)
            stats.pushes += 1
            heapq.heappush(
                heap,
                (key, next(tie_breaker),
                 Label(neighbor, ext, parent=bucket[parent_i])),
            )
        # Deferred eviction: bucket-start rows the admitted costs
        # strictly dominate, swept once per bucket instead of per push.
        batch_front.evict_dominated(keep_pos, extended[members])
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    stats.elapsed_seconds = time.perf_counter() - start_time
    stats.frontier_nodes = sum(
        1 for frontier in frontiers if frontier is not None
    )
    return SkylineResult(paths=results.paths(), stats=stats)


def batch_many_to_many(
    graph: MultiCostGraph,
    snapshot: CSRSnapshot,
    seeds: Sequence,
    targets: Sequence[int],
    *,
    bounds: LowerBoundProvider | None = None,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    node_mask: Sequence[bool] | None = None,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
):
    """Bucket-mode m_BBS: one shared traversal for a whole seed batch.

    All seeds of a service batch enter one heap and the CSR arrays are
    walked once, bucket by bucket, instead of once per source.  Answer
    tier matches :func:`batch_skyline_paths`: hit sets equal the scalar
    engines' as path sets, counters may differ.  Lower-bound rows fault
    in lazily per bucket (m_BBS on G_L touches a small node slice, so a
    dense up-front materialization would usually lose).
    """
    from repro.search.bbs import SearchStats
    from repro.search.mbbs import ManyToManyResult, Seed
    from repro.accel.bbs_kernel import _label_to_local_path

    target_set = set(targets)
    for node in target_set:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)

    start_time = time.perf_counter()
    stats = SearchStats()
    result = ManyToManyResult(stats=stats)
    if time_budget is not None and time_budget <= 0:
        stats.timed_out = True
        stats.elapsed_seconds = time.perf_counter() - start_time
        return result

    dim = snapshot.dim
    n = snapshot.num_nodes
    bound_mat = np.zeros((n, dim), dtype=np.float64)
    have = None if bounds is None else np.zeros(n, dtype=bool)

    indptr = snapshot.indptr.astype(np.int64, copy=False)
    indices = snapshot.indices.astype(np.int64, copy=False)
    cost_mat = snapshot.costs
    node_ids = snapshot.node_ids.tolist()
    dense_targets = {snapshot.dense_of(node) for node in target_set}
    mask_arr = (
        np.asarray(node_mask, dtype=bool) if node_mask is not None else None
    )

    def ensure_bound_rows(dense_nodes: np.ndarray) -> None:
        if have is None:
            return
        missing = dense_nodes[~have[dense_nodes]]
        for dn in np.unique(missing).tolist():
            bound_mat[dn] = bounds.bound(node_ids[dn])
            have[dn] = True

    frontiers: list[_BatchFrontier | None] = [None] * n
    tie_breaker = itertools.count()
    heap: list[tuple[float, int, Label]] = []

    def push_scalar(label: Label) -> None:
        ensure_bound_rows(np.asarray([label.node], dtype=np.int64))
        projected = tuple(
            c + b for c, b in zip(label.cost, bound_mat[label.node].tolist())
        )
        if float("inf") in projected:
            stats.pruned_by_bound += 1
            return
        frontier = frontiers[label.node]
        if frontier is None:
            frontier = frontiers[label.node] = _BatchFrontier(dim)
        if not frontier.try_add(label.cost):
            stats.pruned_by_frontier += 1
            return
        stats.pushes += 1
        heapq.heappush(heap, (sum(projected), next(tie_breaker), label))

    for seed in seeds:
        if not graph.has_node(seed.node):
            raise NodeNotFoundError(seed.node)
        push_scalar(
            Label(snapshot.dense_of(seed.node), tuple(seed.cost), seed=seed)
        )
    stats.max_heap_size = len(heap)

    while heap:
        if time_budget is not None and (
            time.perf_counter() - start_time > time_budget
        ):
            stats.timed_out = True
            break
        if max_expansions is not None and stats.expansions >= max_expansions:
            stats.timed_out = True
            break

        bucket: list[Label] = []
        while heap and len(bucket) < bucket_size:
            _, _, label = heapq.heappop(heap)
            if frontiers[label.node].is_current(label.cost):
                bucket.append(label)
        if not bucket:
            continue
        stats.expansions += len(bucket)

        for label in bucket:
            if label.node in dense_targets:
                seed: Seed = label.seed  # type: ignore[assignment]
                original = node_ids[label.node]
                hits = result.hits.get(original)
                if hits is None:
                    hits = result.hits[original] = ParetoSet(
                        keep_equal_costs=True
                    )
                hits.add(
                    label.cost,
                    (seed.payload, _label_to_local_path(label, seed, node_ids)),
                )
                # Targets are ordinary nodes; keep expanding through.

        nodes = np.fromiter(
            (label.node for label in bucket), dtype=np.int64, count=len(bucket)
        )
        costs = np.array([label.cost for label in bucket], dtype=np.float64)
        label_of, slots, cand_nodes = _bucket_candidates(
            indptr, indices, nodes
        )
        if not len(slots):
            continue
        if mask_arr is not None:
            alive = mask_arr[cand_nodes]
            stats.pruned_by_corridor += int(len(alive) - alive.sum())
            label_of, slots, cand_nodes = (
                label_of[alive], slots[alive], cand_nodes[alive]
            )
            if not len(slots):
                continue
        ensure_bound_rows(cand_nodes)
        extended = costs[label_of] + cost_mat[slots]
        cand_projected = extended + bound_mat[cand_nodes]
        finite = _all_finite(cand_projected)
        stats.pruned_by_bound += int(len(finite) - finite.sum())
        if not finite.any():
            continue

        members = np.nonzero(finite)[0]
        batch_front = _FrontierBatch(frontiers, cand_nodes[members], dim)
        reject = batch_front.reject_mask(extended[members])
        reject |= _intra_bucket_reject(cand_nodes[members], extended[members])
        stats.pruned_by_frontier += int(reject.sum())
        keep_pos = np.nonzero(~reject)[0]
        members = members[keep_pos]
        if not len(members):
            continue

        keys = cand_projected[members].sum(axis=1)
        ext_rows = extended[members].tolist()
        parents = label_of[members]
        for row, key, parent_i, neighbor in zip(
            ext_rows, keys.tolist(), parents.tolist(),
            cand_nodes[members].tolist(),
        ):
            ext = tuple(row)
            frontier = frontiers[neighbor]
            if frontier is None:
                frontier = frontiers[neighbor] = _BatchFrontier(dim)
            frontier.append(ext)
            stats.pushes += 1
            heapq.heappush(
                heap,
                (key, next(tie_breaker),
                 Label(neighbor, ext, parent=bucket[parent_i])),
            )
        batch_front.evict_dominated(keep_pos, extended[members])
        if len(heap) > stats.max_heap_size:
            stats.max_heap_size = len(heap)

    stats.elapsed_seconds = time.perf_counter() - start_time
    stats.frontier_nodes = sum(
        1 for frontier in frontiers if frontier is not None
    )
    return result

class _LabelStore:
    """Flat append-only label store for the fused kernel.

    Labels live in parallel numpy arrays indexed by an integer label
    id: cost row, dense node, query id, composite frontier id, and
    parent label id (``-1`` for roots).  A whole bucket's labels
    gather with fancy indexing instead of per-object attribute reads,
    and admission writes a whole member slice at once — the per-label
    Python objects (``Label``, cost tuples, per-node membership sets)
    disappear from the hot loop.

    Liveness lives in two small Python sets rather than a flag array:
    ``dead`` holds evicted label ids (the lazy-heap staleness test is
    one set-membership check per pop) and ``dirty`` the frontier ids
    that lost a row since last compaction, so per-frontier lists are
    re-filtered only when something was actually evicted from them.
    """

    __slots__ = ("cost", "node", "qid", "fid", "parent", "size",
                 "dead", "dirty")

    def __init__(self, dim: int) -> None:
        cap = 1024
        self.cost = np.empty((cap, dim), dtype=np.float64)
        self.node = np.empty(cap, dtype=np.int64)
        self.qid = np.empty(cap, dtype=np.int64)
        self.fid = np.empty(cap, dtype=np.int64)
        self.parent = np.empty(cap, dtype=np.int64)
        self.size = 0
        self.dead: set[int] = set()
        self.dirty: set[int] = set()

    def _reserve(self, extra: int) -> None:
        need = self.size + extra
        cap = len(self.node)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("cost", "node", "qid", "fid", "parent"):
            old = getattr(self, name)
            shape = (cap,) + old.shape[1:]
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    def extend(self, costs, nodes, qids, fids, parents) -> int:
        """Append a block of live labels; return the first new id."""
        k = len(nodes)
        self._reserve(k)
        base = self.size
        end = base + k
        self.cost[base:end] = costs
        self.node[base:end] = nodes
        self.qid[base:end] = qids
        self.fid[base:end] = fids
        self.parent[base:end] = parents
        self.size = end
        return base


class _StoreFrontierBatch:
    """One bucket's gathered frontier state over a :class:`_LabelStore`.

    The fused-kernel analogue of :class:`_FrontierBatch`: per-``fid``
    frontiers are plain lists of label ids (compacted lazily against
    ``store.alive`` when touched), the concatenated cost rows come from
    one fancy index into the store, and eviction is a single scatter
    ``alive[dead] = 0`` — no per-frontier bookkeeping at all.
    """

    __slots__ = ("store", "uniq", "uidx", "sizes", "seg_start", "row_idx")

    def __init__(self, store: _LabelStore, fid_rows: list, cand_fids):
        self.store = store
        self.uniq, self.uidx = np.unique(cand_fids, return_inverse=True)
        dead = store.dead
        dirty = store.dirty
        sizes = np.zeros(len(self.uniq), dtype=np.int64)
        chunks = []
        for k, fid in enumerate(self.uniq.tolist()):
            rows = fid_rows[fid]
            if rows:
                if fid in dirty:
                    rows = [i for i in rows if i not in dead]
                    fid_rows[fid] = rows
                    dirty.discard(fid)
                if rows:
                    sizes[k] = len(rows)
                    chunks.append(rows)
        self.sizes = sizes
        self.seg_start = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        if chunks:
            flat = list(itertools.chain.from_iterable(chunks))
            self.row_idx = np.fromiter(flat, dtype=np.int64, count=len(flat))
        else:
            self.row_idx = _EMPTY

    def _pairs(self, positions: np.ndarray):
        uidx = self.uidx[positions]
        owner, within = _segment_pairs(self.sizes[uidx])
        if not len(owner):
            return owner, owner
        return owner, self.seg_start[uidx[owner]] + within

    def admission(
        self, ext: np.ndarray, intra_reject: np.ndarray
    ) -> np.ndarray:
        """Frontier rejection and deferred eviction in one pair sweep.

        Builds the (candidate, frontier-row) pairs once: a candidate is
        rejected when a bucket-start row dominates-or-equals it (the
        ``try_add`` rule) or ``intra_reject`` flags it, and every
        bucket-start row strictly dominated by a *kept* candidate is
        recorded dead.  Eviction ordering is immaterial — the pair set
        is a bucket-start snapshot either way.  Returns the combined
        reject mask.
        """
        reject = intra_reject.copy()
        owner, rows = self._pairs(np.arange(len(self.uidx), dtype=np.int64))
        if not len(owner):
            return reject
        front_rows = self.store.cost[self.row_idx[rows]]
        ext_owner = ext[owner]
        dom = _all_le(front_rows, ext_owner)
        reject[owner[dom]] = True
        doomed = (
            _all_le(ext_owner, front_rows)
            & ~_all_eq(ext_owner, front_rows)
            & ~reject[owner]
        )
        if doomed.any():
            store = self.store
            dead_ids = np.unique(self.row_idx[rows[doomed]])
            store.dead.update(dead_ids.tolist())
            store.dirty.update(store.fid[dead_ids].tolist())
        return reject


def fused_skyline_batch(
    graph: MultiCostGraph,
    snapshot: CSRSnapshot,
    queries: Sequence[tuple[int, int]],
    *,
    bounds: Sequence[LowerBoundProvider | None] | None = None,
    seed_with_shortest_paths: bool = True,
    time_budget: float | None = None,
    max_expansions: int | None = None,
    bucket_size: int = FUSED_BUCKET_SIZE,
):
    """One shared bucket traversal for a whole batch of 1-to-1 queries.

    This is the batch executor's fast path: ``Q`` independent
    ``(source, target)`` queries run over one CSR walk, and every
    bucket mixes labels from all of them.  The per-bucket numpy
    passes — bound projection, result-skyline pruning, frontier
    admission — each process the *combined* bucket, so their fixed
    dispatch cost is amortized ``Q`` ways.  That is the measured
    difference between this kernel and per-query
    :func:`batch_skyline_paths`: the same operations on ~``Q``-times
    larger arrays, which is where bucket vectorization actually wins
    (see ``BENCH_batch.json``).

    Each query keeps its own heap and contributes an equal quota of
    its smallest-key labels to every bucket.  A single shared heap
    would *not* mix: heap keys are absolute projected-cost sums, so
    the query with the smallest cost scale would drain first and the
    buckets would degenerate to single-query ones.  Cross-query pop
    order is irrelevant to correctness — only the per-query
    subsequence must be ascending, which a per-query heap gives
    trivially.

    Queries stay logically independent: frontiers are keyed by
    ``(query, node)``, and each query prunes only against its own
    result skyline and bound matrix — so per query the traversal is
    exactly a :func:`batch_skyline_paths` run, and every answer set
    equals the flat/python answer set for that pair (equal-cost
    alternates may differ, counters may differ).

    ``bounds`` optionally gives one provider per query (``None``
    entries fall back to exact reverse-Dijkstra bounds).
    ``time_budget`` and ``max_expansions`` cap the *whole batch*; on
    expiry every query's stats report ``timed_out`` (the shared
    traversal cannot attribute the shortfall).  Returns one
    :class:`~repro.search.bbs.SkylineResult` per query, positionally.
    """
    from repro.search.bbs import SearchStats, SkylineResult

    start_time = time.perf_counter()
    n_queries = len(queries)
    if bounds is not None and len(bounds) != n_queries:
        raise ValueError("bounds must align with queries")
    all_stats = [SearchStats() for _ in range(n_queries)]
    if time_budget is not None and time_budget <= 0:
        for stats in all_stats:
            stats.timed_out = True
        return [SkylineResult(stats=stats) for stats in all_stats]

    dim = snapshot.dim
    n = snapshot.num_nodes
    node_ids = snapshot.node_ids.tolist()
    indptr = snapshot.indptr.astype(np.int64, copy=False)
    indices = snapshot.indices.astype(np.int64, copy=False)
    cost_mat = snapshot.costs

    for source, target in queries:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        if not graph.has_node(target):
            raise NodeNotFoundError(target)

    # Per-query state: destination, bounds, result containers.
    dst = np.fromiter(
        (snapshot.dense_of(t) for _, t in queries),
        dtype=np.int64,
        count=n_queries,
    )
    bound_stack = np.empty((n_queries, n, dim), dtype=np.float64)
    exact_cache: dict[int, np.ndarray] = {}
    for q in range(n_queries):
        provider = bounds[q] if bounds is not None else None
        if provider is None:
            # Batches repeat targets (dedup only merges identical
            # source AND target pairs); one reverse Dijkstra per
            # unique one.  (A vectorized Bellman-Ford over all targets
            # at once loses here: road-network shortest-path trees run
            # >100 hops deep, so the sweep pays >100 small-array numpy
            # rounds against ~1.7 ms per heap Dijkstra.)
            key = int(dst[q])
            cached = exact_cache.get(key)
            if cached is None:
                cached = exact_cache[key] = exact_bound_matrix(
                    snapshot, [key]
                )
            bound_stack[q] = cached
        else:
            bound_stack[q] = materialize_bound_matrix(provider, snapshot)

    # Result skylines: the VectorParetoSet mirror is authoritative for
    # *costs*; witnesses accumulate in a plain list and are filtered by
    # final front membership at the end.  This replaces the python
    # dominance scan of PathSet.add (the scalar engines' result-set hot
    # spot on skyline-heavy queries) with one vectorized compare per
    # hit; eviction becomes a single final filter instead of per-add
    # list rebuilds.
    res_skys: list[VectorParetoSet] = [
        VectorParetoSet(dim) for _ in range(n_queries)
    ]
    # A witness is either a ready Path (seeds, trivial queries) or a
    # label id whose node walk materializes only at the end — most
    # hits never need their path before then.  Exact duplicates are
    # dropped in the same final pass.
    witnesses: list[list] = [[] for _ in range(n_queries)]

    def record_hit(q: int, witness, cost) -> bool:
        """PathSet(keep_equal_costs) admission via the vector mirror:
        accept a new non-dominated cost or an equal-cost alternate,
        reject strictly dominated candidates."""
        sky = res_skys[q]
        if sky.contains(cost) or sky.add(cost, None):
            witnesses[q].append(witness)
            return True
        return False

    for q, (source, target) in enumerate(queries):
        if seed_with_shortest_paths and source != target:
            if bounds is None or bounds[q] is None:
                # Exact bound matrices double as shortest-path trees.
                seeds = _seed_paths_from_bounds(
                    snapshot,
                    bound_stack[q],
                    snapshot.dense_of(source),
                    int(dst[q]),
                    node_ids,
                )
            else:
                seeds = per_dimension_shortest_paths(graph, source, target)
            for path in seeds:
                record_hit(q, path, path.cost)

    # Frontiers keyed by the composite id q*n + node: per-fid lists of
    # label ids into one flat store, so _StoreFrontierBatch and
    # _intra_bucket_reject work unchanged on composite ids (candidates
    # of different queries never share one).
    store = _LabelStore(dim)
    fid_rows: list[list[int] | None] = [None] * (n_queries * n)
    heaps: list[list[tuple[float, int]]] = [[] for _ in range(n_queries)]

    zero_row = np.zeros((1, dim), dtype=np.float64)
    for q, (source, target) in enumerate(queries):
        if source == target:
            trivial = Path.trivial(source, dim)
            record_hit(q, trivial, trivial.cost)
            continue
        src = snapshot.dense_of(source)
        projected = tuple(bound_stack[q, src].tolist())
        stats = all_stats[q]
        if float("inf") in projected:
            stats.pruned_by_bound += 1
            continue
        stats.dominance_checks += 1
        if res_skys[q].dominates_candidate(projected):
            stats.pruned_by_result += 1
            continue
        idx = store.extend(
            zero_row,
            np.asarray([src], dtype=np.int64),
            np.asarray([q], dtype=np.int64),
            np.asarray([q * n + src], dtype=np.int64),
            np.asarray([-1], dtype=np.int64),
        )
        fid_rows[q * n + src] = [idx]
        stats.pushes += 1
        stats.max_heap_size = 1
        heapq.heappush(heaps[q], (sum(projected), idx))

    timed_out = False
    total_expansions = 0
    dst_list = dst.tolist()
    while any(heaps):
        if time_budget is not None and (
            time.perf_counter() - start_time > time_budget
        ):
            timed_out = True
            break
        if max_expansions is not None and total_expansions >= max_expansions:
            timed_out = True
            break

        # Equal quota of smallest-key labels from every live query, so
        # the bucket mixes queries regardless of their cost scales.
        dead = store.dead
        bucket_idx: list[int] = []
        live = [q for q in range(n_queries) if heaps[q]]
        quota = -(-bucket_size // len(live))
        for q in live:
            heap = heaps[q]
            taken = 0
            while heap and taken < quota:
                _, idx = heapq.heappop(heap)
                if idx not in dead:
                    bucket_idx.append(idx)
                    taken += 1
        if not bucket_idx:
            continue

        barr = np.fromiter(
            bucket_idx, dtype=np.int64, count=len(bucket_idx)
        )
        qids = store.qid[barr]
        nodes = store.node[barr]
        costs = store.cost[barr]
        projected = costs + bound_stack[qids, nodes]
        dominated = np.zeros(len(barr), dtype=bool)
        # Pops are grouped by ascending q, so qids (and every array
        # derived from it downstream) is segment-sorted: per-query
        # work is contiguous slices, not nonzero scans.
        uq_arr, q_starts = np.unique(qids, return_index=True)
        uq = uq_arr.tolist()
        q_bounds = q_starts.tolist() + [len(barr)]
        for j, q in enumerate(uq):
            lo, hi = q_bounds[j], q_bounds[j + 1]
            all_stats[q].dominance_checks += hi - lo
            dominated[lo:hi] = res_skys[q].dominance_mask(projected[lo:hi])

        # Per query: record target hits first (their pops are already
        # in ascending key order), then prune the query's remaining
        # labels against the *updated* skyline in one vectorized pass
        # — the same dominated-or-equal test the sequential engines
        # apply label by label after each fresh path.
        expand_mask = np.zeros(len(barr), dtype=bool)
        for j, q in enumerate(uq):
            lo, hi = q_bounds[j], q_bounds[j + 1]
            stats = all_stats[q]
            seg = slice(lo, hi)
            seg_live = ~dominated[seg]
            stats.pruned_by_result += (hi - lo) - int(seg_live.sum())
            hits = nodes[seg] == dst_list[q]
            found = False
            for p in np.nonzero(hits & seg_live)[0].tolist():
                i = lo + p
                stats.expansions += 1
                total_expansions += 1
                cost = tuple(costs[i].tolist())
                if record_hit(q, bucket_idx[i], cost):
                    found = True
            tail = seg_live & ~hits
            if found and tail.any():
                redom = res_skys[q].dominance_mask(projected[seg])
                stats.pruned_by_result += int((tail & redom).sum())
                tail &= ~redom
            expanded = int(tail.sum())
            stats.expansions += expanded
            total_expansions += expanded
            expand_mask[seg] = tail
        if not expand_mask.any():
            continue

        expand_arr = np.nonzero(expand_mask)[0]
        label_of, slots, cand_nodes = _bucket_candidates(
            indptr, indices, nodes[expand_arr]
        )
        if not len(slots):
            continue
        cand_qids = qids[expand_arr[label_of]]
        extended = costs[expand_arr[label_of]] + cost_mat[slots]
        cand_projected = extended + bound_stack[cand_qids, cand_nodes]
        finite = _all_finite(cand_projected)
        cand_dominated = np.zeros(len(cand_nodes), dtype=bool)
        c_bounds = np.searchsorted(cand_qids, uq_arr).tolist()
        c_bounds.append(len(cand_nodes))
        for j, q in enumerate(uq):
            lo, hi = c_bounds[j], c_bounds[j + 1]
            if lo == hi:
                continue
            stats = all_stats[q]
            fin = finite[lo:hi]
            stats.pruned_by_bound += int(len(fin) - fin.sum())
            stats.dominance_checks += int(fin.sum())
            dom = res_skys[q].dominance_mask(cand_projected[lo:hi])
            stats.pruned_by_result += int((fin & dom).sum())
            cand_dominated[lo:hi] = dom
        admit = finite & ~cand_dominated
        if not admit.any():
            continue

        members = np.nonzero(admit)[0]
        cand_fids = cand_qids * n + cand_nodes
        mfids = cand_fids[members]
        batch_front = _StoreFrontierBatch(store, fid_rows, mfids)
        if len(batch_front.uniq) == len(mfids):
            intra = np.zeros(len(mfids), dtype=bool)
        else:
            intra = _intra_bucket_reject(mfids, extended[members])
        reject = batch_front.admission(extended[members], intra)
        if reject.any():
            counts = np.bincount(
                cand_qids[members[reject]], minlength=n_queries
            )
            for q in np.nonzero(counts)[0].tolist():
                all_stats[q].pruned_by_frontier += int(counts[q])
        keep_pos = np.nonzero(~reject)[0]
        members = members[keep_pos]
        if not len(members):
            continue

        keys = cand_projected[members].sum(axis=1)
        mq = cand_qids[members]
        mkeep = mfids[keep_pos]
        parents_idx = barr[expand_arr[label_of[members]]]
        base = store.extend(
            extended[members], cand_nodes[members], mq, mkeep, parents_idx
        )
        push_counts = np.bincount(mq, minlength=n_queries)
        for q in np.nonzero(push_counts)[0].tolist():
            all_stats[q].pushes += int(push_counts[q])
        for off, (key, q, fid) in enumerate(
            zip(keys.tolist(), mq.tolist(), mkeep.tolist())
        ):
            idx = base + off
            rows = fid_rows[fid]
            if rows is None:
                fid_rows[fid] = [idx]
            else:
                rows.append(idx)
            heapq.heappush(heaps[q], (key, idx))
        for q, heap in enumerate(heaps):
            if len(heap) > all_stats[q].max_heap_size:
                all_stats[q].max_heap_size = len(heap)

    elapsed = time.perf_counter() - start_time
    for stats in all_stats:
        stats.elapsed_seconds = elapsed
        if timed_out:
            stats.timed_out = True
    for q in range(n_queries):
        all_stats[q].frontier_nodes = sum(
            1 for rows in fid_rows[q * n : (q + 1) * n] if rows is not None
        )
    # Witnesses whose cost survived on the final front, in insertion
    # order — exactly the PathSet(keep_equal_costs) survivor set: an
    # evicted cost is strictly dominated by a kept one, so no later
    # equal-cost witness can have re-entered after an eviction.  Node
    # walks happen only here, over plain Python lists, and exact
    # (cost, nodes) duplicates collapse in the same pass.
    parent_list = store.parent[: store.size].tolist()
    dense_nodes = store.node[: store.size].tolist()
    results = []
    for q in range(n_queries):
        sky = res_skys[q]
        final_paths: list[Path] = []
        emitted: set = set()
        for witness in witnesses[q]:
            if isinstance(witness, Path):
                path = witness
                if not sky.contains(path.cost):
                    continue
            else:
                cost = tuple(store.cost[witness].tolist())
                if not sky.contains(cost):
                    continue
                chain = []
                i = witness
                while i >= 0:
                    chain.append(node_ids[dense_nodes[i]])
                    i = parent_list[i]
                chain.reverse()
                path = Path(tuple(chain), cost)
            key = (path.cost, tuple(path.nodes))
            if key in emitted:
                continue
            emitted.add(key)
            final_paths.append(path)
        results.append(
            SkylineResult(paths=final_paths, stats=all_stats[q])
        )
    return results
