"""Flat and batch array kernels for skyline search.

The package freezes a :class:`~repro.graph.mcrn.MultiCostGraph` into an
immutable CSR snapshot (:mod:`repro.accel.csr`), materializes lower
bounds into dense matrices (:mod:`repro.accel.bounds`), and runs the
BBS/m_BBS hot loops over those arrays.  Two kernel tiers exist:

* :mod:`repro.accel.bbs_kernel` — scalar flat loops, bit-identical to
  the python engines (only the constant factors change);
* :mod:`repro.accel.batch_kernel` — bucket-mode numpy vectorization,
  answer-set-equal to the other engines but with divergent counters
  and expansion order.

See ``docs/acceleration.md``.
"""

from repro.accel.batch_kernel import (
    DEFAULT_BUCKET_SIZE,
    batch_many_to_many,
    batch_skyline_paths,
    fused_skyline_batch,
)
from repro.accel.bbs_kernel import flat_many_to_many, flat_skyline_paths
from repro.accel.blob import pack_bytes, pack_nbytes, read_pack, write_pack
from repro.accel.bounds import (
    ParetoPrepBounds,
    exact_bound_matrix,
    landmark_bound_matrix,
    materialize_bound_matrix,
    pareto_prep_bound_matrix,
)
from repro.accel.csr import CSRSnapshot
from repro.accel.onetoall_kernel import flat_label_rows, flat_one_to_all

__all__ = [
    "CSRSnapshot",
    "DEFAULT_BUCKET_SIZE",
    "ParetoPrepBounds",
    "batch_many_to_many",
    "batch_skyline_paths",
    "exact_bound_matrix",
    "flat_label_rows",
    "flat_many_to_many",
    "flat_one_to_all",
    "flat_skyline_paths",
    "fused_skyline_batch",
    "landmark_bound_matrix",
    "materialize_bound_matrix",
    "pareto_prep_bound_matrix",
    "pack_bytes",
    "pack_nbytes",
    "read_pack",
    "write_pack",
]
