"""Immutable CSR snapshots of a multi-cost graph.

A :class:`CSRSnapshot` freezes a :class:`~repro.graph.mcrn.MultiCostGraph`
into contiguous arrays:

* ``node_ids`` — the original node identifiers, ascending.  The dense id
  of a node is its rank in this array, so the remap preserves order:
  iterating dense ids ascending visits original ids ascending.
* ``indptr``/``indices`` (int32) — CSR adjacency over dense ids.  The
  neighbor slots of each node are sorted by dense neighbor id, with
  parallel edges inlined as consecutive slots in the graph's canonical
  (sorted) cost-list order.
* ``costs`` — one ``(num_edge_slots, dim)`` float64 matrix, row ``k``
  holding the cost vector of slot ``k``.

For directed graphs a second CSR (``rev_*``) stores the transposed
adjacency for reverse searches; undirected snapshots share the forward
arrays.  Because both the node remap and the per-node slot order are
canonical, a snapshot built from a graph equals the snapshot built from
any store round-trip of that graph.

Snapshots are value objects: build once (traced as ``accel.csr.build``),
share freely, never mutate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BuildError, NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.obs.tracer import Tracer, resolve_tracer
from repro.store.codec import ByteReader, ByteWriter


class CSRSnapshot:
    """A frozen array view of a :class:`MultiCostGraph`."""

    __slots__ = (
        "dim",
        "directed",
        "node_ids",
        "indptr",
        "indices",
        "costs",
        "rev_indptr",
        "rev_indices",
        "rev_costs",
        "_dense_of",
        "_adj_lists",
        "_weight_lists",
        "_cost_tuples",
    )

    def __init__(
        self,
        *,
        dim: int,
        directed: bool,
        node_ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        costs: np.ndarray,
        rev_indptr: np.ndarray,
        rev_indices: np.ndarray,
        rev_costs: np.ndarray,
    ) -> None:
        self.dim = dim
        self.directed = directed
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self.costs = costs
        self.rev_indptr = rev_indptr
        self.rev_indices = rev_indices
        self.rev_costs = rev_costs
        self._dense_of: dict[int, int] | None = None
        # Lazily materialized python-list mirrors for the scalar hot
        # loops (list indexing beats numpy scalar indexing by ~10x).
        self._adj_lists: dict[bool, tuple[list[int], list[int]]] = {}
        self._weight_lists: dict[bool, list[list[float]]] = {}
        self._cost_tuples: list[tuple[float, ...]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls, graph: MultiCostGraph, *, tracer: Tracer | None = None
    ) -> "CSRSnapshot":
        """Freeze ``graph`` into a snapshot (traced as ``accel.csr.build``)."""
        tracer = resolve_tracer(tracer)
        with tracer.span(
            "accel.csr.build",
            nodes=graph.num_nodes,
            edges=graph.num_edge_entries,
            directed=graph.directed,
        ) as span:
            snapshot = cls._build(graph)
            if span.enabled:
                span.set(slots=snapshot.num_edge_slots)
        return snapshot

    @classmethod
    def _build(cls, graph: MultiCostGraph) -> "CSRSnapshot":
        dim = graph.dim
        node_ids = np.asarray(sorted(graph.nodes()), dtype=np.int64)
        dense_of = {int(orig): i for i, orig in enumerate(node_ids)}

        def one_direction(reverse: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            indptr = np.zeros(len(node_ids) + 1, dtype=np.int32)
            indices: list[int] = []
            cost_rows: list[tuple[float, ...]] = []
            for i, orig in enumerate(node_ids):
                orig = int(orig)
                nbrs = (
                    graph.in_neighbors(orig) if reverse else graph.neighbors(orig)
                )
                for nbr in sorted(nbrs):
                    u, v = (nbr, orig) if reverse else (orig, nbr)
                    for cost in graph.edge_costs(u, v):
                        indices.append(dense_of[nbr])
                        cost_rows.append(cost)
                indptr[i + 1] = len(indices)
            return (
                indptr,
                np.asarray(indices, dtype=np.int32),
                np.asarray(cost_rows, dtype=np.float64).reshape(len(cost_rows), dim),
            )

        indptr, indices, costs = one_direction(False)
        if graph.directed:
            rev_indptr, rev_indices, rev_costs = one_direction(True)
        else:
            rev_indptr, rev_indices, rev_costs = indptr, indices, costs
        return cls(
            dim=dim,
            directed=graph.directed,
            node_ids=node_ids,
            indptr=indptr,
            indices=indices,
            costs=costs,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            rev_costs=rev_costs,
        )

    @classmethod
    def from_edges(cls, dim, nodes, edges) -> "CSRSnapshot":
        """Freeze an undirected edge list straight into a snapshot.

        Produces exactly the snapshot :meth:`from_graph` would for a
        :class:`MultiCostGraph` holding ``nodes`` plus ``edges``
        (``(u, v, cost)`` triples): parallel edges between the same
        endpoints are skyline-pruned with ``add_edge``'s
        dominated-or-equal/evict rule, and surviving cost lists sort
        into the canonical slot order — so the result is independent of
        edge insertion order.  The construction pipeline uses this to
        snapshot each cluster's removed-edge subgraph without paying
        per-edge graph-object churn.
        """
        from repro.paths.dominance import dominates, dominates_or_equal

        node_set = {int(n) for n in nodes}
        pair_costs: dict[tuple[int, int], list[tuple[float, ...]]] = {}
        for u, v, cost in edges:
            u, v = int(u), int(v)
            vec = tuple(float(c) for c in cost)
            key = (u, v) if u <= v else (v, u)
            node_set.add(u)
            node_set.add(v)
            existing = pair_costs.get(key)
            if existing is None:
                pair_costs[key] = [vec]
                continue
            if any(dominates_or_equal(kept, vec) for kept in existing):
                continue
            survivors = [kept for kept in existing if not dominates(vec, kept)]
            survivors.append(vec)
            survivors.sort()
            pair_costs[key] = survivors

        adjacency: dict[int, list[int]] = {n: [] for n in node_set}
        for u, v in pair_costs:
            adjacency[u].append(v)
            adjacency[v].append(u)

        node_ids = np.asarray(sorted(node_set), dtype=np.int64)
        dense_of = {int(orig): i for i, orig in enumerate(node_ids)}
        indptr = np.zeros(len(node_ids) + 1, dtype=np.int32)
        indices: list[int] = []
        cost_rows: list[tuple[float, ...]] = []
        for i, orig in enumerate(node_ids.tolist()):
            for nbr in sorted(adjacency[orig]):
                key = (orig, nbr) if orig <= nbr else (nbr, orig)
                for cost in pair_costs[key]:
                    indices.append(dense_of[nbr])
                    cost_rows.append(cost)
            indptr[i + 1] = len(indices)
        indices_arr = np.asarray(indices, dtype=np.int32)
        costs = np.asarray(cost_rows, dtype=np.float64).reshape(
            len(cost_rows), dim
        )
        return cls(
            dim=dim,
            directed=False,
            node_ids=node_ids,
            indptr=indptr,
            indices=indices_arr,
            costs=costs,
            rev_indptr=indptr,
            rev_indices=indices_arr,
            rev_costs=costs,
        )

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edge_slots(self) -> int:
        return len(self.indices)

    def dense_of(self, original: int) -> int:
        """The dense id of an original node id."""
        mapping = self._dense_of
        if mapping is None:
            mapping = self._dense_of = {
                int(orig): i for i, orig in enumerate(self.node_ids)
            }
        try:
            return mapping[original]
        except KeyError:
            raise NodeNotFoundError(original) from None

    def original_of(self, dense: int) -> int:
        """The original node id of a dense id."""
        return int(self.node_ids[dense])

    def node_mask(self, nodes, *, strict: bool = False) -> list[bool]:
        """A dense boolean mask over this snapshot's node space.

        ``mask[dense_id]`` is True iff the node's *original* id is in
        ``nodes``.  The restricted flat kernels probe the mask once per
        CSR slot, so it is a plain python list — scalar list indexing
        beats any array access at that grain.  Unknown nodes are
        skipped (they are unreachable in this snapshot anyway) unless
        ``strict`` is set, in which case they raise
        :class:`~repro.errors.NodeNotFoundError`.
        """
        mask = [False] * self.num_nodes
        for node in nodes:
            try:
                mask[self.dense_of(node)] = True
            except NodeNotFoundError:
                if strict:
                    raise
        return mask

    def adjacency_lists(self, *, reverse: bool = False) -> tuple[list[int], list[int]]:
        """``(indptr, indices)`` as plain python lists (memoized)."""
        cached = self._adj_lists.get(reverse)
        if cached is None:
            if reverse:
                cached = (self.rev_indptr.tolist(), self.rev_indices.tolist())
            else:
                cached = (self.indptr.tolist(), self.indices.tolist())
            self._adj_lists[reverse] = cached
        return cached

    def weight_lists(self, *, reverse: bool = False) -> list[list[float]]:
        """Per-dimension slot weights as python lists (memoized)."""
        cached = self._weight_lists.get(reverse)
        if cached is None:
            costs = self.rev_costs if reverse else self.costs
            cached = [costs[:, i].tolist() for i in range(self.dim)]
            self._weight_lists[reverse] = cached
        return cached

    def cost_tuples(self) -> list[tuple[float, ...]]:
        """Forward slot cost vectors as python float tuples (memoized)."""
        if self._cost_tuples is None:
            self._cost_tuples = [tuple(row) for row in self.costs.tolist()]
        return self._cost_tuples

    # ------------------------------------------------------------------
    # flat-buffer construction (repro.mp zero-copy sharing)
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes held by the snapshot's arrays (mirrors excluded)."""
        total = (
            self.node_ids.nbytes
            + self.indptr.nbytes
            + self.indices.nbytes
            + self.costs.nbytes
        )
        if self.directed:
            total += (
                self.rev_indptr.nbytes
                + self.rev_indices.nbytes
                + self.rev_costs.nbytes
            )
        return total

    def export_buffers(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The snapshot as ``(meta, buffers)`` — views, not copies.

        ``meta`` carries ``dim``/``directed``; ``buffers`` maps array
        names to the snapshot's own arrays (reverse arrays only for
        directed graphs, since undirected snapshots alias the forward
        ones).  Feed both to :meth:`from_buffers` to reconstruct, or to
        :func:`repro.accel.blob.write_pack` to publish into shared
        memory.
        """
        meta = {"dim": self.dim, "directed": self.directed}
        buffers = {
            "node_ids": self.node_ids,
            "indptr": self.indptr,
            "indices": self.indices,
            "costs": self.costs,
        }
        if self.directed:
            buffers["rev_indptr"] = self.rev_indptr
            buffers["rev_indices"] = self.rev_indices
            buffers["rev_costs"] = self.rev_costs
        return meta, buffers

    @classmethod
    def from_buffers(
        cls, meta: dict, buffers: dict[str, np.ndarray]
    ) -> "CSRSnapshot":
        """Rebuild a snapshot around existing buffers — zero copies.

        The arrays are wrapped as read-only views (a buffer-backed
        snapshot is shared state by construction; nobody may scribble on
        it).  Shapes and dtypes are validated so a torn or mislabelled
        segment fails loudly instead of mis-answering queries.
        """
        dim = int(meta["dim"])
        directed = bool(meta["directed"])
        if dim < 1:
            raise BuildError(f"buffer-backed snapshot has invalid dim {dim}")

        def view(name: str, dtype: str, *, allow_2d: bool = False) -> np.ndarray:
            try:
                array = buffers[name]
            except KeyError:
                raise BuildError(
                    f"buffer-backed snapshot missing array {name!r}"
                ) from None
            array = np.asarray(array)
            if array.dtype != np.dtype(dtype):
                raise BuildError(
                    f"array {name!r} has dtype {array.dtype}, expected {dtype}"
                )
            if array.ndim != (2 if allow_2d else 1):
                raise BuildError(
                    f"array {name!r} has {array.ndim} dimensions"
                )
            array = array.view()
            if array.flags.writeable:
                array.flags.writeable = False
            return array

        node_ids = view("node_ids", "int64")
        indptr = view("indptr", "int32")
        indices = view("indices", "int32")
        costs = view("costs", "float64", allow_2d=True)
        n = len(node_ids)
        if len(indptr) != n + 1:
            raise BuildError(
                f"indptr has {len(indptr)} entries for {n} nodes"
            )
        if int(indptr[-1]) != len(indices) or costs.shape != (len(indices), dim):
            raise BuildError("CSR buffer shapes are inconsistent")
        if directed:
            rev_indptr = view("rev_indptr", "int32")
            rev_indices = view("rev_indices", "int32")
            rev_costs = view("rev_costs", "float64", allow_2d=True)
            if len(rev_indptr) != n + 1 or rev_costs.shape != (
                len(rev_indices),
                dim,
            ):
                raise BuildError("reverse CSR buffer shapes are inconsistent")
        else:
            rev_indptr, rev_indices, rev_costs = indptr, indices, costs
        return cls(
            dim=dim,
            directed=directed,
            node_ids=node_ids,
            indptr=indptr,
            indices=indices,
            costs=costs,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            rev_costs=rev_costs,
        )

    def raw_nbytes(self) -> int:
        """Byte size of the raw (shareable) pack of this snapshot."""
        from repro.accel.blob import pack_nbytes

        meta, buffers = self.export_buffers()
        return pack_nbytes(buffers, meta)

    def write_raw_into(self, buffer) -> int:
        """Publish the snapshot into a writable buffer (shm segment)."""
        from repro.accel.blob import write_pack

        meta, buffers = self.export_buffers()
        return write_pack(buffer, buffers, meta)

    def to_raw_bytes(self) -> bytes:
        """The snapshot as a standalone raw pack (mmap-able verbatim)."""
        from repro.accel.blob import pack_bytes

        meta, buffers = self.export_buffers()
        return pack_bytes(buffers, meta)

    @classmethod
    def from_raw_buffer(cls, buffer) -> "CSRSnapshot":
        """Attach to a raw pack — shm segment, mmap view, or bytes.

        Zero-copy: the snapshot's arrays are read-only views into
        ``buffer``, which stays alive through their ``base`` chain.
        """
        from repro.accel.blob import read_pack

        meta, buffers = read_pack(buffer)
        return cls.from_buffers(meta, buffers)

    # ------------------------------------------------------------------
    # serialization (repro.store section payload)
    # ------------------------------------------------------------------

    def to_payload(self) -> bytes:
        """Encode the snapshot as a store section payload."""
        writer = ByteWriter()
        writer.uvarint(self.dim)
        writer.uvarint(1 if self.directed else 0)
        writer.uvarint(self.num_nodes)
        writer.deltas(self.node_ids.tolist())
        writer.uvarint(self.num_edge_slots)
        writer.deltas(self.indptr.tolist())
        writer.deltas(self.indices.tolist())
        writer.floats(self.costs.reshape(-1).tolist())
        if self.directed:
            writer.uvarint(len(self.rev_indices))
            writer.deltas(self.rev_indptr.tolist())
            writer.deltas(self.rev_indices.tolist())
            writer.floats(self.rev_costs.reshape(-1).tolist())
        return writer.payload()

    @classmethod
    def from_payload(cls, payload: bytes) -> "CSRSnapshot":
        """Decode a snapshot from a store section payload."""
        reader = ByteReader(payload)
        dim = reader.uvarint()
        if dim < 1:
            raise BuildError(f"csr section carries invalid dim {dim}")
        directed = bool(reader.uvarint())
        n = reader.uvarint()
        node_ids = np.asarray(reader.deltas(n), dtype=np.int64)
        slots = reader.uvarint()
        indptr = np.asarray(reader.deltas(n + 1), dtype=np.int32)
        indices = np.asarray(reader.deltas(slots), dtype=np.int32)
        costs = np.asarray(reader.floats(slots * dim), dtype=np.float64).reshape(
            slots, dim
        )
        if directed:
            rev_slots = reader.uvarint()
            rev_indptr = np.asarray(reader.deltas(n + 1), dtype=np.int32)
            rev_indices = np.asarray(reader.deltas(rev_slots), dtype=np.int32)
            rev_costs = np.asarray(
                reader.floats(rev_slots * dim), dtype=np.float64
            ).reshape(rev_slots, dim)
        else:
            rev_indptr, rev_indices, rev_costs = indptr, indices, costs
        return cls(
            dim=dim,
            directed=directed,
            node_ids=node_ids,
            indptr=indptr,
            indices=indices,
            costs=costs,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            rev_costs=rev_costs,
        )

    def same_topology(self, other: "CSRSnapshot") -> bool:
        """Array-for-array equality (testing aid)."""
        return (
            self.dim == other.dim
            and self.directed == other.directed
            and np.array_equal(self.node_ids, other.node_ids)
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.costs, other.costs)
            and np.array_equal(self.rev_indptr, other.rev_indptr)
            and np.array_equal(self.rev_indices, other.rev_indices)
            and np.array_equal(self.rev_costs, other.rev_costs)
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"CSRSnapshot({kind}, dim={self.dim}, |V|={self.num_nodes}, "
            f"slots={self.num_edge_slots})"
        )
