"""The operational event log: bounded, structured, exportable.

Metrics say *how much* and traces say *where the time went*; neither
answers "what happened to the serving stack and when".  An
:class:`EventLog` records discrete operational facts — a generation
swap began, a worker died, an admission window stalled, a cache
generation was invalidated, a snapshot landed on disk — as structured
:class:`Event` records in a bounded ring buffer, with:

* **monotonic timestamps** (``time.monotonic``) for ordering and
  intervals, plus a wall-clock stamp for humans and log correlation;
* an optional **JSONL sink**: every event appended as one JSON line to
  a file, surviving the ring buffer's bound (I/O failures are
  swallowed — observability must never take serving down);
* optional **registry counters**: each ``emit("worker.death", ...)``
  also increments ``events.worker.death`` in a
  :class:`~repro.service.metrics.MetricsRegistry`, so scrape-based
  alerting sees event rates without parsing the log.

Like the tracer, the process-wide default is **disabled**: ``emit`` on
a disabled log costs one attribute check.  Call sites accept
``events=None`` and resolve through :func:`resolve_event_log`;
installing an enabled log with :func:`set_event_log` /
:func:`use_event_log` turns the whole stack's event stream on.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator


@dataclass(frozen=True)
class Event:
    """One operational fact: what, when, and its structured details."""

    seq: int
    kind: str
    monotonic: float
    wall: float
    attrs: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        """The event as one plain JSON-able dict (the JSONL row)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "monotonic_seconds": self.monotonic,
            "wall_unix": self.wall,
            "attrs": self.attrs,
        }


class EventLog:
    """A thread-safe bounded ring buffer of structured events.

    Parameters
    ----------
    capacity:
        Ring-buffer bound; older events fall off (the JSONL sink, when
        configured, keeps the full stream).
    enabled:
        When False, :meth:`emit` is a no-op after one attribute check —
        the zero-cost off switch mirroring the disabled tracer.
    sink:
        Path of a JSONL file events are appended to as they happen.
    registry:
        A :class:`~repro.service.metrics.MetricsRegistry` whose
        ``events.<kind>`` counters track event rates.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        enabled: bool = True,
        sink: Path | str | None = None,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be at least 1")
        self.enabled = enabled
        self.capacity = capacity
        self.registry = registry
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_handle = None
        self._sink_broken = False
        self._subscribers: list[Callable[[Event], None]] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def emit(self, kind: str, **attrs) -> Event | None:
        """Record one event; returns it (None when the log is off)."""
        if not self.enabled:
            return None
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                kind=kind,
                monotonic=time.monotonic(),
                wall=time.time(),
                attrs=attrs,
            )
            self._events.append(event)
            self._write_sink(event)
        if self.registry is not None:
            self.registry.increment(f"events.{kind}")
        for subscriber in self._subscribers:
            try:
                subscriber(event)
            except Exception:
                continue  # a broken listener must not break serving
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Call ``callback`` with every future event (errors ignored)."""
        self._subscribers.append(callback)

    def _write_sink(self, event: Event) -> None:
        # Called under the lock.  First failure disables the sink for
        # the rest of the process — a full disk must not turn every
        # emit into a raised OSError.
        if self._sink_path is None or self._sink_broken:
            return
        try:
            if self._sink_handle is None:
                self._sink_handle = self._sink_path.open(
                    "a", encoding="utf-8"
                )
            self._sink_handle.write(
                json.dumps(event.to_doc(), sort_keys=True) + "\n"
            )
            self._sink_handle.flush()
        except OSError:
            self._sink_broken = True
            self._sink_handle = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def tail(self, count: int = 50) -> list[Event]:
        """The newest ``count`` events, oldest first."""
        with self._lock:
            events = list(self._events)
        return events[-count:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the log's lifetime (ring bound ignored)."""
        with self._lock:
            return self._seq

    def snapshot(self, *, tail: int = 50) -> dict:
        """Recent events plus lifetime accounting, as one plain dict."""
        with self._lock:
            events = list(self._events)[-tail:]
            total = self._seq
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "total_emitted": total,
            "buffered": len(events),
            "events": [event.to_doc() for event in events],
        }

    def clear(self) -> None:
        """Drop buffered events (the sequence counter keeps counting)."""
        with self._lock:
            self._events.clear()

    def close(self) -> None:
        """Flush and close the JSONL sink, if one is open."""
        with self._lock:
            if self._sink_handle is not None:
                try:
                    self._sink_handle.close()
                except OSError:
                    pass
                self._sink_handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventLog {'on' if self.enabled else 'off'} "
            f"{len(self)}/{self.capacity} buffered, seq={self.total_emitted}>"
        )


# ----------------------------------------------------------------------
# process-wide default (mirrors the tracer's)
# ----------------------------------------------------------------------

_default_event_log = EventLog(enabled=False)
_default_lock = threading.Lock()


def get_event_log() -> EventLog:
    """The process-wide event log (a disabled no-op unless replaced)."""
    return _default_event_log


def set_event_log(log: EventLog | None) -> EventLog:
    """Install ``log`` process-wide; None restores the disabled
    default.  Returns the log now in effect."""
    global _default_event_log
    with _default_lock:
        _default_event_log = (
            log if log is not None else EventLog(enabled=False)
        )
        return _default_event_log


@contextmanager
def use_event_log(log: EventLog) -> Iterator[EventLog]:
    """Temporarily install ``log`` process-wide."""
    previous = get_event_log()
    set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)


def resolve_event_log(log: EventLog | None) -> EventLog:
    """The log an instrumented call site should use (None → default)."""
    return log if log is not None else _default_event_log
