"""Span exporters: Chrome trace JSON, flat dumps, metrics aggregation.

Three consumers cover the ways the collected spans get read:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (open ``chrome://tracing`` or Perfetto
  and load the file).  Every span becomes one complete ("X") event
  with microsecond timestamps relative to the tracer epoch; span
  attributes and counters travel in ``args``.
* :func:`flat_spans` — a flat list of plain dicts (name, timing,
  depth, thread, attrs, counters) for ad-hoc analysis and JSON dumps.
* :func:`aggregate_spans` — per-span-name duration histograms and
  counter totals folded into a
  :class:`~repro.service.metrics.MetricsRegistry`, e.g. every
  ``query.phase.grow_s`` span observes the histogram of the same name.
* :func:`merge_process_traces` — span dumps from many processes (see
  :func:`repro.obs.context.dump_process_spans`) merged into a single
  multi-``pid`` Chrome trace with every process's lane aligned on the
  wall clock and flow arrows linking dispatch spans to the worker
  spans they caused.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.obs.context import walk_span_docs
from repro.obs.tracer import Span, Tracer

# Keys the trace_event format requires on every complete event.
CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")

# The attribute a remote-parented root span carries: the span id (in
# another process) under which this subtree logically belongs.
PARENT_SPAN_ATTR = "parent_span"


def _spans_of(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.roots()
    return list(source)


def chrome_trace(source: Tracer | Iterable[Span], *, pid: int = 0) -> dict:
    """The collected spans as a Chrome ``trace_event`` document.

    ``source`` is a tracer (its finished roots are exported) or an
    iterable of root spans.  Returns the JSON-object form
    (``{"traceEvents": [...]}``), ready for ``json.dump``.
    """
    events: list[dict] = []
    thread_names: dict[int, str] = {}
    for root in _spans_of(source):
        for span, _depth in root.walk():
            if span.end is None:
                continue  # still open; not representable as "X"
            args: dict = dict(span.attrs)
            if span.counters:
                args.update(span.counters)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
            thread_names.setdefault(span.thread_id, span.thread_name)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(thread_names.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Tracer | Iterable[Span], path: Path | str, *, pid: int = 0
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source, pid=pid), indent=1))
    return path


def merge_process_traces(dumps: Iterable[dict]) -> dict:
    """Span dumps from many processes as one Chrome trace document.

    Each dump is the output of
    :func:`repro.obs.context.dump_process_spans`: a pid, a display
    label, the producing tracer's ``epoch_wall``, and a list of span
    documents with tracer-relative timestamps.  The merged document
    puts every process on its own ``pid`` lane, shifted so all lanes
    share the earliest dump's epoch as time zero — overlapping
    dispatcher/worker activity therefore renders truly overlapped.

    Cross-process parenting: a root span document whose attrs carry
    ``parent_span`` (the dispatch span's id, propagated via
    :class:`~repro.obs.context.TraceContext`) gets a flow arrow from
    that parent event to itself, so Perfetto draws the dispatch →
    worker causality even though the spans live on different lanes.

    Every emitted event — complete ("X"), metadata ("M"), and flow
    ("s"/"f") — carries all of :data:`CHROME_REQUIRED_KEYS`.
    """
    dumps = list(dumps)
    epochs = [d["epoch_wall"] for d in dumps]
    base_epoch = min(epochs) if epochs else 0.0

    events: list[dict] = []
    flow_targets: list[dict] = []  # events awaiting a parent lookup
    span_locations: dict[str, dict] = {}  # span_id -> its "X" event
    process_meta: list[dict] = []
    seen_pids: set[int] = set()

    for dump in dumps:
        pid = dump["pid"]
        offset_us = (dump["epoch_wall"] - base_epoch) * 1e6
        if pid not in seen_pids:
            seen_pids.add(pid)
            process_meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "dur": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": dump.get("label", f"pid-{pid}")},
                }
            )
        thread_names: dict[int, str] = {}
        for root in dump.get("spans", ()):
            for doc, _depth in walk_span_docs(root):
                if doc.get("end") is None:
                    continue
                args: dict = dict(doc.get("attrs", {}))
                args.update(doc.get("counters", {}))
                args["span_id"] = doc.get("span_id")
                event = {
                    "name": doc["name"],
                    "ph": "X",
                    "ts": round(doc["start"] * 1e6 + offset_us, 3),
                    "dur": round((doc["end"] - doc["start"]) * 1e6, 3),
                    "pid": pid,
                    "tid": doc.get("thread_id", 0),
                    "args": args,
                }
                events.append(event)
                span_id = doc.get("span_id")
                if span_id is not None:
                    span_locations[span_id] = event
                thread_names.setdefault(
                    doc.get("thread_id", 0), doc.get("thread_name", "")
                )
            parent_id = root.get("attrs", {}).get(PARENT_SPAN_ATTR)
            if parent_id is not None and root.get("end") is not None:
                flow_targets.append(
                    {
                        "parent": parent_id,
                        "pid": pid,
                        "tid": root.get("thread_id", 0),
                        "ts": round(root["start"] * 1e6 + offset_us, 3),
                        "trace_id": root.get("attrs", {}).get("trace_id"),
                    }
                )
        for tid, name in sorted(thread_names.items()):
            process_meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "dur": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )

    flows: list[dict] = []
    for number, target in enumerate(flow_targets):
        parent_event = span_locations.get(target["parent"])
        if parent_event is None:
            continue  # the parent's dump was not collected; no arrow
        flow_id = f"0x{number + 1:x}"
        common = {"cat": "dispatch", "name": "mp.dispatch", "dur": 0}
        flows.append(
            {
                **common,
                "ph": "s",
                "id": flow_id,
                "ts": parent_event["ts"],
                "pid": parent_event["pid"],
                "tid": parent_event["tid"],
            }
        )
        flows.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": target["ts"],
                "pid": target["pid"],
                "tid": target["tid"],
            }
        )
    return {
        "traceEvents": process_meta + events + flows,
        "displayTimeUnit": "ms",
    }


def write_merged_trace(dumps: Iterable[dict], path: Path | str) -> Path:
    """Serialize :func:`merge_process_traces` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(merge_process_traces(dumps), indent=1))
    return path


def flat_spans(source: Tracer | Iterable[Span]) -> list[dict]:
    """Every span as one flat dict, depth-first per root."""
    rows: list[dict] = []
    for root in _spans_of(source):
        for span, depth in root.walk():
            rows.append(
                {
                    "name": span.name,
                    "depth": depth,
                    "start_seconds": span.start,
                    "duration_seconds": span.duration,
                    "thread": span.thread_name,
                    "thread_id": span.thread_id,
                    "attrs": dict(span.attrs),
                    "counters": dict(span.counters),
                }
            )
    return rows


def aggregate_spans(
    source: Tracer | Iterable[Span], registry, *, prefix: str = ""
) -> None:
    """Fold spans into ``registry`` (duck-typed MetricsRegistry).

    Each span observes the histogram ``<prefix><span name>`` with its
    duration in seconds; each span counter ``c`` increments the
    registry counter ``<prefix><span name>.<c>`` by its value.
    """
    for root in _spans_of(source):
        for span, _depth in root.walk():
            if span.end is None:
                continue
            registry.observe(f"{prefix}{span.name}", span.duration)
            for name, amount in span.counters.items():
                registry.increment(f"{prefix}{span.name}.{name}", int(amount))


def summarize_roots(source: Tracer | Iterable[Span]) -> dict[str, dict]:
    """Quick per-name totals: count, total seconds, counter sums.

    A dependency-free rollup for bench telemetry and CLI summaries
    (no MetricsRegistry needed).
    """
    rollup: dict[str, dict] = {}
    for root in _spans_of(source):
        for span, _depth in root.walk():
            if span.end is None:
                continue
            doc = rollup.setdefault(
                span.name, {"count": 0, "total_seconds": 0.0, "counters": {}}
            )
            doc["count"] += 1
            doc["total_seconds"] += span.duration
            for name, amount in span.counters.items():
                doc["counters"][name] = doc["counters"].get(name, 0) + amount
    return rollup
