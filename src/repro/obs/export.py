"""Span exporters: Chrome trace JSON, flat dumps, metrics aggregation.

Three consumers cover the ways the collected spans get read:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (open ``chrome://tracing`` or Perfetto
  and load the file).  Every span becomes one complete ("X") event
  with microsecond timestamps relative to the tracer epoch; span
  attributes and counters travel in ``args``.
* :func:`flat_spans` — a flat list of plain dicts (name, timing,
  depth, thread, attrs, counters) for ad-hoc analysis and JSON dumps.
* :func:`aggregate_spans` — per-span-name duration histograms and
  counter totals folded into a
  :class:`~repro.service.metrics.MetricsRegistry`, e.g. every
  ``query.phase.grow_s`` span observes the histogram of the same name.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.obs.tracer import Span, Tracer

# Keys the trace_event format requires on every complete event.
CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def _spans_of(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.roots()
    return list(source)


def chrome_trace(source: Tracer | Iterable[Span], *, pid: int = 0) -> dict:
    """The collected spans as a Chrome ``trace_event`` document.

    ``source`` is a tracer (its finished roots are exported) or an
    iterable of root spans.  Returns the JSON-object form
    (``{"traceEvents": [...]}``), ready for ``json.dump``.
    """
    events: list[dict] = []
    thread_names: dict[int, str] = {}
    for root in _spans_of(source):
        for span, _depth in root.walk():
            if span.end is None:
                continue  # still open; not representable as "X"
            args: dict = dict(span.attrs)
            if span.counters:
                args.update(span.counters)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
            thread_names.setdefault(span.thread_id, span.thread_name)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(thread_names.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Tracer | Iterable[Span], path: Path | str, *, pid: int = 0
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source, pid=pid), indent=1))
    return path


def flat_spans(source: Tracer | Iterable[Span]) -> list[dict]:
    """Every span as one flat dict, depth-first per root."""
    rows: list[dict] = []
    for root in _spans_of(source):
        for span, depth in root.walk():
            rows.append(
                {
                    "name": span.name,
                    "depth": depth,
                    "start_seconds": span.start,
                    "duration_seconds": span.duration,
                    "thread": span.thread_name,
                    "thread_id": span.thread_id,
                    "attrs": dict(span.attrs),
                    "counters": dict(span.counters),
                }
            )
    return rows


def aggregate_spans(
    source: Tracer | Iterable[Span], registry, *, prefix: str = ""
) -> None:
    """Fold spans into ``registry`` (duck-typed MetricsRegistry).

    Each span observes the histogram ``<prefix><span name>`` with its
    duration in seconds; each span counter ``c`` increments the
    registry counter ``<prefix><span name>.<c>`` by its value.
    """
    for root in _spans_of(source):
        for span, _depth in root.walk():
            if span.end is None:
                continue
            registry.observe(f"{prefix}{span.name}", span.duration)
            for name, amount in span.counters.items():
                registry.increment(f"{prefix}{span.name}.{name}", int(amount))


def summarize_roots(source: Tracer | Iterable[Span]) -> dict[str, dict]:
    """Quick per-name totals: count, total seconds, counter sums.

    A dependency-free rollup for bench telemetry and CLI summaries
    (no MetricsRegistry needed).
    """
    rollup: dict[str, dict] = {}
    for root in _spans_of(source):
        for span, _depth in root.walk():
            if span.end is None:
                continue
            doc = rollup.setdefault(
                span.name, {"count": 0, "total_seconds": 0.0, "counters": {}}
            )
            doc["count"] += 1
            doc["total_seconds"] += span.duration
            for name, amount in span.counters.items():
                doc["counters"][name] = doc["counters"].get(name, 0) + amount
    return rollup
