"""repro.obs — tracing and instrumentation for the backbone library.

The paper's evaluation reasons about *where* time goes: index
construction vs. the three query phases (grow S, grow T, connect
through G_L) and search internals like labels expanded and dominance
checks.  This package makes those quantities first-class:

* :class:`Tracer` / :class:`Span` — nested ``span()`` context managers
  with thread-local stacks and a zero-overhead disabled default
  (:mod:`repro.obs.tracer`);
* exporters — Chrome ``trace_event`` JSON, flat span dumps, and
  aggregation into a :class:`~repro.service.metrics.MetricsRegistry`
  (:mod:`repro.obs.export`).

Instrumented call sites across :mod:`repro.core`, :mod:`repro.search`,
and :mod:`repro.service` accept ``tracer=None`` and resolve it through
:func:`get_tracer`, so installing an enabled tracer process-wide
(:func:`set_tracer` / :func:`use_tracer`) traces everything without
threading a handle through every call::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        index.query(source, target)
    write_chrome_trace(tracer, "trace.json")
"""

from repro.obs.export import (
    CHROME_REQUIRED_KEYS,
    aggregate_spans,
    chrome_trace,
    flat_spans,
    summarize_roots,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    resolve_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CHROME_REQUIRED_KEYS",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "aggregate_spans",
    "chrome_trace",
    "flat_spans",
    "get_tracer",
    "resolve_tracer",
    "set_tracer",
    "summarize_roots",
    "use_tracer",
    "write_chrome_trace",
]
