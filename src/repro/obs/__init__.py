"""repro.obs — tracing and instrumentation for the backbone library.

The paper's evaluation reasons about *where* time goes: index
construction vs. the three query phases (grow S, grow T, connect
through G_L) and search internals like labels expanded and dominance
checks.  This package makes those quantities first-class:

* :class:`Tracer` / :class:`Span` — nested ``span()`` context managers
  with thread-local stacks and a zero-overhead disabled default
  (:mod:`repro.obs.tracer`);
* exporters — Chrome ``trace_event`` JSON, flat span dumps, and
  aggregation into a :class:`~repro.service.metrics.MetricsRegistry`
  (:mod:`repro.obs.export`);
* cross-process propagation — :class:`TraceContext` rides on mp task
  messages, workers ship span dumps back, and
  :func:`merge_process_traces` renders everything on one multi-``pid``
  timeline (:mod:`repro.obs.context`);
* the operational event log — :class:`EventLog` ring buffer of
  structured serving-stack events (:mod:`repro.obs.events`);
* live telemetry — :class:`LiveStatus` status file / HTTP endpoints
  with rolling-window percentiles (:mod:`repro.obs.live`).

Instrumented call sites across :mod:`repro.core`, :mod:`repro.search`,
and :mod:`repro.service` accept ``tracer=None`` and resolve it through
:func:`get_tracer`, so installing an enabled tracer process-wide
(:func:`set_tracer` / :func:`use_tracer`) traces everything without
threading a handle through every call::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        index.query(source, target)
    write_chrome_trace(tracer, "trace.json")
"""

from repro.obs.context import (
    SPAN_DUMP_VERSION,
    TraceContext,
    dump_process_spans,
    merge_dump_into,
    span_doc,
    walk_span_docs,
)
from repro.obs.events import (
    Event,
    EventLog,
    get_event_log,
    resolve_event_log,
    set_event_log,
    use_event_log,
)
from repro.obs.export import (
    CHROME_REQUIRED_KEYS,
    PARENT_SPAN_ATTR,
    aggregate_spans,
    chrome_trace,
    flat_spans,
    merge_process_traces,
    summarize_roots,
    write_chrome_trace,
    write_merged_trace,
)
from repro.obs.live import LiveStatus, RollingWindow, StatusServer
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    resolve_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CHROME_REQUIRED_KEYS",
    "Event",
    "EventLog",
    "LiveStatus",
    "NULL_SPAN",
    "PARENT_SPAN_ATTR",
    "RollingWindow",
    "SPAN_DUMP_VERSION",
    "Span",
    "StatusServer",
    "TraceContext",
    "Tracer",
    "aggregate_spans",
    "chrome_trace",
    "dump_process_spans",
    "flat_spans",
    "get_event_log",
    "get_tracer",
    "merge_dump_into",
    "merge_process_traces",
    "resolve_event_log",
    "resolve_tracer",
    "set_event_log",
    "set_tracer",
    "span_doc",
    "summarize_roots",
    "use_event_log",
    "use_tracer",
    "walk_span_docs",
    "write_chrome_trace",
    "write_merged_trace",
]
