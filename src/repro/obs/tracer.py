"""Lightweight tracing: nested spans with attributes and counters.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans nest
through a *thread-local* stack, so worker threads (e.g. the batch
executor's pool) each build their own independent span trees; finished
root spans from every thread collect into one shared, lock-guarded
list that the exporters (:mod:`repro.obs.export`) read.

The process-wide default tracer is **disabled**: ``span()`` on a
disabled tracer returns a shared no-op span after a single attribute
check, so instrumented hot paths pay essentially nothing when tracing
is off.  Instrumented functions therefore accept ``tracer=None`` and
resolve it with :func:`resolve_tracer`; callers opt in either by
passing an enabled :class:`Tracer` explicitly or by installing one
process-wide with :func:`set_tracer` / :func:`use_tracer`.

Span timestamps come from ``time.perf_counter`` and are stored relative
to the tracer's epoch (its construction instant), which is what the
Chrome ``trace_event`` exporter needs.  The tracer also records the
wall-clock time of that instant (``epoch_wall``), so span dumps from
*different processes* — each with its own perf_counter origin — can be
aligned onto one timeline by
:func:`repro.obs.export.merge_process_traces`.

Processes that ``fork()`` (the :mod:`repro.mp` worker cohorts) would
otherwise inherit the parent's thread-local span stacks and collected
roots, corrupting nesting and double-reporting spans; every tracer
therefore registers itself in a weak set and an ``os.register_at_fork``
hook resets them all in the child (fresh stacks, empty roots, new
epoch).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
import weakref
from contextlib import contextmanager
from typing import Iterator

# Process-unique span ids: "<pid hex>.<seq hex>".  The pid component
# keeps ids unique across the processes whose dumps merge into one
# trace; the counter restarts per process but the pid disambiguates.
_span_counter = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_span_counter):x}"


class _NullSpan:
    """The shared do-nothing span returned by disabled tracers.

    Supports the full :class:`Span` surface (context manager, ``set``,
    ``count``) as no-ops, and is stateless so one instance serves every
    call site concurrently.
    """

    __slots__ = ()

    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def begin(self, parent=None, *, at: float | None = None) -> "_NullSpan":
        return self

    def finish(self, *, at: float | None = None) -> None:
        pass

    @property
    def span_id(self) -> None:
        return None

    @property
    def duration(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Span:
    """One timed, named region of work with attributes and counters.

    Use as a context manager; entering records the start time and
    pushes the span onto the owning tracer's thread-local stack, so
    spans opened inside the ``with`` body become children.
    """

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "children",
        "start",
        "end",
        "thread_id",
        "thread_name",
        "parent",
        "span_id",
        "_tracer",
    )

    enabled = True

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.start = 0.0
        self.end: float | None = None
        self.thread_id = 0
        self.thread_name = ""
        self.parent: Span | None = None
        self.span_id = _new_span_id()
        self._tracer = tracer

    def __enter__(self) -> "Span":
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self._tracer._push(self)
        self.start = time.perf_counter() - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter() - self._tracer.epoch
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # ------------------------------------------------------------------
    # manual lifecycle (spans that outlive one stack frame)
    # ------------------------------------------------------------------

    def begin(self, parent: "Span | None" = None, *, at: float | None = None) -> "Span":
        """Start the span without touching the thread-local stack.

        For spans whose extent does not match a ``with`` block — e.g.
        a dispatch span opened when a task is queued to a worker and
        finished when its reply arrives, while other dispatch spans
        open and close in between.  ``parent`` attaches the span to an
        already open span's subtree; ``at`` overrides the start time
        (tracer-relative seconds, see :meth:`Tracer.at_wall`).  Spans
        begun this way never become implicit parents of ``with`` spans.
        """
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        if parent is not None and parent.enabled:
            self.parent = parent
            parent.children.append(self)
        self.start = (
            at if at is not None
            else time.perf_counter() - self._tracer.epoch
        )
        return self

    def finish(self, *, at: float | None = None) -> None:
        """Close a span started with :meth:`begin`.

        Parentless spans are published as roots; children are already
        reachable through their parent.
        """
        self.end = (
            at if at is not None
            else time.perf_counter() - self._tracer.epoch
        )
        if self.parent is None:
            with self._tracer._lock:
                self._tracer._roots.append(self)

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> None:
        """Attach or overwrite span attributes."""
        self.attrs.update(attrs)

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the span-local counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def walk(self) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` pairs, this span first (depth 0)."""
        stack: list[tuple[Span, int]] = [(self, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} {self.duration * 1e3:.3f}ms "
            f"children={len(self.children)}>"
        )


class Tracer:
    """Collects span trees per thread; disabled by default everywhere.

    Parameters
    ----------
    enabled:
        When False, :meth:`span` returns the shared :data:`NULL_SPAN`
        after one attribute check — the no-overhead off switch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        # The wall-clock instant of the epoch, letting dumps from
        # different processes (each with its own perf_counter origin)
        # align on one timeline.
        self.epoch_wall = time.time()
        self.trace_id = uuid.uuid4().hex[:16]
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        _live_tracers.add(self)

    def at_wall(self, wall_timestamp: float) -> float:
        """A wall-clock instant as tracer-relative seconds.

        Lets a span be anchored at a moment another process observed
        (e.g. the dispatcher's queue-send time) via ``begin(at=...)``.
        """
        return wall_timestamp - self.epoch_wall

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span | _NullSpan:
        """A new span named ``name``; nest it with ``with``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span on this thread, or None."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent = stack[-1]
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mismatched exits (e.g. a generator finalized late):
        # unwind to the span being closed rather than corrupting state.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span.parent is None:
            # A parentless span is a root; nested spans stay reachable
            # through their parent's ``children`` instead.
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished root spans from every thread, in finish order."""
        with self._lock:
            return list(self._roots)

    def drain(self) -> list[Span]:
        """Atomically take (and clear) the finished root spans.

        The worker-process serving loop drains after every task so each
        reply ships exactly the spans that task produced.
        """
        with self._lock:
            roots = list(self._roots)
            self._roots.clear()
        return roots

    def reset(self) -> None:
        """Drop every collected root span (open spans are unaffected)."""
        with self._lock:
            self._roots.clear()

    def reset_after_fork(self) -> None:
        """Discard state inherited across ``fork()``.

        A forked child inherits the parent's thread-local span stacks
        (with spans that belong to parent threads that do not exist in
        the child), its collected roots (already reported there), and
        an epoch measured in the parent.  Everything restarts: fresh
        stacks, empty roots, a new epoch/epoch_wall pair, a new
        trace_id, and a fresh lock (the inherited one may have been
        held by a non-forking thread at fork time).
        """
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots = []
        self.epoch = time.perf_counter()
        self.epoch_wall = time.time()
        self.trace_id = uuid.uuid4().hex[:16]

    def aggregate_into(self, registry, *, prefix: str = "") -> None:
        """Fold collected spans into a metrics registry.

        Convenience wrapper over
        :func:`repro.obs.export.aggregate_spans`.
        """
        from repro.obs.export import aggregate_spans

        aggregate_spans(self.roots(), registry, prefix=prefix)


# ----------------------------------------------------------------------
# fork safety
# ----------------------------------------------------------------------

# Every live tracer, weakly held, so the at-fork hook can reset them
# all in the child without keeping dead tracers alive.
_live_tracers: "weakref.WeakSet[Tracer]" = weakref.WeakSet()


def _reset_tracers_in_child() -> None:
    for tracer in list(_live_tracers):
        tracer.reset_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_tracers_in_child)


# ----------------------------------------------------------------------
# process-wide default
# ----------------------------------------------------------------------

_default_tracer = Tracer(enabled=False)
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (a disabled no-op unless replaced)."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` process-wide; None restores the disabled
    default.  Returns the tracer now in effect."""
    global _default_tracer
    with _default_lock:
        _default_tracer = tracer if tracer is not None else Tracer(enabled=False)
        return _default_tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` process-wide."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def resolve_tracer(tracer: Tracer | None) -> Tracer:
    """The tracer an instrumented function should use.

    ``None`` resolves to the process-wide default, so instrumentation
    costs one global read plus one attribute check when tracing is off.
    """
    return tracer if tracer is not None else _default_tracer
