"""Live runtime telemetry: a status file, rolling windows, HTTP endpoints.

The metrics registry accumulates since process start; operations wants
*now*: what were p50/p95/p99 over the last minute, which workers are
alive, how stale is each worker's snapshot generation, how deep is the
in-flight window.  This module provides that, stdlib-only:

* :class:`RollingWindow` — observations with timestamps, pruned to a
  sliding time window, summarized as count/mean/p50/p95/p99.
* :class:`LiveStatus` — named rolling windows plus registered *status
  providers* (callables returning plain dicts, e.g.
  ``SkylineQueryEngine.runtime_status`` and
  ``MPBatchServer.runtime_status``).  A background thread periodically
  renders everything into one JSON document and **atomically** writes
  it to a status file (tmp + ``os.replace``), so a reader never sees a
  torn document.  ``repro status <file>`` pretty-prints it.
* :class:`StatusServer` — an optional ``http.server`` thread serving
  ``/health``, ``/status`` (the live JSON document), ``/metrics``
  (Prometheus text via ``MetricsRegistry.to_text``), and ``/events``
  (the event log's recent ring).  ``repro status http://host:port``
  reads it remotely.

Everything here is advisory-read-only: provider exceptions are
captured into the document instead of propagating, and status-file
write failures are counted, not raised — telemetry must never take
serving down.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable

_WINDOW_PERCENTILES = (0.50, 0.95, 0.99)


class RollingWindow:
    """Timestamped observations pruned to a sliding time window.

    Percentiles describe only observations newer than
    ``window_seconds``; ``max_samples`` bounds memory under burst load
    (oldest samples drop first, which under a full buffer shortens the
    effective window rather than biasing the distribution).
    """

    __slots__ = ("window_seconds", "_samples", "_lock")

    def __init__(
        self, window_seconds: float = 60.0, *, max_samples: int = 4096
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self._samples: deque[tuple[float, float]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()

    def observe(self, value: float, *, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._samples.append((now, float(value)))
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def values(self, *, now: float | None = None) -> list[float]:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._prune(now)
            return [value for _stamp, value in self._samples]

    def summary(self, *, now: float | None = None) -> dict:
        """count/mean/min/max plus p50/p95/p99 over the live window."""
        values = sorted(self.values(now=now))
        doc: dict = {
            "window_seconds": self.window_seconds,
            "count": len(values),
            "mean": sum(values) / len(values) if values else 0.0,
            "min": values[0] if values else 0.0,
            "max": values[-1] if values else 0.0,
        }
        for q in _WINDOW_PERCENTILES:
            key = f"p{int(q * 100)}"
            if values:
                rank = max(
                    0, min(len(values) - 1, math.ceil(q * len(values)) - 1)
                )
                doc[key] = values[rank]
            else:
                doc[key] = 0.0
        return doc


StatusProvider = Callable[[], dict]


class LiveStatus:
    """One process's live operational picture, continuously published.

    Parameters
    ----------
    interval_seconds:
        How often the background thread re-renders and republishes.
    status_file:
        Where the JSON document lands (atomic replace per write);
        None means no file — e.g. HTTP-only serving.
    window_seconds:
        Sliding window for every :meth:`observe` series.
    registry / events:
        Attached so :class:`StatusServer` can expose ``/metrics`` and
        ``/events``, and so the document carries headline counters.
    """

    def __init__(
        self,
        *,
        interval_seconds: float = 1.0,
        status_file: Path | str | None = None,
        window_seconds: float = 60.0,
        registry=None,
        events=None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.status_file = (
            Path(status_file) if status_file is not None else None
        )
        self.window_seconds = window_seconds
        self.registry = registry
        self.events = events
        self._providers: dict[str, StatusProvider] = {}
        self._windows: dict[str, RollingWindow] = {}
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._writes = 0
        self._write_failures = 0
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # ------------------------------------------------------------------
    # publishing into the status
    # ------------------------------------------------------------------

    def register(self, name: str, provider: StatusProvider) -> None:
        """Add (or replace) a named status source.

        The provider is called at render time and must return a plain
        JSON-able dict; exceptions are captured into the document as
        ``{"error": ...}`` so one broken source cannot hide the rest.
        """
        with self._lock:
            self._providers[name] = provider

    def unregister(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named rolling window."""
        window = self._windows.get(name)
        if window is None:
            with self._lock:
                window = self._windows.get(name)
                if window is None:
                    window = self._windows[name] = RollingWindow(
                        self.window_seconds
                    )
        window.observe(value)

    # ------------------------------------------------------------------
    # rendering and writing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full live document as one plain dict."""
        with self._lock:
            providers = dict(self._providers)
            windows = dict(self._windows)
        sources: dict[str, dict] = {}
        for name, provider in providers.items():
            try:
                sources[name] = provider()
            except Exception as error:
                sources[name] = {
                    "error": f"{type(error).__name__}: {error}"
                }
        doc: dict = {
            "format": "repro-live-status",
            "version": 1,
            "pid": os.getpid(),
            "written_at_unix": time.time(),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "interval_seconds": self.interval_seconds,
            "windows": {
                name: window.summary() for name, window in windows.items()
            },
            "sources": sources,
            "status_writes": self._writes,
            "status_write_failures": self._write_failures,
        }
        if self.events is not None:
            doc["events"] = self.events.snapshot(tail=20)
        return doc

    def write_status(self, path: Path | str | None = None) -> Path | None:
        """Atomically publish the current document; returns the path.

        Readers polling the file never observe a partial document: the
        JSON is written to a sibling temp file and ``os.replace``d in.
        Returns None (and counts a failure) when the write fails or no
        path is configured.
        """
        target = Path(path) if path is not None else self.status_file
        if target is None:
            return None
        try:
            payload = json.dumps(self.snapshot(), indent=1, sort_keys=True)
            tmp = target.with_name(target.name + ".tmp")
            tmp.write_text(payload + "\n", encoding="utf-8")
            os.replace(tmp, target)
        except OSError:
            self._write_failures += 1
            return None
        self._writes += 1
        return target

    # ------------------------------------------------------------------
    # the background publisher
    # ------------------------------------------------------------------

    def start(self) -> "LiveStatus":
        """Start the periodic publisher thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-live-status", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_seconds):
            self.write_status()

    def stop(self, *, final_write: bool = True) -> None:
        """Stop the publisher; by default flush one last document."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval_seconds + 5.0)
            self._thread = None
        if final_write:
            self.write_status()

    def __enter__(self) -> "LiveStatus":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------

    def serve_http(
        self, port: int = 0, *, host: str = "127.0.0.1"
    ) -> "StatusServer":
        """Expose this status over HTTP; returns the running server.

        ``port=0`` binds an ephemeral port (read it back from
        ``server.port`` — the test-friendly default).
        """
        return StatusServer(self, host=host, port=port)


class _StatusHandler(BaseHTTPRequestHandler):
    """Routes /health, /status, /metrics, /events off a LiveStatus."""

    # Set by StatusServer on the server object; reached via self.server.
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # servers must not spam stderr per request

    def _send(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        live: LiveStatus = self.server.live  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path in ("/", "/health"):
                self._send(
                    200,
                    json.dumps(
                        {
                            "status": "ok",
                            "pid": os.getpid(),
                            "uptime_seconds": time.monotonic()
                            - live._started_monotonic,
                        }
                    ),
                    "application/json",
                )
            elif path == "/status":
                self._send(
                    200,
                    json.dumps(live.snapshot(), indent=1, sort_keys=True),
                    "application/json",
                )
            elif path == "/metrics":
                if live.registry is None:
                    self._send(404, "no metrics registry attached\n",
                               "text/plain")
                else:
                    self._send(
                        200, live.registry.to_text() + "\n",
                        "text/plain; version=0.0.4",
                    )
            elif path == "/events":
                if live.events is None:
                    self._send(404, "no event log attached\n", "text/plain")
                else:
                    self._send(
                        200,
                        json.dumps(
                            live.events.snapshot(), indent=1, sort_keys=True
                        ),
                        "application/json",
                    )
            else:
                self._send(404, f"unknown path {path}\n", "text/plain")
        except (BrokenPipeError, ConnectionResetError):
            pass  # the scraper hung up mid-response


class StatusServer:
    """A daemon-threaded HTTP front end over one :class:`LiveStatus`."""

    def __init__(
        self, live: LiveStatus, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.live = live
        self._server = ThreadingHTTPServer((host, port), _StatusHandler)
        self._server.daemon_threads = True
        self._server.live = live  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-status-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "StatusServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
