"""Cross-process trace propagation for the mp serving stack.

Tracing inside one process rides on thread-local span stacks
(:mod:`repro.obs.tracer`); across a process boundary the linkage has
to travel explicitly.  Two pieces make that work:

* :class:`TraceContext` — the portable identity of an in-flight
  operation: the batch's ``trace_id``, the id of the span that caused
  the hop (the dispatch span), and the wall-clock send instant.  The
  dispatcher pickles one onto every task message; the worker stamps it
  onto its local spans and responses.
* :func:`dump_process_spans` / span documents — a finished span tree
  as plain picklable dicts, bundled with the producing process's pid
  and wall-clock epoch.  Workers ship these back with task replies;
  :func:`repro.obs.export.merge_process_traces` aligns the dumps from
  every pid onto one timeline using the ``epoch_wall`` stamps.

Span documents are self-contained: ``start``/``end`` stay relative to
the *producing* tracer's epoch, and the dump's ``epoch_wall`` says
where that epoch sits on the shared wall clock.  Merging therefore
never needs the worker processes to agree on perf_counter origins —
only on ``time.time()``, which forked processes on one host share.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.obs.tracer import Span, Tracer

# Bump when the span-document shape changes incompatibly.
SPAN_DUMP_VERSION = 1


@dataclass(frozen=True)
class TraceContext:
    """What a dispatched task needs to stay attached to its trace.

    ``parent_span_id`` is the dispatch span the receiving process
    should parent its work under (None for an unparented hop), and
    ``sent_at_wall`` is the wall-clock send instant — the receiver
    derives queue wait from it.
    """

    trace_id: str
    parent_span_id: str | None = None
    sent_at_wall: float | None = None

    @classmethod
    def for_span(cls, tracer: Tracer, span) -> "TraceContext":
        """The context a message carrying ``span``'s work should ship."""
        return cls(
            trace_id=tracer.trace_id,
            parent_span_id=getattr(span, "span_id", None),
            sent_at_wall=time.time(),
        )


def span_doc(span: Span) -> dict:
    """One finished span (and its subtree) as a plain dict."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "start": span.start,
        "end": span.end,
        "thread_id": span.thread_id,
        "thread_name": span.thread_name,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
        "children": [span_doc(child) for child in span.children],
    }


def walk_span_docs(doc: dict, depth: int = 0):
    """Yield ``(doc, depth)`` pairs, the given document first."""
    stack = [(doc, depth)]
    while stack:
        current, level = stack.pop()
        yield current, level
        for child in reversed(current.get("children", ())):
            stack.append((child, level + 1))


def dump_process_spans(
    tracer: Tracer,
    *,
    label: str | None = None,
    drain: bool = False,
) -> dict:
    """This process's finished root spans as one portable dump.

    With ``drain=True`` the dumped roots are atomically removed from
    the tracer (the per-task shipping mode); otherwise the tracer keeps
    them (the dispatcher's read-at-the-end mode).  Open spans are
    excluded — they are not representable until finished.
    """
    roots = tracer.drain() if drain else tracer.roots()
    return {
        "version": SPAN_DUMP_VERSION,
        "pid": os.getpid(),
        "label": label if label is not None else f"pid-{os.getpid()}",
        "trace_id": tracer.trace_id,
        "epoch_wall": tracer.epoch_wall,
        "spans": [span_doc(root) for root in roots if root.end is not None],
    }


def merge_dump_into(collected: dict, dump: dict) -> None:
    """Accumulate ``dump`` into ``collected`` (keyed by pid + epoch).

    Workers ship one small dump per task; the dispatcher folds them so
    each process contributes a single entry to the merged trace.  The
    key includes ``epoch_wall`` so a recycled pid (new cohort, new
    process, same number) never mixes timelines.
    """
    key = (dump["pid"], dump["epoch_wall"])
    existing = collected.get(key)
    if existing is None:
        collected[key] = {**dump, "spans": list(dump["spans"])}
    else:
        existing["spans"].extend(dump["spans"])
