"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph operation was invalid (bad edge, malformed input, ...)."""


class NodeNotFoundError(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DimensionMismatchError(GraphError):
    """An edge cost vector does not match the graph's cost dimensionality."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"cost vector has {actual} dimensions, graph expects {expected}"
        )
        self.expected = expected
        self.actual = actual


class BuildError(ReproError):
    """Index construction failed or was given invalid parameters."""


class QueryError(ReproError):
    """A query was malformed or could not be evaluated."""


class SearchTimeoutError(ReproError):
    """An exact search exceeded its wall-clock budget.

    The partial results found so far are attached so callers that treat a
    timeout as "best effort" can still use them.
    """

    def __init__(self, message: str, partial_results: list | None = None) -> None:
        super().__init__(message)
        self.partial_results = partial_results if partial_results is not None else []
