"""Tests for online quality reports and the corridor quality tripwire."""

from __future__ import annotations

import pickle

import pytest

from repro.approx.quality import QualityReport, score_paths, structural_report
from repro.paths.path import Path
from repro.qa.quality import run_quality_case, run_quality_tripwire
from repro.qa.workload import CaseSpec

EXACT = [Path((0, 1, 3), (1.0, 3.0)), Path((0, 2, 3), (3.0, 1.0))]


class TestScorePaths:
    def test_identical_answer_scores_perfect(self):
        report = score_paths(EXACT, EXACT, target=0.95)
        assert report.hypervolume_ratio == pytest.approx(1.0)
        assert report.rac_max == pytest.approx(1.0)
        assert report.meets_target
        assert report.reference == "exact_cached"
        assert report.checked

    def test_partial_answer_can_miss_target(self):
        report = score_paths(EXACT[:1], EXACT, target=0.99)
        assert report.hypervolume_ratio < 0.99
        assert not report.meets_target

    def test_no_target_always_meets(self):
        report = score_paths([], EXACT, target=None)
        assert report.hypervolume_ratio == 0.0
        assert report.meets_target

    def test_empty_sets_do_not_raise(self):
        report = score_paths([], [], target=0.5)
        assert report.hypervolume_ratio == 1.0
        assert report.rac_max is None and report.goodness is None

    def test_report_is_picklable(self):
        # Reports ride on QueryResponse objects shipped from mp workers.
        report = score_paths(EXACT, EXACT, target=0.9)
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report

    def test_as_dict_round_trips_fields(self):
        report = score_paths(EXACT[:1], EXACT, target=0.9)
        doc = report.as_dict()
        assert doc["target"] == 0.9
        assert doc["reference"] == "exact_cached"
        assert doc["meets_target"] == report.meets_target


class TestStructuralReport:
    def test_nonempty_passes_optimistically(self):
        report = structural_report(EXACT, target=0.95)
        assert report.meets_target
        assert not report.checked
        assert report.reference == "none"
        assert report.hypervolume_ratio is None

    def test_empty_answer_fails_target(self):
        assert not structural_report([], target=0.95).meets_target

    def test_truncated_answer_fails_target(self):
        report = structural_report(EXACT, target=0.95, truncated=True)
        assert not report.meets_target

    def test_no_target_never_fails(self):
        assert structural_report([], target=None).meets_target


class TestQualityTripwire:
    def test_seeded_case_is_clean(self):
        report = run_quality_case(CaseSpec.from_seed(0, n_queries=3))
        assert report.ok, [str(d) for d in report.discrepancies]
        assert report.queries_checked == 3

    def test_tripwire_aggregates_cases(self):
        report = run_quality_tripwire(range(2), n_queries=2)
        assert len(report.cases) == 2
        assert report.ok, [str(d) for d in report.discrepancies]

    def test_callback_sees_every_case(self):
        seen = []
        run_quality_tripwire(range(2), n_queries=1, on_case=seen.append)
        assert [c.spec.seed for c in seen] == [0, 1]
