"""Tests for the label structures I_i and their composition (absorb)."""

from __future__ import annotations

from repro.core.labels import LevelIndex, NodeLabel, build_cluster_labels
from repro.graph.mcrn import MultiCostGraph
from repro.paths.path import Path

from tests.conftest import assert_valid_walk


class TestNodeLabel:
    def test_add_and_query(self):
        label = NodeLabel(1)
        p = Path((1, 2, 3), (2.0, 2.0))
        assert label.add_path(3, p)
        assert label.paths_to(3) == [p]
        assert label.paths_to(9) == []
        assert label.path_count() == 1

    def test_skyline_per_entrance(self):
        label = NodeLabel(1)
        label.add_path(3, Path((1, 2, 3), (1.0, 5.0)))
        assert label.add_path(3, Path((1, 4, 3), (5.0, 1.0)))
        assert not label.add_path(3, Path((1, 5, 3), (6.0, 6.0)))
        assert label.path_count() == 2


class TestLevelIndex:
    def test_self_paths_rejected(self):
        index = LevelIndex()
        assert not index.add_path(1, 1, Path((1,), (0.0,)))
        assert index.get(1) is None

    def test_counts(self):
        index = LevelIndex()
        index.add_path(1, 3, Path((1, 3), (1.0,)))
        index.add_path(1, 4, Path((1, 4), (1.0,)))
        index.add_path(2, 3, Path((2, 3), (1.0,)))
        assert len(index) == 2
        assert index.path_count() == 3
        assert index.entrance_count() == 3
        assert 1 in index and 9 not in index

    def test_absorb_retargets_stale_entrances(self):
        # level paths: 1 -> 5 (entrance); a later round removes 5 with
        # label 5 -> 9; absorbed label must read 1 -> 9 via 5.
        index = LevelIndex()
        index.add_path(1, 5, Path((1, 5), (1.0, 1.0)))
        later = LevelIndex()
        later.add_path(5, 9, Path((5, 7, 9), (2.0, 3.0)))
        index.absorb(later, surviving={9})
        label = index.get(1)
        assert set(label.entrances) == {9}
        [p] = label.paths_to(9)
        assert p.nodes == (1, 5, 7, 9)
        assert p.cost == (3.0, 4.0)

    def test_absorb_keeps_surviving_entrances(self):
        index = LevelIndex()
        index.add_path(1, 5, Path((1, 5), (1.0,)))
        index.absorb(LevelIndex(), surviving={5})
        assert set(index.get(1).entrances) == {5}

    def test_absorb_drops_unreachable_stale_entrances(self):
        index = LevelIndex()
        index.add_path(1, 5, Path((1, 5), (1.0,)))
        index.absorb(LevelIndex(), surviving={9})  # 5 gone, no extension
        label = index.get(1)
        assert label is None or not label.entrances

    def test_absorb_merges_new_labels(self):
        index = LevelIndex()
        later = LevelIndex()
        later.add_path(2, 7, Path((2, 7), (1.0,)))
        index.absorb(later, surviving={7})
        assert index.get(2) is not None

    def test_absorb_skips_cycle_back_to_self(self):
        # extension ending at the label's own node must not create a
        # self-entrance
        index = LevelIndex()
        index.add_path(1, 5, Path((1, 5), (1.0,)))
        later = LevelIndex()
        later.add_path(5, 1, Path((5, 1), (1.0,)))
        later.add_path(5, 9, Path((5, 9), (1.0,)))
        index.absorb(later, surviving={1, 9})
        label = index.get(1)
        assert 1 not in label.entrances
        assert 9 in label.entrances

    def test_absorb_prunes_dominated_compositions(self):
        index = LevelIndex()
        index.add_path(1, 5, Path((1, 5), (1.0, 1.0)))
        index.add_path(1, 6, Path((1, 6), (10.0, 10.0)))
        later = LevelIndex()
        later.add_path(5, 9, Path((5, 9), (1.0, 1.0)))
        later.add_path(6, 9, Path((6, 9), (1.0, 1.0)))
        index.absorb(later, surviving={9})
        paths = index.get(1).paths_to(9)
        assert [p.cost for p in paths] == [(2.0, 2.0)]


class TestBuildClusterLabels:
    def graph_and_cluster(self):
        """A 5-node cluster; removed edges form a path 10-11-12-13-14
        plus a chord, entrances are 10 and 14."""
        g = MultiCostGraph(2)
        removed = [
            (10, 11, (1.0, 4.0)),
            (11, 12, (1.0, 4.0)),
            (12, 13, (1.0, 4.0)),
            (13, 14, (1.0, 4.0)),
            (11, 13, (5.0, 1.0)),
        ]
        cluster = {10, 11, 12, 13, 14}
        return g, cluster, removed

    def test_every_node_labelled_to_reachable_entrances(self):
        g, cluster, removed = self.graph_and_cluster()
        index = LevelIndex()
        build_cluster_labels(2, cluster, removed, {10, 14}, into=index)
        for node in (11, 12, 13):
            label = index.get(node)
            assert set(label.entrances) == {10, 14}

    def test_entrance_to_entrance_paths_exist(self):
        g, cluster, removed = self.graph_and_cluster()
        index = LevelIndex()
        build_cluster_labels(2, cluster, removed, {10, 14}, into=index)
        label = index.get(10)
        assert label is not None and 14 in label.entrances

    def test_paths_use_removed_edges_only(self):
        g, cluster, removed = self.graph_and_cluster()
        restricted = MultiCostGraph(2)
        for u, v, cost in removed:
            restricted.add_edge(u, v, cost)
        index = LevelIndex()
        build_cluster_labels(2, cluster, removed, {10, 14}, into=index)
        for node in index.nodes():
            label = index.get(node)
            for paths in label.entrances.values():
                for p in paths:
                    assert_valid_walk(restricted, p)

    def test_skyline_through_chord(self):
        g, cluster, removed = self.graph_and_cluster()
        index = LevelIndex()
        build_cluster_labels(2, cluster, removed, {10, 14}, into=index)
        costs = {p.cost for p in index.get(10).paths_to(14)}
        # straight path (4, 16) and the chord route 10-11-13-14 (7, 9)
        assert (4.0, 16.0) in costs
        assert (7.0, 9.0) in costs

    def test_empty_inputs_noop(self):
        index = LevelIndex()
        build_cluster_labels(2, {1, 2}, [], {1}, into=index)
        assert len(index) == 0
        build_cluster_labels(2, {1, 2}, [(1, 2, (1.0, 1.0))], set(), into=index)
        assert len(index) == 0

    def test_max_frontier_caps_paths(self):
        g, cluster, removed = self.graph_and_cluster()
        index = LevelIndex()
        build_cluster_labels(
            2, cluster, removed, {10, 14}, into=index, max_frontier=1
        )
        for node in index.nodes():
            for paths in index.get(node).entrances.values():
                assert len(paths) <= 1
