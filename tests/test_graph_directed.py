"""Tests for the to_directed conversion utility."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.directed import to_directed
from repro.graph.generators import road_network
from repro.graph.mcrn import MultiCostGraph


@pytest.fixture(scope="module")
def base():
    return road_network(150, dim=3, seed=201)


class TestToDirected:
    def test_symmetric_when_asymmetry_zero(self, base):
        directed = to_directed(base, asymmetry=0.0, seed=1)
        for u, v, cost in list(base.edges())[:30]:
            assert directed.edge_costs(u, v) == [cost]
            assert directed.edge_costs(v, u) == [cost]

    def test_asymmetry_bounds_respected(self, base):
        directed = to_directed(base, asymmetry=0.2, seed=2)
        for u, v, cost in list(base.edges())[:30]:
            for direction in ((u, v), (v, u)):
                [scaled] = directed.edge_costs(*direction)
                for original, got in zip(cost, scaled):
                    assert 0.8 * original - 1e-9 <= got <= 1.2 * original + 1e-9

    def test_one_way_fraction(self, base):
        directed = to_directed(base, one_way_fraction=0.5, seed=3)
        one_ways = sum(
            1
            for u, v in base.edge_pairs()
            if directed.has_edge(u, v) != directed.has_edge(v, u)
            or not (directed.has_edge(u, v) and directed.has_edge(v, u))
        )
        assert 0.3 * base.num_edges <= one_ways <= 0.7 * base.num_edges

    def test_all_two_way_by_default(self, base):
        directed = to_directed(base, seed=4)
        for u, v in list(base.edge_pairs())[:40]:
            assert directed.has_edge(u, v) and directed.has_edge(v, u)

    def test_coords_preserved(self, base):
        directed = to_directed(base, seed=5)
        node = next(iter(base.nodes()))
        assert directed.coord(node) == base.coord(node)

    def test_deterministic(self, base):
        a = to_directed(base, seed=6)
        b = to_directed(base, seed=6)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_validation(self, base):
        with pytest.raises(GraphError):
            to_directed(to_directed(base, seed=1))
        with pytest.raises(GraphError):
            to_directed(base, asymmetry=1.5)
        with pytest.raises(GraphError):
            to_directed(base, one_way_fraction=-0.1)
