"""Merging per-process span dumps into one multi-pid Chrome trace.

The contract under test: :func:`~repro.obs.export.merge_process_traces`
puts each dump on its own ``pid`` lane, aligns lanes on the wall clock
(the earliest ``epoch_wall`` becomes time zero), names every lane,
carries every required ``trace_event`` key on every emitted event, and
draws dispatch → worker flow arrows only when both ends of the arrow
are present in the collected dumps.
"""

from __future__ import annotations

import json

from repro.obs import merge_process_traces, write_merged_trace
from repro.obs.export import CHROME_REQUIRED_KEYS, PARENT_SPAN_ATTR


def make_dump(
    pid,
    epoch_wall,
    spans,
    *,
    label=None,
    trace_id="trace",
):
    """A hand-built span dump in the dump_process_spans shape."""
    return {
        "version": 1,
        "pid": pid,
        "label": label if label is not None else f"pid-{pid}",
        "trace_id": trace_id,
        "epoch_wall": epoch_wall,
        "spans": spans,
    }


def make_span(
    name,
    span_id,
    start,
    end,
    *,
    attrs=None,
    children=(),
    thread_id=1,
):
    return {
        "name": name,
        "span_id": span_id,
        "start": start,
        "end": end,
        "thread_id": thread_id,
        "thread_name": "MainThread",
        "attrs": dict(attrs or {}),
        "counters": {},
        "children": list(children),
    }


def events_of(doc, ph=None):
    events = doc["traceEvents"]
    if ph is None:
        return events
    return [e for e in events if e["ph"] == ph]


class TestLaneAlignment:
    def test_overlapping_epochs_share_one_timeline(self):
        # The dispatcher's tracer started at wall 1000.0; the worker
        # forked 0.5s later.  A worker span at local t=0.1 must land at
        # merged ts 0.6s, *after* a dispatcher span at local t=0.2.
        dispatcher = make_dump(
            100, 1000.0, [make_span("mp.dispatch", "64.1", 0.2, 0.3)]
        )
        worker = make_dump(
            200, 1000.5, [make_span("mp.worker.task", "c8.1", 0.1, 0.4)]
        )
        doc = merge_process_traces([dispatcher, worker])
        by_name = {e["name"]: e for e in events_of(doc, "X")}
        assert by_name["mp.dispatch"]["ts"] == 0.2e6
        assert by_name["mp.worker.task"]["ts"] == (0.5 + 0.1) * 1e6
        assert by_name["mp.worker.task"]["dur"] == 0.3e6

    def test_each_process_gets_its_own_named_lane(self):
        doc = merge_process_traces(
            [
                make_dump(
                    1, 0.0, [make_span("a", "1.1", 0.0, 1.0)],
                    label="dispatcher",
                ),
                make_dump(
                    2, 0.0, [make_span("b", "2.1", 0.0, 1.0)],
                    label="worker-0",
                ),
                make_dump(
                    3, 0.0, [make_span("c", "3.1", 0.0, 1.0)],
                    label="worker-1",
                ),
            ]
        )
        lanes = {
            e["pid"]: e["args"]["name"]
            for e in events_of(doc, "M")
            if e["name"] == "process_name"
        }
        assert lanes == {1: "dispatcher", 2: "worker-0", 3: "worker-1"}
        assert {e["pid"] for e in events_of(doc, "X")} == {1, 2, 3}

    def test_empty_input_merges_to_empty_trace(self):
        doc = merge_process_traces([])
        assert doc["traceEvents"] == []


class TestRequiredKeys:
    def test_every_event_carries_the_required_keys(self):
        parent = make_span("mp.dispatch", "64.2", 0.0, 1.0)
        child_root = make_span(
            "mp.worker.task",
            "c8.2",
            0.2,
            0.8,
            attrs={PARENT_SPAN_ATTR: "64.2", "trace_id": "trace"},
            children=[make_span("search.bbs", "c8.3", 0.3, 0.7)],
        )
        doc = merge_process_traces(
            [
                make_dump(100, 10.0, [parent]),
                make_dump(200, 10.1, [child_root]),
            ]
        )
        assert len(events_of(doc)) > 0
        for event in events_of(doc):
            for key in CHROME_REQUIRED_KEYS:
                assert key in event, (event["ph"], event.get("name"), key)

    def test_merged_document_is_json_serializable(self, tmp_path):
        path = write_merged_trace(
            [make_dump(1, 0.0, [make_span("a", "1.9", 0.0, 1.0)])],
            tmp_path / "trace.json",
        )
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["name"] == "a" for e in loaded["traceEvents"])


class TestFlowArrows:
    def test_remote_parent_draws_one_arrow_pair(self):
        dispatcher = make_dump(
            100, 0.0, [make_span("mp.dispatch", "64.5", 0.0, 1.0)]
        )
        worker = make_dump(
            200,
            0.0,
            [
                make_span(
                    "mp.worker.task",
                    "c8.5",
                    0.2,
                    0.9,
                    attrs={PARENT_SPAN_ATTR: "64.5"},
                )
            ],
        )
        doc = merge_process_traces([dispatcher, worker])
        starts = events_of(doc, "s")
        finishes = events_of(doc, "f")
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["pid"] == 100  # arrow leaves the dispatcher…
        assert finishes[0]["pid"] == 200  # …and lands on the worker
        assert finishes[0]["bp"] == "e"

    def test_missing_parent_dump_draws_no_arrow(self):
        # The worker references a dispatch span whose dump never made
        # it back (e.g. the dispatcher crashed); the span still renders
        # but no dangling arrow is emitted.
        worker = make_dump(
            200,
            0.0,
            [
                make_span(
                    "mp.worker.task",
                    "c8.6",
                    0.0,
                    1.0,
                    attrs={PARENT_SPAN_ATTR: "dead.1"},
                )
            ],
        )
        doc = merge_process_traces([worker])
        assert events_of(doc, "s") == []
        assert events_of(doc, "f") == []
        assert len(events_of(doc, "X")) == 1

    def test_worker_with_no_spans_contributes_only_its_lane(self):
        doc = merge_process_traces(
            [
                make_dump(1, 0.0, [make_span("a", "1.7", 0.0, 1.0)]),
                make_dump(2, 0.0, [], label="idle-worker"),
            ]
        )
        lanes = {
            e["pid"]
            for e in events_of(doc, "M")
            if e["name"] == "process_name"
        }
        assert lanes == {1, 2}
        assert {e["pid"] for e in events_of(doc, "X")} == {1}

    def test_open_remote_root_is_skipped_entirely(self):
        unfinished = make_span("mp.worker.task", "c8.8", 0.0, None,
                               attrs={PARENT_SPAN_ATTR: "64.8"})
        doc = merge_process_traces(
            [
                make_dump(100, 0.0,
                          [make_span("mp.dispatch", "64.8", 0.0, 1.0)]),
                make_dump(200, 0.0, [unfinished]),
            ]
        )
        assert len(events_of(doc, "X")) == 1
        assert events_of(doc, "s") == []
