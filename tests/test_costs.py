"""Tests for synthetic edge-cost generation (Sections 6.1 and 6.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.costs import (
    CostDistribution,
    assign_costs,
    euclidean_base_cost,
)
from repro.graph.generators import delaunay_network
from repro.graph.mcrn import MultiCostGraph


def topology(n: int = 300, seed: int = 3) -> MultiCostGraph:
    return delaunay_network(n, seed=seed)


def correlation(graph: MultiCostGraph, dim_a: int, dim_b: int) -> float:
    rows = np.array(
        [graph.edge_costs(u, v)[0] for u, v in graph.edge_pairs()], dtype=float
    )
    return float(np.corrcoef(rows[:, dim_a], rows[:, dim_b])[0, 1])


class TestEuclideanBase:
    def test_distance(self):
        g = MultiCostGraph(1)
        g.add_node(0, (0.0, 0.0))
        g.add_node(1, (3.0, 4.0))
        g.add_edge(0, 1, (1.0,))
        assert euclidean_base_cost(g, 0, 1) == pytest.approx(5.0)

    def test_missing_coordinate_raises(self):
        g = MultiCostGraph(1)
        g.add_edge(0, 1, (1.0,))
        with pytest.raises(GraphError):
            euclidean_base_cost(g, 0, 1)


class TestAssignCosts:
    def test_uniform_default_range(self):
        g = assign_costs(topology(), 3, seed=1)
        assert g.dim == 3
        for _, _, cost in g.edges():
            assert len(cost) == 3
            assert 1.0 <= cost[1] <= 100.0
            assert 1.0 <= cost[2] <= 100.0
            assert cost[0] > 0

    def test_first_dimension_is_euclidean(self):
        g = assign_costs(topology(), 2, seed=1)
        for u, v in list(g.edge_pairs())[:20]:
            assert g.edge_costs(u, v)[0][0] == pytest.approx(
                max(euclidean_base_cost(g, u, v), 1e-9)
            )

    def test_deterministic_for_seed(self):
        a = assign_costs(topology(), 3, seed=7)
        b = assign_costs(topology(), 3, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = assign_costs(topology(), 3, seed=7)
        b = assign_costs(topology(), 3, seed=8)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_positive_costs_always(self):
        for dist in CostDistribution:
            g = assign_costs(topology(150, seed=5), 3, distribution=dist, seed=2)
            for _, _, cost in g.edges():
                assert all(c > 0 for c in cost), (dist, cost)

    def test_dim_validation(self):
        with pytest.raises(GraphError):
            assign_costs(topology(), 0)

    def test_preserves_topology_and_coords(self):
        base = topology()
        g = assign_costs(base, 3, seed=1)
        assert g.num_nodes == base.num_nodes
        assert set(g.edge_pairs()) == set(base.edge_pairs())
        node = next(iter(g.nodes()))
        assert g.coord(node) == base.coord(node)


class TestDistributionShapes:
    """Section 6.3: CORR/ANTI/INDE relative to the distance dimension."""

    def test_correlated_positive(self):
        g = assign_costs(
            topology(), 2, distribution=CostDistribution.CORRELATED, seed=11
        )
        assert correlation(g, 0, 1) > 0.5

    def test_anti_correlated_negative(self):
        g = assign_costs(
            topology(), 2, distribution=CostDistribution.ANTI_CORRELATED, seed=11
        )
        assert correlation(g, 0, 1) < -0.5

    def test_independent_near_zero(self):
        g = assign_costs(
            topology(), 2, distribution=CostDistribution.INDEPENDENT, seed=11
        )
        assert abs(correlation(g, 0, 1)) < 0.25

    def test_uniform_matches_independent_semantics(self):
        g = assign_costs(
            topology(), 2, distribution=CostDistribution.UNIFORM, seed=11
        )
        assert abs(correlation(g, 0, 1)) < 0.25
