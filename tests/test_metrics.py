"""Tests for approximation-quality metrics (RAC, goodness)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.eval.metrics import cosine_similarity, goodness, rac, set_reduction
from repro.paths.path import Path


def paths_from_costs(costs):
    return [Path((0, 1), c) for c in costs]


class TestRac:
    def test_identical_sets_give_one(self):
        paths = paths_from_costs([(1.0, 2.0), (3.0, 4.0)])
        assert rac(paths, paths) == pytest.approx((1.0, 1.0))

    def test_doubled_costs_give_two(self):
        exact = paths_from_costs([(1.0, 2.0)])
        approx = paths_from_costs([(2.0, 4.0)])
        assert rac(approx, exact) == pytest.approx((2.0, 2.0))

    def test_per_dimension_independence(self):
        exact = paths_from_costs([(1.0, 10.0)])
        approx = paths_from_costs([(3.0, 10.0)])
        assert rac(approx, exact) == pytest.approx((3.0, 1.0))

    def test_empty_sets_rejected(self):
        paths = paths_from_costs([(1.0, 1.0)])
        with pytest.raises(QueryError):
            rac([], paths)
        with pytest.raises(QueryError):
            rac(paths, [])

    def test_zero_exact_mean_gives_inf(self):
        exact = [Path((0,), (0.0, 1.0))]
        approx = paths_from_costs([(1.0, 1.0)])
        assert rac(approx, exact)[0] == math.inf


class TestCosine:
    def test_parallel_vectors(self):
        assert cosine_similarity((1.0, 2.0), (2.0, 4.0)) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity((1.0, 0.0), (0.0, 1.0)) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity((0.0, 0.0), (1.0, 1.0)) == 0.0


class TestGoodness:
    def test_identical_sets_perfect(self):
        paths = paths_from_costs([(1.0, 2.0), (5.0, 1.0)])
        assert goodness(paths, paths) == pytest.approx(1.0)

    def test_single_direction_coverage(self):
        exact = paths_from_costs([(1.0, 0.0), (0.0, 1.0)])
        approx = paths_from_costs([(1.0, 0.0)])
        assert goodness(approx, exact) == pytest.approx(0.5)

    def test_empty_rejected(self):
        paths = paths_from_costs([(1.0, 1.0)])
        with pytest.raises(QueryError):
            goodness([], paths)
        with pytest.raises(QueryError):
            goodness(paths, [])


class TestSetReduction:
    def test_ratio(self):
        exact = paths_from_costs([(1.0, 1.0)] * 10)
        approx = paths_from_costs([(1.0, 1.0)] * 2)
        assert set_reduction(approx, exact) == pytest.approx(5.0)

    def test_empty_approx_rejected(self):
        with pytest.raises(QueryError):
            set_reduction([], paths_from_costs([(1.0, 1.0)]))


cost_sets = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


@given(cost_sets, cost_sets)
def test_goodness_bounded_zero_one(a, b):
    value = goodness(paths_from_costs(a), paths_from_costs(b))
    assert 0.0 <= value <= 1.0 + 1e-9


@given(cost_sets)
def test_goodness_of_self_is_one(costs):
    paths = paths_from_costs(costs)
    assert goodness(paths, paths) == pytest.approx(1.0)


@given(cost_sets)
def test_rac_positive(costs):
    paths = paths_from_costs(costs)
    values = rac(paths, paths)
    assert all(v == pytest.approx(1.0) for v in values)
