"""Tests for structural traversals (BFS, components, degree-1 peeling)."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.mcrn import MultiCostGraph
from repro.graph.traversal import (
    bfs_nodes,
    bfs_order,
    bfs_subgraph,
    connected_components,
    is_connected,
    largest_component_subgraph,
    peel_degree_one,
)


def chain(n: int) -> MultiCostGraph:
    g = MultiCostGraph(1)
    for i in range(n - 1):
        g.add_edge(i, i + 1, (1.0,))
    return g


def cycle(n: int) -> MultiCostGraph:
    g = chain(n)
    g.add_edge(n - 1, 0, (1.0,))
    return g


class TestBFS:
    def test_order_starts_at_source(self):
        g = chain(5)
        order = list(bfs_order(g, 2))
        assert order[0] == 2
        assert set(order) == {0, 1, 2, 3, 4}

    def test_missing_source(self):
        g = chain(3)
        with pytest.raises(NodeNotFoundError):
            list(bfs_order(g, 99))

    def test_bfs_nodes_bounded(self):
        g = chain(10)
        nodes = bfs_nodes(g, 0, 4)
        assert len(nodes) == 4
        assert nodes == {0, 1, 2, 3}

    def test_bfs_subgraph(self):
        g = cycle(8)
        sub = bfs_subgraph(g, 0, 5)
        assert sub.num_nodes == 5
        assert is_connected(sub)


class TestComponents:
    def test_single_component(self):
        assert connected_components(cycle(4)) == [{0, 1, 2, 3}]

    def test_two_components_sorted_by_size(self):
        g = chain(5)
        g.add_edge(10, 11, (1.0,))
        comps = connected_components(g)
        assert len(comps) == 2
        assert comps[0] == {0, 1, 2, 3, 4}
        assert comps[1] == {10, 11}

    def test_is_connected(self):
        assert is_connected(cycle(3))
        g = chain(3)
        g.add_node(99)
        assert not is_connected(g)
        assert not is_connected(MultiCostGraph(1))

    def test_largest_component_subgraph(self):
        g = chain(5)
        g.add_edge(10, 11, (1.0,))
        sub = largest_component_subgraph(g)
        assert sub.num_nodes == 5
        assert not sub.has_node(10)


class TestPeelDegreeOne:
    def test_chain_peels_to_one_isolated_node(self):
        # A pure chain has no 2-core: everything peels except the last
        # node, which is left isolated (degree 0, no anchor to record).
        g = chain(4)
        order = peel_degree_one(g)
        assert len(order) == 3
        survivors = set(g.nodes()) - {node for node, _ in order}
        assert len(survivors) == 1

    def test_cycle_is_untouched(self):
        order = peel_degree_one(cycle(5))
        assert order == []

    def test_lollipop_peels_the_tail(self):
        g = cycle(4)
        g.add_edge(3, 10, (1.0,))
        g.add_edge(10, 11, (1.0,))
        order = peel_degree_one(g)
        assert [node for node, _ in order] == [11, 10]
        assert dict(order) == {11: 10, 10: 3}

    def test_graph_not_modified(self):
        g = cycle(4)
        g.add_edge(0, 9, (1.0,))
        peel_degree_one(g)
        assert g.has_node(9)

    def test_protected_nodes_survive(self):
        g = cycle(4)
        g.add_edge(3, 10, (1.0,))
        g.add_edge(10, 11, (1.0,))
        order = peel_degree_one(g, protected={11})
        assert order == []

    def test_anchor_recorded_at_removal_time(self):
        # star of chains: 0 is the hub of three 2-chains
        g = MultiCostGraph(1)
        for leaf_base in (10, 20, 30):
            g.add_edge(0, leaf_base, (1.0,))
            g.add_edge(leaf_base, leaf_base + 1, (1.0,))
        order = peel_degree_one(g)
        # every node but one peels (tree), and every node's anchor was
        # its then-sole live neighbor
        assert len(order) == 6
        anchors = dict(order)
        assert anchors[11] == 10
        assert anchors[10] == 0
