"""Regression tests for time-budget starvation in the search loops.

All four search loops used to gate the wall-clock check on
``stats.expansions % 512 == 0``.  Stale heap pops (evicted by a frontier
update) and pruned pops (dominated by the result skyline) never
increment ``expansions``, so a long run of them froze the gate at a
non-multiple of 512 and the budget check simply never fired again — the
search could overshoot ``time_budget`` without bound.  The fix gates the
check on a monotone loop-iteration counter instead, bounding overshoot
to 512 heap pops regardless of what kind of pops they are.

The workloads below drive exactly that pathology: a small burst of real
expansions followed by thousands of pops that are all stale or pruned.
A fake clock (time only advances when ``perf_counter`` is read) expires
the budget during the starved run; the old gating never reads the clock
there and finishes the whole run, the fixed gating reads it within one
512-pop interval and stops.
"""

from __future__ import annotations

import pytest

import repro.accel.bbs_kernel as bbs_kernel_module
import repro.accel.onetoall_kernel as onetoall_kernel_module
import repro.search.bbs as bbs_module
import repro.search.mbbs as mbbs_module
import repro.search.onetoall as onetoall_module
from repro.accel.csr import CSRSnapshot
from repro.search.bbs import SearchStats, skyline_paths
from repro.search.bounds import ZeroBounds
from repro.search.mbbs import Seed, many_to_many_skyline
from repro.search.onetoall import one_to_all_skyline

S, X, Y = 0, 1, 2
FIRST_M = 3
STALE_POPS = 2048

# The fake clock ticks one second per perf_counter() read.  The fixed
# loops read the clock at iterations 0, 512, 1024, ... — so with the
# budget below the check trips on the third in-loop read, which only
# ever happens once the starved pop run is underway (the expansion burst
# is over within a handful of iterations).  The old gating performed at
# most two in-loop reads total and never timed out on these workloads.
BUDGET = 3.5


class FakeClock:
    """perf_counter() that advances one second per call."""

    def __init__(self) -> None:
        self.calls = 0
        self.calls_after_trip = 0

    def perf_counter(self) -> float:
        self.calls += 1
        if self.calls - 1 > BUDGET:
            self.calls_after_trip += 1
        return float(self.calls - 1)


def starvation_graph():
    """A graph whose search degenerates into a long stale/pruned pop run.

    ``s -> X`` is cheap, ``s -> Y`` is the only route to the target side,
    and ``X -> m`` fans out into ``STALE_POPS`` mutually non-dominated
    parallel edges, flooding the heap with expensive labels at ``m``.
    ``Y -> m`` is cheap enough that either the result skyline (BBS with
    target ``Y``) or a frontier eviction (m_BBS expanding through ``Y``)
    invalidates every one of those labels before they pop.
    """
    graph = bbs_module.MultiCostGraph(2)
    graph.add_edge(S, X, (1.0, 1.0))
    graph.add_edge(S, Y, (10.0, 10.0))
    graph.add_edge(Y, FIRST_M, (1.0, 1.0))
    for i in range(STALE_POPS):
        # Anti-correlated costs: no parallel slot dominates another, so
        # every one of them is admitted to m's frontier and heap.
        graph.add_edge(X, FIRST_M, (100.0 + i, 100.0 + STALE_POPS - i))
    return graph


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(bbs_module, "time", fake)
    monkeypatch.setattr(mbbs_module, "time", fake)
    monkeypatch.setattr(bbs_kernel_module, "time", fake)
    monkeypatch.setattr(onetoall_module, "time", fake)
    monkeypatch.setattr(onetoall_kernel_module, "time", fake)
    return fake


def assert_timed_out_promptly(stats, clock) -> None:
    assert stats.timed_out is True
    # The burst of real expansions is tiny; everything after it was a
    # stale or pruned pop, which is exactly what must not starve the
    # check.
    assert stats.expansions <= 8
    # Bounded overshoot: the loop stopped at the first clock read past
    # the budget — the only later read is the final elapsed_seconds one.
    assert clock.calls_after_trip <= 2


@pytest.mark.parametrize("engine", ["python", "flat"])
def test_bbs_budget_survives_pruned_pop_run(engine, clock):
    graph = starvation_graph()
    snapshot = CSRSnapshot.from_graph(graph) if engine == "flat" else None
    result = skyline_paths(
        graph,
        S,
        Y,
        bounds=ZeroBounds(graph.dim),
        seed_with_shortest_paths=False,
        time_budget=BUDGET,
        engine=engine,
        snapshot=snapshot,
    )
    assert_timed_out_promptly(result.stats, clock)
    # The answer found before expiry is still returned.
    assert [p.cost for p in result.paths] == [(10.0, 10.0)]


@pytest.mark.parametrize("engine", ["python", "flat"])
def test_mbbs_budget_survives_stale_pop_run(engine, clock):
    graph = starvation_graph()
    snapshot = CSRSnapshot.from_graph(graph) if engine == "flat" else None
    result = many_to_many_skyline(
        graph,
        [Seed(S, (0.0, 0.0))],
        [Y],
        time_budget=BUDGET,
        engine=engine,
        snapshot=snapshot,
    )
    assert_timed_out_promptly(result.stats, clock)
    assert Y in result.hits


@pytest.mark.parametrize("engine", ["python", "flat"])
def test_onetoall_budget_survives_stale_pop_run(engine, clock):
    # One-to-all has no result skyline to prune against, but frontier
    # evictions produce the same pathology: the cheap S->Y->m path pops
    # first and evicts every expensive X->m label from m's frontier,
    # leaving a run of STALE_POPS stale pops that never increment
    # ``expansions`` — only a monotone loop-count gate reads the clock.
    graph = starvation_graph()
    snapshot = CSRSnapshot.from_graph(graph) if engine == "flat" else None
    stats = SearchStats()
    reached = one_to_all_skyline(
        graph,
        S,
        time_budget=BUDGET,
        stats=stats,
        engine=engine,
        snapshot=snapshot,
    )
    assert_timed_out_promptly(stats, clock)
    # The partial skyline found before expiry is still returned.
    assert [p.cost for p in reached[Y]] == [(10.0, 10.0)]


@pytest.mark.parametrize("engine", ["python", "flat"])
def test_onetoall_completes_within_budget_untouched(engine):
    graph = starvation_graph()
    snapshot = CSRSnapshot.from_graph(graph) if engine == "flat" else None
    stats = SearchStats()
    reached = one_to_all_skyline(
        graph,
        S,
        time_budget=60.0,
        stats=stats,
        engine=engine,
        snapshot=snapshot,
    )
    assert stats.timed_out is False
    assert [p.cost for p in reached[FIRST_M]] == [(11.0, 11.0)]


@pytest.mark.parametrize("engine", ["python", "flat"])
def test_bbs_completes_within_budget_untouched(engine):
    # Sanity: with a generous real budget the same workload completes
    # and is not reported as timed out.
    graph = starvation_graph()
    snapshot = CSRSnapshot.from_graph(graph) if engine == "flat" else None
    result = skyline_paths(
        graph,
        S,
        Y,
        bounds=ZeroBounds(graph.dim),
        seed_with_shortest_paths=False,
        time_budget=60.0,
        engine=engine,
        snapshot=snapshot,
    )
    assert result.stats.timed_out is False
    assert [p.cost for p in result.paths] == [(10.0, 10.0)]
