"""Tests for the serving engine: planner, caching, budgets, warm-up."""

from __future__ import annotations

import pytest

from repro.core.builder import build_backbone_index
from repro.core.params import BackboneParams
from repro.core.query import backbone_query_shared_source
from repro.errors import NodeNotFoundError, QueryError
from repro.graph.generators import road_network
from repro.search.bbs import skyline_paths
from repro.service import SkylineQueryEngine

PARAMS = BackboneParams(m_max=25, m_min=5, p=0.1)


def costs(paths):
    return sorted(p.cost for p in paths)


@pytest.fixture(scope="module")
def network():
    return road_network(240, dim=2, seed=9)


@pytest.fixture(scope="module")
def index(network):
    return build_backbone_index(network, PARAMS)


@pytest.fixture()
def engine(network, index):
    """A fresh engine per test so cache/metrics assertions are isolated."""
    return SkylineQueryEngine(
        network, index=index, params=PARAMS, exact_node_threshold=0
    )


def pair(network, offset=0):
    nodes = sorted(network.nodes())
    return nodes[offset], nodes[-(offset + 1)]


class TestPlanner:
    def test_forced_modes_pass_through(self, engine, network):
        s, t = pair(network)
        assert engine.plan(s, t, "exact") == "exact"
        assert engine.plan(s, t, "approx") == "approx"

    def test_unknown_mode_rejected(self, engine, network):
        s, t = pair(network)
        with pytest.raises(QueryError):
            engine.plan(s, t, "fuzzy")

    def test_auto_small_graph_is_exact(self, network, index):
        engine = SkylineQueryEngine(
            network, index=index, params=PARAMS,
            exact_node_threshold=network.num_nodes,
        )
        s, t = pair(network)
        assert engine.plan(s, t, "auto") == "exact"

    def test_auto_large_graph_is_approx(self, engine, network):
        s, t = pair(network)
        assert engine.plan(s, t, "auto") == "approx"

    def test_auto_same_cluster_is_exact(self, engine, index):
        level0 = index.levels[0]
        found = None
        for node in level0.nodes():
            label = level0.get(node)
            for other in level0.nodes():
                if other == node:
                    continue
                other_label = level0.get(other)
                if not set(label.entrances).isdisjoint(other_label.entrances):
                    found = (node, other)
                    break
            if found:
                break
        assert found is not None, "no same-cluster pair in test index"
        assert engine.plan(*found, "auto") == "exact"


class TestServing:
    def test_exact_matches_library_bbs(self, engine, network):
        s, t = pair(network)
        response = engine.query(s, t, mode="exact")
        assert response.mode == "exact"
        assert costs(response.paths) == costs(skyline_paths(network, s, t).paths)

    def test_approx_matches_library_query(self, engine, network, index):
        s, t = pair(network, 3)
        response = engine.query(s, t, mode="approx")
        assert response.mode == "approx"
        expected = backbone_query_shared_source(index, s, [t])[t]
        assert costs(response.paths) == costs(expected.paths)

    def test_repeated_query_hits_cache_with_equal_skyline(
        self, engine, network
    ):
        s, t = pair(network, 1)
        first = engine.query(s, t)
        assert not first.cache_hit
        second = engine.query(s, t)
        assert second.cache_hit
        assert costs(second.paths) == costs(first.paths)
        assert engine.cache.stats.hits == 1

    def test_cache_opt_out(self, engine, network):
        s, t = pair(network, 2)
        engine.query(s, t, use_cache=False)
        second = engine.query(s, t, use_cache=False)
        assert not second.cache_hit
        assert engine.cache.stats.hits == 0

    def test_missing_node_raises(self, engine):
        with pytest.raises(NodeNotFoundError):
            engine.query(-1, 0)

    def test_self_query(self, engine, network):
        node = sorted(network.nodes())[0]
        response = engine.query(node, node)
        assert len(response.paths) == 1
        assert response.paths[0].is_trivial()

    def test_query_group_aligns_with_targets(self, engine, network):
        nodes = sorted(network.nodes())
        source = nodes[0]
        targets = [nodes[-1], nodes[100], nodes[-1], source]
        responses = engine.query_group(source, targets)
        assert [r.target for r in responses] == targets
        assert all(r.source == source for r in responses)
        # The duplicated target must come back with the same skyline.
        assert costs(responses[0].paths) == costs(responses[2].paths)


class TestBudgets:
    def test_expired_budget_returns_truncated_not_raises(
        self, engine, network
    ):
        s, t = pair(network)
        response = engine.query(s, t, mode="approx", time_budget=0.0)
        assert response.truncated
        # Exact BBS may close instantly off its seeded shortest paths;
        # it must either report truncation or a legitimately complete
        # (and therefore exact) skyline — never raise.
        response = engine.query(s, t, mode="exact", time_budget=0.0)
        if not response.truncated:
            assert costs(response.paths) == costs(
                skyline_paths(network, s, t).paths
            )

    def test_default_budget_applies(self, network, index):
        engine = SkylineQueryEngine(
            network, index=index, params=PARAMS,
            exact_node_threshold=0, default_time_budget=0.0,
        )
        s, t = pair(network)
        assert engine.query(s, t).truncated
        assert engine.metrics.counter("engine.truncated").value == 1

    def test_generous_budget_not_truncated(self, engine, network):
        s, t = pair(network)
        assert not engine.query(s, t, time_budget=120.0).truncated

    def test_truncated_response_is_never_cached(self, engine, network):
        """Regression: a deadline-truncated partial skyline used to be
        stored like a complete answer, so every later unbudgeted query
        for the pair was served the partial result from cache."""
        s, t = pair(network)
        first = engine.query(s, t, mode="approx", time_budget=0.0)
        assert first.truncated
        assert len(engine.cache) == 0

        follow_up = engine.query(s, t, mode="approx")
        assert not follow_up.cache_hit
        assert not follow_up.truncated
        assert follow_up.paths
        # The complete answer is cached as usual.
        repeat = engine.query(s, t, mode="approx")
        assert repeat.cache_hit
        assert costs(repeat.paths) == costs(follow_up.paths)


class TestWarmState:
    def test_index_built_on_demand(self, network):
        engine = SkylineQueryEngine(
            network, params=PARAMS, exact_node_threshold=0
        )
        assert engine.index is None
        s, t = pair(network)
        engine.query(s, t, mode="approx")
        assert engine.index is not None
        assert engine.metrics.counter("engine.index_builds").value == 1

    def test_warm_primes_everything(self, network):
        engine = SkylineQueryEngine(
            network, params=PARAMS, exact_node_threshold=0
        )
        timings = engine.warm()
        assert set(timings) == {
            "index_seconds", "csr_seconds", "landmark_seconds"
        }
        snapshot = engine.metrics_snapshot()
        assert snapshot["index_ready"] and snapshot["landmarks_ready"]

    def test_warm_bounds_do_not_change_exact_answers(self, network, index):
        s, t = pair(network, 4)
        cold = SkylineQueryEngine(network, index=index, params=PARAMS)
        warm = SkylineQueryEngine(network, index=index, params=PARAMS)
        warm.warm()
        assert costs(cold.query(s, t, mode="exact").paths) == costs(
            warm.query(s, t, mode="exact").paths
        )

    def test_from_files(self, tmp_path, network):
        from repro.graph.io import write_dimacs_co, write_dimacs_gr

        gr = tmp_path / "net.gr"
        write_dimacs_gr(network, gr)
        write_dimacs_co(network, tmp_path / "net.co")
        engine = SkylineQueryEngine.from_files(
            gr, params=PARAMS, exact_node_threshold=0
        )
        s, t = pair(network)
        assert engine.query(s, t).paths


class TestMetrics:
    def test_snapshot_counts_queries(self, engine, network):
        s, t = pair(network)
        engine.query(s, t)
        engine.query(s, t)
        snapshot = engine.metrics_snapshot()
        assert snapshot["counters"]["engine.queries"] == 2
        assert snapshot["counters"]["engine.cache_hits"] == 1
        assert snapshot["histograms"]["engine.query_seconds"]["count"] == 2
        assert snapshot["cache"]["hits"] == 1
        assert snapshot["generation"] == 0

    def test_exporters_render(self, engine, network):
        s, t = pair(network)
        engine.query(s, t)
        assert "engine.queries" in engine.metrics.to_json()
        text = engine.metrics.to_text()
        assert "engine.queries 1" in text
        assert 'quantile="0.95"' in text


class TestCorridorServing:
    def test_corridor_answers_are_valid_and_scored(self, engine, network):
        from repro.qa.invariants import (
            approximation_errors,
            non_dominance_errors,
            path_errors,
        )

        s, t = pair(network)
        exact = engine.query(s, t, mode="exact")
        served = engine.query(s, t, mode="corridor")
        assert served.mode == "corridor"
        assert served.paths
        for path in served.paths:
            assert not path_errors(network, path, source=s, target=t)
        assert not non_dominance_errors(served.paths)
        assert not approximation_errors(
            served.paths, exact.paths, rac_bound=None
        )
        # Scored against the cached exact answer from the query above.
        assert served.quality is not None
        assert served.quality.reference == "exact_cached"
        assert served.quality.checked
        assert 0.0 <= served.quality.hypervolume_ratio <= 1.0

    def test_without_reference_report_is_structural(self, engine, network):
        s, t = pair(network)
        served = engine.query(s, t, mode="corridor")
        assert served.quality is not None
        assert served.quality.reference == "none"
        assert not served.quality.checked

    def test_corridor_responses_are_cached_per_mode(self, engine, network):
        s, t = pair(network)
        first = engine.query(s, t, mode="corridor")
        again = engine.query(s, t, mode="corridor")
        assert not first.cache_hit and again.cache_hit
        assert [p.cost for p in again.paths] == [
            p.cost for p in first.paths
        ]

    def test_corridor_structure_cache_reused(self, engine, network):
        s, t = pair(network)
        engine.query(s, t, mode="corridor", use_cache=False)
        engine.query(s, t, mode="corridor", use_cache=False)
        assert engine.metrics.counter("engine.corridor_builds").value == 1
        assert engine.metrics.counter("engine.corridor_cache_hits").value == 1

    def test_generation_bump_retires_corridors(self, engine, network):
        s, t = pair(network)
        engine.query(s, t, mode="corridor", use_cache=False)
        engine.bump_generation()
        engine.query(s, t, mode="corridor", use_cache=False)
        assert engine.metrics.counter("engine.corridor_builds").value == 2

    def test_missed_target_escalates_to_exact(self, network, index):
        from repro.paths.path import Path
        from repro.service.engine import (
            QueryResponse,
            engine_cache_key,
        )

        engine = SkylineQueryEngine(
            network, index=index, params=PARAMS,
            exact_node_threshold=0, quality_target=0.99,
        )
        s, t = pair(network)
        # Plant an unbeatable exact reference: the corridor answer's
        # retention against it is provably below any target, forcing
        # the escalation path (which then serves this same cached
        # "exact" answer).
        planted = QueryResponse(
            source=s, target=t, mode="exact",
            paths=[Path((s, t), (1e-9, 1e-9))],
        )
        engine.cache.put(engine_cache_key(s, t, "exact", 0), planted)
        served = engine.query(s, t, mode="corridor")
        assert served.escalated
        assert served.mode == "corridor"
        assert not served.quality.meets_target
        assert [p.cost for p in served.paths] == [(1e-9, 1e-9)]
        assert engine.metrics.counter("engine.escalations").value == 1

    def test_met_target_does_not_escalate(self, network, index):
        engine = SkylineQueryEngine(
            network, index=index, params=PARAMS,
            exact_node_threshold=0, quality_target=0.0,
        )
        s, t = pair(network)
        served = engine.query(s, t, mode="corridor")
        assert not served.escalated
        assert engine.metrics.counter("engine.escalations").value == 0

    def test_invalid_corridor_knobs_rejected(self, network, index):
        with pytest.raises(QueryError):
            SkylineQueryEngine(network, index=index, corridor_radius=-1)
        with pytest.raises(QueryError):
            SkylineQueryEngine(network, index=index, quality_target=1.5)

    def test_runtime_status_counts_modes_and_escalations(
        self, engine, network
    ):
        s, t = pair(network)
        engine.query(s, t, mode="exact")
        engine.query(s, t, mode="approx")
        engine.query(s, t, mode="corridor")
        status = engine.runtime_status()
        assert status["queries_by_mode"] == {
            "exact": 1, "approx": 1, "corridor": 1,
        }
        assert status["escalations"] == 0


class TestCorridorPlanner:
    def test_auto_prefers_corridor_when_approx_misses_budget(
        self, engine, network
    ):
        s, t = pair(network)
        assert engine.plan(s, t, "auto", time_budget=0.001) == "approx"
        for _ in range(3):
            engine.metrics.observe("engine.query_seconds.approx", 10.0)
        assert engine.plan(s, t, "auto", time_budget=0.001) == "corridor"
        # A budget the history comfortably fits keeps the default tier.
        assert engine.plan(s, t, "auto", time_budget=100.0) == "approx"

    def test_no_budget_never_plans_corridor(self, engine, network):
        s, t = pair(network)
        for _ in range(5):
            engine.metrics.observe("engine.query_seconds.approx", 10.0)
        assert engine.plan(s, t, "auto") == "approx"

    def test_planner_needs_minimum_history(self, engine, network):
        s, t = pair(network)
        for _ in range(2):
            engine.metrics.observe("engine.query_seconds.approx", 10.0)
        assert engine.plan(s, t, "auto", time_budget=0.001) == "approx"

    def test_auto_query_serves_corridor_under_tight_budget(
        self, engine, network
    ):
        s, t = pair(network)
        for _ in range(3):
            engine.metrics.observe("engine.query_seconds.approx", 10.0)
        served = engine.query(s, t, time_budget=1.0)
        assert served.mode == "corridor"
        assert served.paths
