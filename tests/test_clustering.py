"""Tests for dense-cluster discovery (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.clustering import find_dense_clusters
from repro.core.coefficients import all_two_hop_cardinalities
from repro.core.params import BackboneParams
from repro.core.threshold import condensing_threshold
from repro.graph.generators import road_network
from repro.graph.mcrn import MultiCostGraph

from tests.conftest import make_figure2_graph


@pytest.fixture(scope="module")
def network():
    return road_network(400, dim=3, seed=51)


def params(**kwargs) -> BackboneParams:
    defaults = dict(m_max=40, m_min=5, p=0.01, p_ind=0.3)
    defaults.update(kwargs)
    return BackboneParams(**defaults)


class TestCoverage:
    def test_every_node_clustered_or_noise(self, network):
        clustering = find_dense_clusters(network, params())
        covered = clustering.clustered_nodes | clustering.noise
        assert covered == set(network.nodes())

    def test_clusters_are_disjoint(self, network):
        clustering = find_dense_clusters(network, params())
        seen: set[int] = set()
        for cluster in clustering.clusters:
            assert not (cluster & seen)
            seen |= cluster

    def test_noise_disjoint_from_clusters(self, network):
        clustering = find_dense_clusters(network, params())
        assert not (clustering.noise & clustering.clustered_nodes)

    def test_membership_map(self, network):
        clustering = find_dense_clusters(network, params())
        owner = clustering.membership()
        for index, cluster in enumerate(clustering.clusters):
            for node in cluster:
                assert owner[node] == index


class TestNoise:
    def test_noise_nodes_have_low_cardinality(self, network):
        clustering = find_dense_clusters(network, params())
        cards = all_two_hop_cardinalities(network)
        threshold = condensing_threshold(cards.values(), 0.3)
        assert clustering.noise_val == threshold
        for node in clustering.noise:
            assert cards[node] < threshold

    def test_p_ind_zero_no_noise(self, network):
        clustering = find_dense_clusters(network, params(p_ind=0.0))
        assert clustering.noise == set()


class TestSizeControls:
    def test_m_max_bounds_growth(self, network):
        # the queue may overshoot m_max by the pending backlog of an
        # already-full cluster, but never unboundedly
        clustering = find_dense_clusters(network, params(m_max=20, m_min=1))
        for cluster in clustering.clusters:
            assert len(cluster) <= 20 * 3

    def test_m_min_merges_small_clusters(self, network):
        merged = find_dense_clusters(network, params(m_max=60, m_min=25))
        # small clusters with dense neighbors were merged away; any
        # survivors below m_min must have had no adjacent cluster
        owner = merged.membership()
        for cluster in merged.clusters:
            if len(cluster) >= 25:
                continue
            neighbor_clusters = set()
            for node in cluster:
                for neighbor in network.neighbors(node):
                    other = owner.get(neighbor)
                    if other is not None and other != owner[node]:
                        neighbor_clusters.add(other)
            assert not neighbor_clusters

    def test_m_min_one_disables_merging(self, network):
        a = find_dense_clusters(network, params(m_min=1))
        b = find_dense_clusters(network, params(m_min=1))
        assert [sorted(c) for c in a.clusters] == [sorted(c) for c in b.clusters]


class TestSeedOrder:
    def test_highest_coefficient_seeds_first_cluster(self):
        from repro.core.coefficients import all_cluster_coefficients

        g = make_figure2_graph()
        clustering = find_dense_clusters(
            g, BackboneParams(m_max=6, m_min=1, p_ind=0.0)
        )
        coefficients = all_cluster_coefficients(g)
        best = max(coefficients.values())
        top_nodes = {n for n, c in coefficients.items() if c == best}
        # the first cluster grew from one of the maximal-coefficient seeds
        assert clustering.clusters
        assert clustering.clusters[0] & top_nodes

    def test_empty_graph(self):
        clustering = find_dense_clusters(MultiCostGraph(1), params())
        assert clustering.clusters == []
        assert clustering.noise == set()

    def test_deterministic(self, network):
        a = find_dense_clusters(network, params())
        b = find_dense_clusters(network, params())
        assert [sorted(c) for c in a.clusters] == [sorted(c) for c in b.clusters]
        assert a.noise == b.noise
