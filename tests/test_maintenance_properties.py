"""Property-based tests: maintenance soundness under update sequences."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.maintenance import MaintainableIndex
from repro.core.params import BackboneParams
from repro.graph.mcrn import MultiCostGraph
from repro.search.dijkstra import shortest_costs


def ladder_network(rungs: int) -> MultiCostGraph:
    """A ladder graph: 2 x rungs nodes, richly connected, never
    disconnected by removing a single rung edge."""
    g = MultiCostGraph(2)
    for i in range(rungs - 1):
        g.add_edge(2 * i, 2 * (i + 1), (1.0, 2.0))
        g.add_edge(2 * i + 1, 2 * (i + 1) + 1, (2.0, 1.0))
    for i in range(rungs):
        g.add_edge(2 * i, 2 * i + 1, (1.0, 1.0))
    return g


update_ops = st.lists(
    st.tuples(
        st.sampled_from(["bump", "restore", "insert", "delete_insert"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=5,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rungs=st.integers(min_value=4, max_value=10), ops=update_ops)
def test_random_update_sequences_keep_queries_sound(rungs, ops):
    graph = ladder_network(rungs)
    maintainer = MaintainableIndex(
        graph, BackboneParams(m_max=6, m_min=1, p=0.15)
    )
    n_nodes = 2 * rungs
    for op, seed in ops:
        pairs = sorted(maintainer.graph.edge_pairs())
        u, v = pairs[seed % len(pairs)]
        if op == "bump":
            old = maintainer.graph.edge_costs(u, v)[0]
            maintainer.update_edge_cost(u, v, old, tuple(c * 1.5 for c in old))
        elif op == "restore":
            old = maintainer.graph.edge_costs(u, v)[0]
            maintainer.update_edge_cost(u, v, old, (1.0, 1.0))
        elif op == "insert":
            a = seed % n_nodes
            b = (seed * 7 + 3) % n_nodes
            if a != b:
                maintainer.insert_edge(a, b, (5.0, 5.0))
        elif op == "delete_insert":
            maintainer.delete_edge(u, v)
            maintainer.insert_edge(u, v, (3.0, 3.0))

    # after the whole sequence, queries remain sound against the
    # mutated graph's true per-dimension minima
    source, target = 0, n_nodes - 1
    paths = maintainer.query(source, target)
    minima = [
        shortest_costs(maintainer.graph, source, i).get(target)
        for i in range(2)
    ]
    if all(m is not None for m in minima):
        assert paths
        for p in paths:
            assert p.source == source and p.target == target
            for i in range(2):
                assert p.cost[i] >= minima[i] - 1e-6


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rungs=st.integers(min_value=4, max_value=8))
def test_maintained_equals_fresh_build_quality(rungs):
    """After an update, the maintained index answers at least as well
    as a fresh build on the mutated graph (same algorithm, possibly
    different but equally valid structure)."""
    from repro.core.builder import build_backbone_index

    graph = ladder_network(rungs)
    params = BackboneParams(m_max=6, m_min=1, p=0.15)
    maintainer = MaintainableIndex(graph, params)
    u, v = sorted(maintainer.graph.edge_pairs())[0]
    old = maintainer.graph.edge_costs(u, v)[0]
    maintainer.update_edge_cost(u, v, old, tuple(c * 2 for c in old))

    fresh = build_backbone_index(maintainer.graph, params)
    source, target = 0, 2 * rungs - 1
    maintained_best = min(
        (sum(p.cost) for p in maintainer.query(source, target)),
        default=None,
    )
    fresh_best = min(
        (sum(p.cost) for p in fresh.query(source, target)), default=None
    )
    assert (maintained_best is None) == (fresh_best is None)
    if maintained_best is not None:
        assert maintained_best == pytest.approx(fresh_best, rel=0.5)
