"""Tests for the binary index store: codec, format, round-trips,
lazy loading, and corruption handling."""

from __future__ import annotations

import pytest

from repro.core.builder import build_backbone_index
from repro.core.index import BackboneIndex
from repro.core.params import BackboneParams
from repro.errors import BuildError
from repro.graph.generators import road_network
from repro.graph.mcrn import MultiCostGraph
from repro.store import (
    IndexStore,
    LazyLevelList,
    inspect_store,
    is_store_file,
    load_index,
    save_index,
    serialize_index,
)
from repro.store.codec import ByteReader, ByteWriter, unzigzag, zigzag
from repro.store.format import HEADER_STRUCT, MAGIC, SECTION_STRUCT
from repro.store.writer import encode_top_graph

from tests.conftest import costs_of


@pytest.fixture(scope="module")
def network():
    return road_network(300, dim=3, seed=17)


@pytest.fixture(scope="module")
def index(network):
    return build_backbone_index(
        network, BackboneParams(m_max=30, m_min=5, p=0.03)
    )


@pytest.fixture()
def store_path(tmp_path, index):
    path = tmp_path / "net.rbi"
    save_index(index, path)
    return path


class TestCodec:
    def test_zigzag_roundtrip(self):
        for value in (0, 1, -1, 63, -64, 2**40, -(2**40)):
            assert unzigzag(zigzag(value)) == value

    def test_writer_reader_roundtrip(self):
        writer = ByteWriter()
        writer.uvarint(0)
        writer.uvarint(300)
        writer.svarint(-17)
        writer.deltas([5, 9, 2, 2, 1000])
        writer.floats([1.5, -2.25, float("inf")])
        reader = ByteReader(writer.payload())
        assert reader.uvarint() == 0
        assert reader.uvarint() == 300
        assert reader.svarint() == -17
        assert reader.deltas(5) == [5, 9, 2, 2, 1000]
        assert reader.floats(3) == (1.5, -2.25, float("inf"))
        assert reader.ints_exhausted()

    def test_reader_rejects_overrun(self):
        writer = ByteWriter()
        writer.uvarint(7)
        reader = ByteReader(writer.payload())
        reader.uvarint()
        with pytest.raises(BuildError):
            reader.uvarint()
        with pytest.raises(BuildError):
            reader.floats(1)

    def test_ragged_float_block_rejected(self):
        writer = ByteWriter()
        writer.floats([1.0])
        with pytest.raises(BuildError):
            ByteReader(writer.payload() + b"x")


class TestRoundTrip:
    def test_full_load_answers_identical_queries(
        self, store_path, network, index
    ):
        loaded = load_index(store_path, network)
        assert loaded.height == index.height
        assert loaded.label_path_count() == index.label_path_count()
        assert sorted(loaded.top_graph.nodes()) == sorted(
            index.top_graph.nodes()
        )
        assert loaded.provenance == index.provenance
        nodes = sorted(network.nodes())
        for s, t in [(nodes[1], nodes[-2]), (nodes[4], nodes[-7])]:
            assert costs_of(loaded.query(s, t)) == costs_of(index.query(s, t))

    def test_landmark_bounds_bit_identical(self, store_path, network, index):
        loaded = load_index(store_path, network)
        assert loaded.landmarks.landmarks == index.landmarks.landmarks
        tops = sorted(index.top_graph.nodes())
        for u in tops[:5]:
            for v in tops[-5:]:
                assert loaded.landmarks.lower_bound(
                    u, v
                ) == index.landmarks.lower_bound(u, v)

    def test_no_dijkstra_on_load(self, store_path, network, monkeypatch):
        import repro.search.landmark as landmark_module

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("load must not run Dijkstra")

        monkeypatch.setattr(landmark_module, "shortest_costs", forbid)
        loaded = load_index(store_path, network)
        assert loaded.landmarks.size_entries() > 0

    def test_params_roundtrip_exactly(self, store_path, network, index):
        loaded = load_index(store_path, network)
        assert loaded.params == index.params

    def test_uncompressed_store_loads_too(self, tmp_path, network, index):
        path = tmp_path / "raw.rbi"
        save_index(index, path, compress=False)
        loaded = load_index(path, network)
        assert loaded.label_path_count() == index.label_path_count()

    def test_directed_top_graph_flag_survives(self):
        directed = MultiCostGraph(2, directed=True)
        directed.add_edge(1, 2, (1.0, 2.0))
        directed.add_edge(2, 1, (2.0, 1.0))
        directed.add_edge(2, 5, (1.0, 1.0))
        decoded = _decode_top_graph_payload(
            encode_top_graph(directed), dim=2
        )
        assert decoded.directed
        assert decoded.edge_costs(1, 2) == [(1.0, 2.0)]
        assert decoded.edge_costs(2, 1) == [(2.0, 1.0)]
        assert sorted(decoded.nodes()) == [1, 2, 5]


def _decode_top_graph_payload(payload: bytes, dim: int) -> MultiCostGraph:
    """Decode a topgraph section payload without a file on disk."""
    reader = ByteReader(payload)
    nodes = reader.deltas(reader.uvarint())
    directed = bool(reader.uvarint())
    graph = MultiCostGraph(dim, directed=directed)
    for node in nodes:
        graph.add_node(node)
    u = 0
    for _ in range(reader.uvarint()):
        u += reader.svarint()
        v = u + reader.svarint()
        graph.add_edge(u, v, reader.floats(dim))
    return graph


class TestLazyLoading:
    def test_lazy_levels_fault_in_on_demand(self, store_path, network, index):
        loaded = load_index(store_path, network, lazy=True)
        levels = loaded.levels
        assert isinstance(levels, LazyLevelList)
        assert levels.materialized_count() == 0
        assert len(levels) == index.height
        _ = levels[0]
        assert levels.materialized_count() == 1
        # reversed() and slicing both work through the Sequence protocol
        assert len(list(reversed(levels))) == index.height
        assert len(levels[:2]) == min(2, index.height)

    def test_lazy_queries_match_eager(self, store_path, network, index):
        lazy = load_index(store_path, network, lazy=True)
        nodes = sorted(network.nodes())
        s, t = nodes[2], nodes[-3]
        assert costs_of(lazy.query(s, t)) == costs_of(index.query(s, t))


class TestSizeBytes:
    def test_size_bytes_is_measured_store_size(self, index):
        assert index.size_bytes() == len(serialize_index(index))

    def test_estimate_still_available_and_larger(self, index):
        # Boxed-object estimates dwarf the packed binary encoding.
        assert index.estimated_size_bytes() > index.size_bytes()

    def test_stats_reports_both(self, index):
        stats = index.stats()
        assert stats["size_bytes"] == index.size_bytes()
        assert stats["estimated_size_bytes"] == index.estimated_size_bytes()


class TestSniffing:
    def test_is_store_file(self, store_path, tmp_path):
        assert is_store_file(store_path)
        other = tmp_path / "plain.json"
        other.write_text("{}")
        assert not is_store_file(other)
        assert not is_store_file(tmp_path / "missing.rbi")

    def test_backbone_load_sniffs_binary(self, store_path, network, index):
        loaded = BackboneIndex.load(store_path, network)
        assert loaded.label_path_count() == index.label_path_count()

    def test_json_save_still_loads(self, tmp_path, network, index):
        path = tmp_path / "legacy.json"
        index.save(path, format="json")
        assert not is_store_file(path)
        loaded = BackboneIndex.load(path, network)
        nodes = sorted(network.nodes())
        assert costs_of(loaded.query(nodes[2], nodes[-3])) == costs_of(
            index.query(nodes[2], nodes[-3])
        )

    def test_json_v2_restores_landmarks_without_dijkstra(
        self, tmp_path, network, index, monkeypatch
    ):
        path = tmp_path / "legacy.json"
        index.save(path, format="json")
        import repro.search.landmark as landmark_module

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("v2 JSON load must not run Dijkstra")

        monkeypatch.setattr(landmark_module, "shortest_costs", forbid)
        loaded = BackboneIndex.load(path, network)
        assert loaded.landmarks.landmarks == index.landmarks.landmarks

    def test_unknown_save_format_rejected(self, tmp_path, index):
        with pytest.raises(BuildError):
            index.save(tmp_path / "x", format="msgpack")

    def test_atomic_json_leaves_no_tmp_files(self, tmp_path, index):
        path = tmp_path / "atomic.json"
        index.save(path, format="json")
        index.save(path, format="json")  # overwrite is atomic too
        leftovers = [p for p in tmp_path.iterdir() if p.name != "atomic.json"]
        assert leftovers == []


class TestCorruption:
    def test_truncated_file(self, store_path, network, tmp_path):
        data = store_path.read_bytes()
        broken = tmp_path / "trunc.rbi"
        broken.write_bytes(data[: len(data) - max(64, len(data) // 4)])
        with pytest.raises(BuildError, match="truncated|CRC32"):
            load_index(broken, network)

    def test_truncated_header(self, store_path, network, tmp_path):
        broken = tmp_path / "header.rbi"
        broken.write_bytes(store_path.read_bytes()[:10])
        with pytest.raises(BuildError, match="truncated"):
            load_index(broken, network)

    def test_flipped_payload_byte_fails_crc(
        self, store_path, network, tmp_path
    ):
        data = bytearray(store_path.read_bytes())
        store = IndexStore(store_path)
        # Flip one byte inside the largest section's payload.
        victim = max(store.sections.values(), key=lambda s: s.stored_len)
        data[victim.offset + victim.stored_len // 2] ^= 0xFF
        broken = tmp_path / "bitrot.rbi"
        broken.write_bytes(bytes(data))
        with pytest.raises(BuildError, match="CRC32"):
            load_index(broken, network)

    def test_wrong_magic(self, store_path, network, tmp_path):
        data = bytearray(store_path.read_bytes())
        data[:4] = b"NOPE"
        broken = tmp_path / "magic.rbi"
        broken.write_bytes(bytes(data))
        with pytest.raises(BuildError, match="not a backbone index"):
            load_index(broken, network)

    def test_wrong_version(self, store_path, network, tmp_path):
        data = bytearray(store_path.read_bytes())
        header = HEADER_STRUCT.unpack_from(data)
        HEADER_STRUCT.pack_into(
            data, 0, header[0], 99, *header[2:]
        )
        broken = tmp_path / "v99.rbi"
        broken.write_bytes(bytes(data))
        with pytest.raises(BuildError, match="version"):
            load_index(broken, network)

    def test_lazy_load_reports_corrupt_level_on_access(
        self, store_path, network, tmp_path
    ):
        data = bytearray(store_path.read_bytes())
        store = IndexStore(store_path)
        victim = max(
            (s for tag, s in store.sections.items() if tag.startswith("level:")),
            key=lambda s: s.stored_len,
        )
        data[victim.offset] ^= 0xFF
        broken = tmp_path / "lazylevel.rbi"
        broken.write_bytes(bytes(data))
        # Opening and loading the eager sections succeeds...
        lazy = load_index(broken, network, lazy=True)
        # ...the corrupt level only surfaces when faulted in.
        level_number = int(victim.tag.split(":")[1])
        with pytest.raises(BuildError, match="CRC32"):
            lazy.levels[level_number]

    def test_missing_section(self, index, network, tmp_path):
        data = bytearray(serialize_index(index))
        # Rename the landmarks section tag so lookup fails.
        offset = HEADER_STRUCT.size
        while True:
            tag = bytes(data[offset : offset + 12]).rstrip(b"\x00")
            if tag == b"landmarks":
                data[offset : offset + 12] = b"nolandmarks!".ljust(12, b"\x00")
                # fix the table entry's tag only; CRC covers payloads
                break
            offset += SECTION_STRUCT.size
        broken = tmp_path / "missing.rbi"
        broken.write_bytes(bytes(data))
        with pytest.raises(BuildError, match="missing section"):
            load_index(broken, network)


class TestInspect:
    def test_inspect_reports_sections(self, store_path):
        info = inspect_store(store_path)
        assert info["format"] == "repro-backbone-store"
        assert info["version"] == 1
        tags = {section["tag"] for section in info["sections"]}
        assert {"params", "topgraph", "landmarks", "provenance"} <= tags
        assert any(tag.startswith("level:") for tag in tags)
        assert info["file_bytes"] == store_path.stat().st_size
        for section in info["sections"]:
            assert section["raw_bytes"] >= section["stored_bytes"] or (
                not section["compressed"]
            )

    def test_inspect_rejects_non_store(self, tmp_path):
        path = tmp_path / "nope.rbi"
        path.write_bytes(b"garbage bytes that are not a store")
        with pytest.raises(BuildError):
            inspect_store(path)


class TestCompressionEffectiveness:
    def test_binary_much_smaller_than_json(self, tmp_path, index):
        json_path = tmp_path / "i.json"
        binary_path = tmp_path / "i.rbi"
        index.save(json_path, format="json")
        index.save(binary_path)
        assert binary_path.stat().st_size * 3 <= json_path.stat().st_size
