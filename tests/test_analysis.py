"""Tests for the solution-bound analysis instrumentation."""

from __future__ import annotations

import pytest

from repro.core.builder import build_backbone_index
from repro.core.params import BackboneParams
from repro.errors import QueryError
from repro.eval.analysis import query_stretch, stretch_vs_height
from repro.eval.queries import Query, random_queries
from repro.graph.generators import road_network
from repro.paths.path import Path
from repro.search.bbs import skyline_paths


@pytest.fixture(scope="module")
def network():
    return road_network(300, dim=3, seed=181)


class TestQueryStretch:
    def test_exact_answer_has_stretch_one(self, network):
        [q] = random_queries(network, 1, seed=1, min_hops=8)
        exact = skyline_paths(network, q.source, q.target).paths
        assert query_stretch(network, q, exact) == pytest.approx(1.0)

    def test_detour_increases_stretch(self, network):
        [q] = random_queries(network, 1, seed=2, min_hops=8)
        exact = skyline_paths(network, q.source, q.target).paths
        doubled = [
            Path(p.nodes, tuple(2 * c for c in p.cost)) for p in exact
        ]
        assert query_stretch(network, q, doubled) == pytest.approx(2.0)

    def test_stretch_never_below_one(self, network):
        index = build_backbone_index(
            network, BackboneParams(m_max=30, m_min=5, p=0.1)
        )
        for q in random_queries(network, 4, seed=3, min_hops=8):
            paths = index.query(q.source, q.target)
            if paths:
                assert query_stretch(network, q, paths) >= 1.0

    def test_empty_answer_rejected(self, network):
        with pytest.raises(QueryError):
            query_stretch(network, Query(0, 1), [])


class TestStretchVsHeight:
    def test_reports_per_height_means(self, network):
        queries = random_queries(network, 4, seed=5, min_hops=8)
        table = stretch_vs_height(
            network,
            BackboneParams(m_max=30, m_min=5),
            queries,
            p_values=(0.3, 0.08),
        )
        assert table
        for height, stretch in table.items():
            assert height >= 1
            assert stretch >= 1.0
