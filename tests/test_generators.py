"""Tests for synthetic road-network generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    attach_spurs,
    delaunay_network,
    grid_network,
    road_network,
    subdivide_edges,
)
from repro.graph.stats import degree_distribution
from repro.graph.traversal import is_connected


class TestGrid:
    def test_connected_and_sized(self):
        g = grid_network(10, 10, seed=1)
        assert is_connected(g)
        assert 60 <= g.num_nodes <= 100

    def test_coordinates_present(self):
        g = grid_network(5, 5, seed=1)
        assert all(g.coord(n) is not None for n in g.nodes())

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            grid_network(1, 5)

    def test_deterministic(self):
        a = grid_network(8, 8, seed=3)
        b = grid_network(8, 8, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestDelaunay:
    def test_connected(self):
        g = delaunay_network(200, seed=2)
        assert is_connected(g)

    def test_edge_ratio_close_to_target(self):
        g = delaunay_network(500, edge_ratio=1.3, seed=2)
        ratio = g.num_edges / g.num_nodes
        assert 1.15 <= ratio <= 1.45

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            delaunay_network(3)

    def test_road_like_degrees(self):
        g = delaunay_network(400, seed=9)
        dist = degree_distribution(g)
        # road networks: low maximum degree, most mass on 2-4
        assert max(dist) <= 10
        core = sum(count for deg, count in dist.items() if 2 <= deg <= 4)
        assert core / g.num_nodes > 0.5


class TestSpursAndChains:
    def test_attach_spurs_adds_degree_one(self):
        base = delaunay_network(100, seed=4)
        spurred = attach_spurs(base, fraction=0.2, seed=4)
        assert spurred.num_nodes > base.num_nodes
        ones = degree_distribution(spurred).get(1, 0)
        assert ones > 0
        assert is_connected(spurred)

    def test_attach_spurs_does_not_mutate_input(self):
        base = delaunay_network(100, seed=4)
        before = base.num_nodes
        attach_spurs(base, fraction=0.2, seed=4)
        assert base.num_nodes == before

    def test_subdivide_creates_degree_two_chains(self):
        base = delaunay_network(100, seed=4)
        chained = subdivide_edges(base, fraction=0.5, seed=4)
        assert chained.num_nodes > base.num_nodes
        twos = degree_distribution(chained).get(2, 0)
        assert twos >= degree_distribution(base).get(2, 0)
        assert is_connected(chained)

    def test_subdivide_preserves_total_length(self):
        # subdivision replaces one edge with a chain of roughly equal
        # geometric length (up to jitter)
        base = delaunay_network(60, seed=8)
        chained = subdivide_edges(base, fraction=1.0, seed=8)
        base_total = sum(cost[0] for _, _, cost in base.edges())
        chained_total = sum(cost[0] for _, _, cost in chained.edges())
        assert chained_total == pytest.approx(base_total, rel=0.35)


class TestRoadNetwork:
    def test_end_to_end(self):
        g = road_network(500, dim=3, seed=6)
        assert g.dim == 3
        assert is_connected(g)
        assert 350 <= g.num_nodes <= 700

    def test_grid_style(self):
        g = road_network(300, dim=2, style="grid", seed=6)
        assert g.dim == 2
        assert is_connected(g)

    def test_unknown_style(self):
        with pytest.raises(GraphError):
            road_network(100, style="hexagons")

    def test_deterministic(self):
        a = road_network(200, dim=3, seed=42)
        b = road_network(200, dim=3, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())
