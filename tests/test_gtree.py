"""Tests for the GTree baseline with skyline border matrices."""

from __future__ import annotations

import pytest

from repro.baselines.gtree import GTreeIndex, _multi_seed_partition
from repro.errors import BuildError
from repro.graph.generators import road_network
from repro.search.bbs import skyline_paths

from tests.conftest import costs_of


@pytest.fixture(scope="module")
def network():
    return road_network(250, dim=3, seed=121)


@pytest.fixture(scope="module")
def gtree(network):
    return GTreeIndex(network, fanout=4, leaf_size=40)


class TestPartitioning:
    def test_covers_all_vertices(self, network):
        vertices = set(network.nodes())
        parts = _multi_seed_partition(network, vertices, 4)
        union = set()
        for part in parts:
            assert not (part & union)
            union |= part
        assert union == vertices

    def test_roughly_balanced(self, network):
        vertices = set(network.nodes())
        parts = _multi_seed_partition(network, vertices, 4)
        sizes = sorted(len(p) for p in parts)
        assert sizes[-1] <= 4 * max(1, sizes[0])

    def test_tiny_set(self, network):
        nodes = list(network.nodes())[:3]
        parts = _multi_seed_partition(network, set(nodes), 8)
        assert sorted(len(p) for p in parts) == [1, 1, 1]


class TestTreeStructure:
    def test_leaves_respect_leaf_size(self, gtree):
        def walk(node):
            if node.is_leaf:
                assert len(node.vertices) <= gtree.leaf_size
            for child in node.children:
                assert child.vertices <= node.vertices
                walk(child)

        walk(gtree.root)

    def test_root_covers_graph(self, gtree, network):
        assert gtree.root.vertices == set(network.nodes())

    def test_borders_have_outside_neighbors(self, gtree, network):
        def walk(node):
            for border in node.borders:
                assert any(
                    n not in node.vertices for n in network.neighbors(border)
                )
            for child in node.children:
                walk(child)

        walk(gtree.root)

    def test_report_populated(self, gtree):
        assert gtree.report.finished
        assert gtree.report.tree_nodes >= 1
        assert gtree.report.stored_vectors > 0
        assert gtree.size_vectors() == gtree.report.stored_vectors

    def test_bad_params(self, network):
        with pytest.raises(BuildError):
            GTreeIndex(network, fanout=1)
        with pytest.raises(BuildError):
            GTreeIndex(network, leaf_size=1)

    def test_time_budget_dnf(self, network):
        with pytest.raises(BuildError):
            GTreeIndex(network, leaf_size=8, time_budget=0.0)


class TestQueries:
    def test_same_leaf_query_exact(self, gtree, network):
        leaf = next(
            node
            for node in _iter_leaves(gtree.root)
            if len(node.vertices) >= 10
        )
        vertices = sorted(leaf.vertices)
        s, t = vertices[0], vertices[-1]
        got = costs_of(gtree.query(s, t))
        # exact within the leaf subgraph by construction
        sub = network.induced_subgraph(leaf.vertices)
        expected = costs_of(skyline_paths(sub, s, t).paths)
        assert got == expected

    def test_cross_leaf_query_covers_exact_costs(self, gtree, network):
        """GTree answers must at least weakly cover the exact skyline:
        for each exact cost there is a GTree cost dominating-or-equal
        or matching it; GTree costs never beat the exact frontier."""
        from repro.paths.dominance import dominates

        nodes = sorted(network.nodes())
        s, t = nodes[0], nodes[-1]
        exact = skyline_paths(network, s, t).paths
        got = gtree.query(s, t)
        assert got
        # compare on rounded costs: GTree composes many partial sums, so
        # raw floats drift by ~1e-13 relative to BBS
        exact_costs = costs_of(exact)
        got_costs = costs_of(got)
        for cost in got_costs:
            assert not any(dominates(cost, e) for e in exact_costs), (
                cost,
                exact_costs,
            )


def _iter_leaves(node):
    if node.is_leaf:
        yield node
    for child in node.children:
        yield from _iter_leaves(child)
