"""Tests for the directed-network extension (paper Section 4.3.1)."""

from __future__ import annotations

import pytest

from repro.core.directed import DirectedBackboneIndex, project_undirected
from repro.core.params import BackboneParams
from repro.errors import BuildError, NodeNotFoundError
from repro.graph.generators import road_network
from repro.graph.mcrn import MultiCostGraph
from repro.search.bbs import skyline_paths
from repro.search.dijkstra import shortest_costs

from repro.graph.directed import to_directed

from tests.conftest import costs_of


@pytest.fixture(scope="module")
def directed_network():
    # The paper's directed regime: every road is two-way with mildly
    # asymmetric per-direction costs.  One-way roads are exercised by
    # the dedicated small-graph tests below (they degrade label chains
    # gracefully but can break long ones, which is documented).
    return to_directed(
        road_network(300, dim=3, seed=171), one_way_fraction=0.0, seed=171
    )


@pytest.fixture(scope="module")
def directed_index(directed_network):
    return DirectedBackboneIndex(
        directed_network, BackboneParams(m_max=30, m_min=5, p=0.12)
    )


class TestProjection:
    def test_projection_averages_both_directions(self, directed_network):
        projection = project_undirected(directed_network)
        assert not projection.directed
        assert projection.num_nodes == directed_network.num_nodes
        for u, v in list(projection.edge_pairs())[:20]:
            [stored] = projection.edge_costs(u, v)
            sources = []
            if directed_network.has_edge(u, v):
                sources += directed_network.edge_costs(u, v)
            if directed_network.has_edge(v, u):
                sources += directed_network.edge_costs(v, u)
            assert sources
            for i, value in enumerate(stored):
                expected = sum(c[i] for c in sources) / len(sources)
                assert value == pytest.approx(expected)

    def test_rejects_undirected_input(self):
        with pytest.raises(BuildError):
            project_undirected(MultiCostGraph(2))


class TestConstruction:
    def test_rejects_undirected_input(self):
        g = road_network(50, dim=2, seed=1)
        with pytest.raises(BuildError):
            DirectedBackboneIndex(g)

    def test_directed_top_graph(self, directed_index):
        top = directed_index.directed_top
        assert top.directed
        assert set(top.nodes()) == set(directed_index.inner.top_graph.nodes())


class TestQueries:
    def pairs(self, graph, count=4):
        nodes = sorted(graph.nodes())
        step = len(nodes) // (count + 1)
        return [(nodes[i * step], nodes[-(i * step + 1)]) for i in range(1, count)]

    def test_self_query(self, directed_index, directed_network):
        node = next(iter(directed_network.nodes()))
        result = directed_index.query(node, node)
        assert len(result.paths) == 1
        assert result.paths[0].is_trivial()

    def test_missing_nodes(self, directed_index):
        with pytest.raises(NodeNotFoundError):
            directed_index.query(-1, 0)

    def test_paths_are_valid_directed_walks(
        self, directed_index, directed_network
    ):
        found = 0
        for s, t in self.pairs(directed_network):
            for p in directed_index.query(s, t).paths:
                assert p.source == s and p.target == t
                # every consecutive pair must be a directed edge
                for u, v in zip(p.nodes, p.nodes[1:]):
                    assert directed_network.has_edge(u, v), (u, v)
                found += 1
        assert found > 0

    def test_costs_respect_directed_minima(
        self, directed_index, directed_network
    ):
        for s, t in self.pairs(directed_network):
            minima = [
                shortest_costs(directed_network, s, i).get(t)
                for i in range(3)
            ]
            for p in directed_index.query(s, t).paths:
                for i in range(3):
                    if minima[i] is not None:
                        assert p.cost[i] >= minima[i] - 1e-6

    def test_asymmetric_costs_produce_asymmetric_answers(
        self, directed_index, directed_network
    ):
        s, t = self.pairs(directed_network, 2)[0]
        forward = costs_of(directed_index.query(s, t).paths)
        backward = costs_of(directed_index.query(t, s).paths)
        # with asymmetric costs the two directions essentially never
        # produce identical cost sets
        assert forward and backward
        assert forward != backward

    def test_quality_against_directed_bbs(
        self, directed_index, directed_network
    ):
        """Directed BBS is exact on directed graphs; the directed
        backbone answers must stay in a sane RAC band against it."""
        from repro.eval.metrics import rac
        from repro.eval.queries import random_queries

        # long-haul queries: near pairs are the paper's acknowledged
        # weak spot for aggressive abstraction (Section 4.1)
        queries = random_queries(
            directed_index.projection, 4, seed=9, min_hops=12
        )
        from statistics import median

        values = []
        for q in queries:
            exact = skyline_paths(directed_network, q.source, q.target).paths
            approx = directed_index.query(q.source, q.target).paths
            if not exact or not approx:
                continue
            values.extend(rac(approx, exact))
        assert values
        # typical quality matches the undirected band; individual pairs
        # that meet at a shared condensed corridor can double back and
        # spike (a known weakness of label-chasing approximations)
        assert median(values) <= 2.5
        for value in values:
            assert 0.95 <= value <= 10.0

    def test_one_way_street_respected(self):
        """A network whose only cheap route is one-way must not be
        answered with the forbidden reverse traversal."""
        g = MultiCostGraph(2, directed=True)
        # two-way ring (expensive) + one-way shortcut 0 -> 3 (cheap)
        ring = [(0, 1), (1, 2), (2, 3)]
        for u, v in ring:
            g.add_edge(u, v, (5.0, 5.0))
            g.add_edge(v, u, (5.0, 5.0))
        g.add_edge(0, 3, (1.0, 1.0))  # one-way
        index = DirectedBackboneIndex(
            g, BackboneParams(m_max=4, m_min=1, p=0.2)
        )
        backward = index.query(3, 0).paths
        for p in backward:
            for u, v in zip(p.nodes, p.nodes[1:]):
                assert g.has_edge(u, v)
            assert p.cost[0] >= 15.0 - 1e-9  # must take the ring back
